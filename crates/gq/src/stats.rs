//! Queue instrumentation.
//!
//! The paper's Figure 6 plots throughput next to *dynamically profiled*
//! atomic operations per work-item, and §8.1 reports that the aggregator's
//! CPU spends 65 % of its time polling. Both require the queues to count
//! their own synchronization events, which this module provides as a block
//! of relaxed atomics shared by all queue variants.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared-memory synchronization counters for one queue.
#[derive(Debug, Default)]
pub struct QueueStats {
    /// Read-modify-write operations issued by producers (reservation
    /// fetch-adds and CAS attempts).
    pub producer_rmws: AtomicU64,
    /// Synchronization loads spent by producers waiting for a slot to
    /// drain (queue-full backpressure).
    pub producer_spins: AtomicU64,
    /// RMWs issued by consumers (index CAS).
    pub consumer_rmws: AtomicU64,
    /// Polls by consumers that found nothing ready (the aggregator's
    /// "time spent polling" proxy, §8.1).
    pub consumer_empty_polls: AtomicU64,
    /// Polls by consumers that found a slot ready.
    pub consumer_hits: AtomicU64,
    /// Messages enqueued.
    pub messages_produced: AtomicU64,
    /// Messages dequeued.
    pub messages_consumed: AtomicU64,
    /// Slots (or single-message cells) filled.
    pub slots_produced: AtomicU64,
}

impl QueueStats {
    /// Snapshot all counters (relaxed; callers quiesce the queue first for
    /// exact numbers).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            producer_rmws: self.producer_rmws.load(Ordering::Relaxed),
            producer_spins: self.producer_spins.load(Ordering::Relaxed),
            consumer_rmws: self.consumer_rmws.load(Ordering::Relaxed),
            consumer_empty_polls: self.consumer_empty_polls.load(Ordering::Relaxed),
            consumer_hits: self.consumer_hits.load(Ordering::Relaxed),
            messages_produced: self.messages_produced.load(Ordering::Relaxed),
            messages_consumed: self.messages_consumed.load(Ordering::Relaxed),
            slots_produced: self.slots_produced.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`QueueStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub producer_rmws: u64,
    pub producer_spins: u64,
    pub consumer_rmws: u64,
    pub consumer_empty_polls: u64,
    pub consumer_hits: u64,
    pub messages_produced: u64,
    pub messages_consumed: u64,
    pub slots_produced: u64,
}

impl StatsSnapshot {
    /// Producer RMWs per enqueued message — Figure 6's right axis (there,
    /// one message per work-item).
    pub fn rmws_per_message(&self) -> f64 {
        if self.messages_produced == 0 {
            return 0.0;
        }
        self.producer_rmws as f64 / self.messages_produced as f64
    }

    /// Fraction of consumer poll attempts that found nothing — the §8.1
    /// "fraction of time polling" proxy.
    pub fn poll_fraction(&self) -> f64 {
        let total = self.consumer_empty_polls + self.consumer_hits;
        if total == 0 {
            return 0.0;
        }
        self.consumer_empty_polls as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_back_bumps() {
        let s = QueueStats::default();
        QueueStats::bump(&s.producer_rmws, 3);
        QueueStats::bump(&s.messages_produced, 12);
        let snap = s.snapshot();
        assert_eq!(snap.producer_rmws, 3);
        assert_eq!(snap.messages_produced, 12);
        assert!((snap.rmws_per_message() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let snap = StatsSnapshot::default();
        assert_eq!(snap.rmws_per_message(), 0.0);
        assert_eq!(snap.poll_fraction(), 0.0);
    }

    #[test]
    fn poll_fraction() {
        let s = QueueStats::default();
        QueueStats::bump(&s.consumer_empty_polls, 65);
        QueueStats::bump(&s.consumer_hits, 35);
        assert!((s.snapshot().poll_fraction() - 0.65).abs() < 1e-12);
    }
}
