//! Queue instrumentation.
//!
//! The paper's Figure 6 plots throughput next to *dynamically profiled*
//! atomic operations per work-item, and §8.1 reports that the aggregator's
//! CPU spends 65 % of its time polling. Both require the queues to count
//! their own synchronization events, which this module provides as a block
//! of [`gravel_telemetry::Counter`] handles shared by all queue variants.
//!
//! Standalone queues (benches, unit tests) get detached always-live
//! counters from [`QueueStats::default`]; inside a cluster the runtime
//! builds them with [`QueueStats::bound`] so every count also appears in
//! the node's [`gravel_telemetry::Registry`] under `{prefix}.queue.*`.

use gravel_telemetry::{Counter, Registry};

/// Shared-memory synchronization counters for one queue.
#[derive(Clone, Debug)]
pub struct QueueStats {
    /// Read-modify-write operations issued by producers (reservation
    /// fetch-adds and CAS attempts).
    pub producer_rmws: Counter,
    /// Synchronization loads spent by producers waiting for a slot to
    /// drain (queue-full backpressure).
    pub producer_spins: Counter,
    /// RMWs issued by consumers (index CAS).
    pub consumer_rmws: Counter,
    /// Polls by consumers that found nothing ready (the aggregator's
    /// "time spent polling" proxy, §8.1).
    pub consumer_empty_polls: Counter,
    /// Polls by consumers that found a slot ready.
    pub consumer_hits: Counter,
    /// Messages enqueued.
    pub messages_produced: Counter,
    /// Messages dequeued.
    pub messages_consumed: Counter,
    /// Slots (or single-message cells) filled.
    pub slots_produced: Counter,
}

impl Default for QueueStats {
    /// Detached, always-recording counters — the standalone-queue mode.
    fn default() -> Self {
        QueueStats {
            producer_rmws: Counter::detached(),
            producer_spins: Counter::detached(),
            consumer_rmws: Counter::detached(),
            consumer_empty_polls: Counter::detached(),
            consumer_hits: Counter::detached(),
            messages_produced: Counter::detached(),
            messages_consumed: Counter::detached(),
            slots_produced: Counter::detached(),
        }
    }
}

impl QueueStats {
    /// Counters registered in `registry` under `{prefix}.queue.{field}`
    /// (so per-node queue stats land in the cluster telemetry snapshot).
    /// Honors the registry's `TelemetryConfig`: a disabled registry hands
    /// out dead counters.
    pub fn bound(registry: &Registry, prefix: &str) -> Self {
        let name = |field: &str| format!("{prefix}.queue.{field}");
        QueueStats {
            producer_rmws: registry.counter(&name("producer_rmws")),
            producer_spins: registry.counter(&name("producer_spins")),
            consumer_rmws: registry.counter(&name("consumer_rmws")),
            consumer_empty_polls: registry.counter(&name("consumer_empty_polls")),
            consumer_hits: registry.counter(&name("consumer_hits")),
            messages_produced: registry.counter(&name("messages_produced")),
            messages_consumed: registry.counter(&name("messages_consumed")),
            slots_produced: registry.counter(&name("slots_produced")),
        }
    }

    /// Snapshot all counters (relaxed; callers quiesce the queue first for
    /// exact numbers).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            producer_rmws: self.producer_rmws.get(),
            producer_spins: self.producer_spins.get(),
            consumer_rmws: self.consumer_rmws.get(),
            consumer_empty_polls: self.consumer_empty_polls.get(),
            consumer_hits: self.consumer_hits.get(),
            messages_produced: self.messages_produced.get(),
            messages_consumed: self.messages_consumed.get(),
            slots_produced: self.slots_produced.get(),
        }
    }
}

/// A point-in-time copy of [`QueueStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub producer_rmws: u64,
    pub producer_spins: u64,
    pub consumer_rmws: u64,
    pub consumer_empty_polls: u64,
    pub consumer_hits: u64,
    pub messages_produced: u64,
    pub messages_consumed: u64,
    pub slots_produced: u64,
}

impl StatsSnapshot {
    /// Producer RMWs per enqueued message — Figure 6's right axis (there,
    /// one message per work-item).
    pub fn rmws_per_message(&self) -> f64 {
        if self.messages_produced == 0 {
            return 0.0;
        }
        self.producer_rmws as f64 / self.messages_produced as f64
    }

    /// Fraction of consumer poll attempts that found nothing — the §8.1
    /// "fraction of time polling" proxy.
    pub fn poll_fraction(&self) -> f64 {
        let total = self.consumer_empty_polls + self.consumer_hits;
        if total == 0 {
            return 0.0;
        }
        self.consumer_empty_polls as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_back_bumps() {
        let s = QueueStats::default();
        s.producer_rmws.add(3);
        s.messages_produced.add(12);
        let snap = s.snapshot();
        assert_eq!(snap.producer_rmws, 3);
        assert_eq!(snap.messages_produced, 12);
        assert!((snap.rmws_per_message() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let snap = StatsSnapshot::default();
        assert_eq!(snap.rmws_per_message(), 0.0);
        assert_eq!(snap.poll_fraction(), 0.0);
    }

    #[test]
    fn poll_fraction() {
        let s = QueueStats::default();
        s.consumer_empty_polls.add(65);
        s.consumer_hits.add(35);
        assert!((s.snapshot().poll_fraction() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn bound_stats_appear_in_registry() {
        let r = Registry::enabled();
        let s = QueueStats::bound(&r, "node0");
        s.messages_produced.add(9);
        assert_eq!(r.snapshot().counter("node0.queue.messages_produced"), 9);
        // Clones registered under the same prefix share counters.
        let s2 = QueueStats::bound(&r, "node0");
        assert_eq!(s2.messages_produced.get(), 9);
    }

    #[test]
    fn bound_to_disabled_registry_is_dead() {
        let r = Registry::disabled();
        let s = QueueStats::bound(&r, "node0");
        s.producer_rmws.add(5);
        assert_eq!(s.snapshot().producer_rmws, 0);
    }
}
