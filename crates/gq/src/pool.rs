//! Pooled packet-buffer arena: a size-bucketed, lock-free freelist of
//! packet buffers recycled across flush / seal / receive instead of
//! allocated per packet.
//!
//! The hot path allocates one buffer per flushed packet (the
//! aggregation buffer behind the payload) and one per sealed frame
//! (header + payload + CRC), plus the refcount block that lets
//! retransmissions share the sealed bytes. At millions of packets per
//! second that is steady allocator traffic — and for small RPC frames
//! the malloc/free pair costs more than the memcpy it wraps. The arena
//! removes *all* of it, refcount block included:
//!
//! * Each bucket holds `Arc<Slab>` entries, where a [`Slab`] owns one
//!   `Vec<u8>`. [`BufferPool::take`] hands out the vector (moved out of
//!   the slab, three words) together with a [`BufTicket`] wrapping the
//!   slab — no allocation when a recycled slab is available.
//! * [`BufferPool::seal`] moves the filled vector back into the slab
//!   and lends it out as immutable [`bytes::Bytes`] via
//!   `Bytes::from_owner_arc` — again no allocation, and the pool
//!   retains a clone of the `Arc` in the bucket ring.
//! * Reclamation is by observation, not by drop hook: a retained slab
//!   whose `Arc::strong_count` has fallen back to 1 has no outstanding
//!   frame views anywhere (acks arrived, retransmit clones dropped),
//!   so the next `take` may reuse it exclusively. `take` probes a few
//!   ring entries, rotating still-lent ones to the back.
//!
//! Buckets are power-of-two capacities so a recycled vector can never
//! need a mid-use realloc (which would both defeat the zero-alloc
//! guarantee and strand the pool with odd-sized buffers). Each bucket
//! is a bounded lock-free MPMC ring (slot-sequence protocol, the
//! classic bounded-queue design) because buffers cross threads: the
//! aggregator seals, the net thread or a remote node's receiver drops.
//!
//! Telemetry: `<prefix>pool.hits`, `<prefix>pool.misses` (counters)
//! and `<prefix>pool.resident_bytes` (gauge — capacity retained in the
//! bucket rings; recyclable as soon as the frames referencing it
//! drop).
//!
//! # Safety argument
//!
//! A slab's vector is written only by a thread holding an `Arc` whose
//! `strong_count` is exactly 1 (take-after-reclaim, or a fresh miss) —
//! no other reference exists, so no concurrent reader can. While lent
//! (count ≥ 2) the vector is only read. The ring's release/acquire
//! slot handshake orders the writer's stores before the next claimant's
//! loads, and observing `strong_count == 1` via an acquire load orders
//! the last dropper's reads before our subsequent writes.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::{ByteOwner, Bytes};
use gravel_telemetry::{Counter, Gauge, Registry};

/// Smallest bucket capacity. Requests below this are rounded up — a
/// 1 KiB floor keeps tiny RPC frames (∼100 B) from fragmenting the
/// bucket space while costing little per resident buffer.
pub const MIN_BUCKET_BYTES: usize = 1 << 10;

/// Largest bucket capacity. A 64 KiB aggregation payload seals into a
/// frame slightly larger than 64 KiB (header + CRC), so the top bucket
/// is 128 KiB. Requests beyond this bypass the pool entirely (counted
/// as misses; their ticket is dropped, not retained).
pub const MAX_BUCKET_BYTES: usize = 1 << 17;

/// Ring slots per bucket: the number of slabs (lent + idle) a bucket
/// can track. In-flight frames beyond this are simply not recycled
/// (freed on last drop), so the bound trades recycle rate against the
/// worst-case idle footprint.
const BUCKET_SLOTS: usize = 256;

/// How many ring entries `take` inspects looking for a reclaimable
/// (count == 1) slab before giving up and allocating.
const TAKE_PROBES: usize = 4;

const MIN_SHIFT: u32 = MIN_BUCKET_BYTES.trailing_zeros();
const MAX_SHIFT: u32 = MAX_BUCKET_BYTES.trailing_zeros();
const NUM_BUCKETS: usize = (MAX_SHIFT - MIN_SHIFT + 1) as usize;

// ---------------------------------------------------------------------------
// Bounded lock-free MPMC ring (slot-sequence protocol).
// ---------------------------------------------------------------------------

struct Slot<T> {
    /// Round stamp: `seq == ticket` means "free for the pusher holding
    /// this ticket"; `seq == ticket + 1` means "full for the popper
    /// holding it". Advanced by the ring capacity per lap.
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded MPMC queue of owned values. Unlike [`crate::MpmcQueue`]
/// (which moves fixed-width `u64` rows through atomic payload cells),
/// this ring moves heap objects, so slots hold `MaybeUninit` values
/// guarded by the slot-sequence handshake.
struct Ring<T> {
    slots: Box<[Slot<T>]>,
    /// Next push ticket.
    tail: AtomicUsize,
    /// Next pop ticket.
    head: AtomicUsize,
}

// SAFETY: slot values are only touched by the thread that won the
// matching seq CAS, and the Release store on `seq` publishes the write
// to whoever claims the slot next.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    fn new(cap: usize) -> Self {
        assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|i| Slot { seq: AtomicUsize::new(i), val: UnsafeCell::new(MaybeUninit::uninit()) })
            .collect();
        Ring { slots, tail: AtomicUsize::new(0), head: AtomicUsize::new(0) }
    }

    fn cap(&self) -> usize {
        self.slots.len()
    }

    /// Push `v`, or hand it back if the ring is full.
    fn push(&self, v: T) -> Result<(), T> {
        let mask = self.cap() - 1;
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[tail & mask];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == tail {
                match self.tail.compare_exchange_weak(
                    tail,
                    tail.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS on `tail` at `seq == tail`
                        // grants exclusive write access to this slot.
                        unsafe { (*slot.val.get()).write(v) };
                        slot.seq.store(tail.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(t) => tail = t,
                }
            } else if (seq as isize).wrapping_sub(tail as isize) < 0 {
                // One full lap behind: the ring is full.
                return Err(v);
            } else {
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop a value, if any is present.
    fn pop(&self) -> Option<T> {
        let mask = self.cap() - 1;
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[head & mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let want = head.wrapping_add(1);
            if seq == want {
                match self.head.compare_exchange_weak(
                    head,
                    want,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS on `head` at `seq == head+1`
                        // grants exclusive read access to the initialized value.
                        let v = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq.store(head.wrapping_add(self.cap()), Ordering::Release);
                        return Some(v);
                    }
                    Err(h) => head = h,
                }
            } else if (seq as isize).wrapping_sub(want as isize) < 0 {
                // Slot not filled yet for this lap: the ring is empty.
                return None;
            } else {
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

// ---------------------------------------------------------------------------
// Slabs and tickets.
// ---------------------------------------------------------------------------

/// One recyclable buffer: the `Arc` around it is the refcount block
/// shared by every frame view, and the pool reclaims both together.
struct Slab {
    vec: UnsafeCell<Vec<u8>>,
}

// SAFETY: see the module-level safety argument — writes happen only at
// strong_count == 1, reads only while lent out immutably.
unsafe impl Send for Slab {}
unsafe impl Sync for Slab {}

impl ByteOwner for Slab {
    fn as_slice(&self) -> &[u8] {
        // SAFETY: called only through a lent-out `Bytes` (count ≥ 2),
        // during which the vector is never written.
        unsafe { &*self.vec.get() }
    }
}

impl Slab {
    fn capacity(&self) -> usize {
        // SAFETY: reading `Vec` metadata; no concurrent writer can
        // exist while the caller holds any reference (writes require
        // exclusive count == 1 ownership by the *same* caller).
        unsafe { (*self.vec.get()).capacity() }
    }
}

/// Exclusive claim on a pooled slab, handed out by
/// [`BufferPool::take`] alongside its (moved-out) vector. Redeem it
/// with [`BufferPool::seal`] or [`BufferPool::put`]; dropping it
/// instead just frees the slab.
pub struct BufTicket {
    slab: Arc<Slab>,
}

// ---------------------------------------------------------------------------
// The pool.
// ---------------------------------------------------------------------------

struct PoolShared {
    buckets: [Ring<Arc<Slab>>; NUM_BUCKETS],
    hits: AtomicU64,
    misses: AtomicU64,
    /// Capacity bytes retained in bucket rings (lent + idle).
    resident: AtomicI64,
    /// Registry mirrors; detached when the pool is unbound.
    hits_c: Counter,
    misses_c: Counter,
    resident_g: Gauge,
}

impl PoolShared {
    fn note_resident(&self, delta: i64) {
        let now = self.resident.fetch_add(delta, Ordering::Relaxed) + delta;
        self.resident_g.set(now);
    }

    /// Retain a slab for future reuse; drops it (our clone of it) if
    /// its bucket ring is full or its capacity is out of range.
    fn retain(&self, slab: Arc<Slab>) {
        let cap = slab.capacity();
        if let Some(b) = bucket_for_return(cap) {
            if self.buckets[b].push(slab).is_ok() {
                self.note_resident(cap as i64);
            }
        }
    }
}

/// Bucket index serving a *request* for `cap` bytes (round up), or
/// `None` if the request is above the largest bucket.
fn bucket_for_request(cap: usize) -> Option<usize> {
    if cap > MAX_BUCKET_BYTES {
        return None;
    }
    let cap = cap.max(MIN_BUCKET_BYTES).next_power_of_two();
    Some((cap.trailing_zeros() - MIN_SHIFT) as usize)
}

/// Bucket index a vector of `capacity` bytes can *serve* (round down),
/// or `None` if it is too small or too large to recycle.
fn bucket_for_return(capacity: usize) -> Option<usize> {
    if !(MIN_BUCKET_BYTES..=MAX_BUCKET_BYTES).contains(&capacity) {
        return None;
    }
    let shift = usize::BITS - 1 - capacity.leading_zeros();
    Some((shift - MIN_SHIFT) as usize)
}

/// A shared, lock-free arena of recycled packet buffers. Cheap to
/// clone (one `Arc`).
#[derive(Clone)]
pub struct BufferPool {
    shared: Arc<PoolShared>,
}

impl BufferPool {
    /// A pool with detached (process-local) telemetry.
    pub fn new() -> Self {
        Self::build(Counter::detached(), Counter::detached(), Gauge::detached())
    }

    /// A pool whose `pool.hits` / `pool.misses` / `pool.resident_bytes`
    /// metrics live in `registry` under `prefix` (e.g. `"node0."`).
    pub fn bound(registry: &Registry, prefix: &str) -> Self {
        Self::build(
            registry.counter(&format!("{prefix}pool.hits")),
            registry.counter(&format!("{prefix}pool.misses")),
            registry.gauge(&format!("{prefix}pool.resident_bytes")),
        )
    }

    fn build(hits_c: Counter, misses_c: Counter, resident_g: Gauge) -> Self {
        let buckets = std::array::from_fn(|_| Ring::new(BUCKET_SLOTS));
        BufferPool {
            shared: Arc::new(PoolShared {
                buckets,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                resident: AtomicI64::new(0),
                hits_c,
                misses_c,
                resident_g,
            }),
        }
    }

    /// An empty vector with capacity ≥ `cap` plus the ticket to return
    /// it through. Recycled (vector *and* refcount block, zero
    /// allocations) when a reclaimable slab is resident; freshly
    /// allocated — a miss — otherwise.
    pub fn take(&self, cap: usize) -> (Vec<u8>, BufTicket) {
        if let Some(b) = bucket_for_request(cap) {
            let ring = &self.shared.buckets[b];
            for _ in 0..TAKE_PROBES {
                let Some(slab) = ring.pop() else { break };
                if Arc::strong_count(&slab) == 1 {
                    // Exclusive: every frame view is gone. Reclaim.
                    self.shared.note_resident(-(slab.capacity() as i64));
                    self.shared.hits.fetch_add(1, Ordering::Relaxed);
                    self.shared.hits_c.inc();
                    // SAFETY: count == 1 — we hold the only reference.
                    let mut vec = unsafe { std::mem::take(&mut *slab.vec.get()) };
                    vec.clear();
                    debug_assert!(vec.capacity() >= cap);
                    return (vec, BufTicket { slab });
                }
                // Still lent out; rotate it to the back of the ring.
                // If the ring refilled meanwhile, drop our clone — the
                // outstanding frames keep the slab alive and it simply
                // won't be recycled.
                if ring.push(Arc::clone(&slab)).is_err() {
                    self.shared.note_resident(-(slab.capacity() as i64));
                }
            }
        }
        self.shared.misses.fetch_add(1, Ordering::Relaxed);
        self.shared.misses_c.inc();
        let cap = if cap > MAX_BUCKET_BYTES {
            cap
        } else {
            cap.max(MIN_BUCKET_BYTES).next_power_of_two()
        };
        (
            Vec::with_capacity(cap),
            BufTicket { slab: Arc::new(Slab { vec: UnsafeCell::new(Vec::new()) }) },
        )
    }

    /// Seal a filled vector into immutable [`Bytes`] backed by its
    /// slab, retaining the slab for reuse once every clone and slice
    /// of the returned `Bytes` has dropped. Allocation-free.
    pub fn seal(&self, vec: Vec<u8>, ticket: BufTicket) -> Bytes {
        debug_assert_eq!(Arc::strong_count(&ticket.slab), 1, "ticket must be exclusive");
        // SAFETY: the ticket holds the only reference to the slab.
        unsafe { *ticket.slab.vec.get() = vec };
        let bytes = Bytes::from_owner_arc(Arc::clone(&ticket.slab) as Arc<dyn ByteOwner>);
        self.shared.retain(ticket.slab);
        bytes
    }

    /// Return a vector unused (scratch path — no frame was lent out).
    pub fn put(&self, mut vec: Vec<u8>, ticket: BufTicket) {
        debug_assert_eq!(Arc::strong_count(&ticket.slab), 1, "ticket must be exclusive");
        vec.clear();
        // SAFETY: the ticket holds the only reference to the slab.
        unsafe { *ticket.slab.vec.get() = vec };
        self.shared.retain(ticket.slab);
    }

    /// Recycled handouts so far.
    pub fn hits(&self) -> u64 {
        self.shared.hits.load(Ordering::Relaxed)
    }

    /// Handouts that had to allocate.
    pub fn misses(&self) -> u64 {
        self.shared.misses.load(Ordering::Relaxed)
    }

    /// Capacity bytes retained in the bucket rings (lent + idle).
    pub fn resident_bytes(&self) -> i64 {
        self.shared.resident.load(Ordering::Relaxed)
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_rounding() {
        assert_eq!(bucket_for_request(1), Some(0));
        assert_eq!(bucket_for_request(MIN_BUCKET_BYTES), Some(0));
        assert_eq!(bucket_for_request(MIN_BUCKET_BYTES + 1), Some(1));
        assert_eq!(bucket_for_request(MAX_BUCKET_BYTES), Some(NUM_BUCKETS - 1));
        assert_eq!(bucket_for_request(MAX_BUCKET_BYTES + 1), None);
        // Returns round *down* so a served take never needs realloc.
        assert_eq!(bucket_for_return(MIN_BUCKET_BYTES - 1), None);
        assert_eq!(bucket_for_return(MIN_BUCKET_BYTES), Some(0));
        assert_eq!(bucket_for_return(MIN_BUCKET_BYTES * 2 - 1), Some(0));
        assert_eq!(bucket_for_return(MAX_BUCKET_BYTES), Some(NUM_BUCKETS - 1));
        assert_eq!(bucket_for_return(MAX_BUCKET_BYTES + 1), None);
    }

    #[test]
    fn seal_then_drop_then_take_recycles_everything() {
        let pool = BufferPool::new();
        let (mut v, t) = pool.take(4096);
        assert_eq!(pool.misses(), 1);
        let ptr = v.as_ptr();
        v.extend_from_slice(&[1, 2, 3, 4]);
        let b = pool.seal(v, t);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        assert!(pool.resident_bytes() > 0, "sealed slab is retained");
        // Still lent out: take must not reclaim it.
        let (v2, t2) = pool.take(4096);
        assert_eq!(pool.misses(), 2, "lent slab is skipped");
        pool.put(v2, t2);
        drop(b);
        // Now reclaimable: same allocation comes back, as a hit.
        let (v3, _t3) = pool.take(4096);
        assert_eq!(pool.hits(), 1);
        assert!(v3.is_empty());
        // Either the first or the scratch slab may be served first;
        // drain one more to prove the original pointer circulates.
        let (v4, _t4) = pool.take(4096);
        assert!(
            v3.as_ptr() == ptr || v4.as_ptr() == ptr,
            "original allocation was recycled"
        );
    }

    #[test]
    fn clones_and_slices_keep_the_slab_lent() {
        let pool = BufferPool::new();
        let (mut v, t) = pool.take(2048);
        v.extend_from_slice(&[9, 8, 7, 6]);
        let b = pool.seal(v, t);
        let clone = b.clone();
        let view = b.slice(1..3);
        drop(b);
        drop(clone);
        let (_s, _st) = pool.take(2048);
        assert_eq!(pool.hits(), 0, "slice still pins the slab");
        assert_eq!(&view[..], &[8, 7]);
        drop(view);
        let (_s2, _st2) = pool.take(2048);
        assert_eq!(pool.hits(), 1, "last view released the slab");
    }

    #[test]
    fn steady_state_seal_loop_allocates_nothing_new() {
        let pool = BufferPool::new();
        // Warm up one slab, then cycle it: every round must be a hit.
        let (v, t) = pool.take(1024);
        drop(pool.seal(v, t));
        for i in 0..1000 {
            let (mut v, t) = pool.take(1024);
            v.push(i as u8);
            drop(pool.seal(v, t));
        }
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 1000);
    }

    #[test]
    fn oversized_requests_bypass_the_pool() {
        let pool = BufferPool::new();
        let (v, t) = pool.take(MAX_BUCKET_BYTES * 2);
        assert!(v.capacity() >= MAX_BUCKET_BYTES * 2);
        let b = pool.seal(v, t);
        drop(b);
        assert_eq!(pool.resident_bytes(), 0, "oversized buffers are not retained");
    }

    #[test]
    fn put_returns_scratch_without_lending() {
        let pool = BufferPool::new();
        let (v, t) = pool.take(MIN_BUCKET_BYTES);
        pool.put(v, t);
        assert_eq!(pool.resident_bytes(), MIN_BUCKET_BYTES as i64);
        let (_v, _t) = pool.take(MIN_BUCKET_BYTES);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn cross_thread_churn_is_balanced() {
        let pool = BufferPool::new();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..2000 {
                        let cap = MIN_BUCKET_BYTES << ((t + i) % 3);
                        let (mut v, tk) = pool.take(cap);
                        v.push(t as u8);
                        if i % 2 == 0 {
                            pool.put(v, tk);
                        } else {
                            drop(pool.seal(v, tk));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(pool.hits() + pool.misses(), 4 * 2000);
        assert!(pool.resident_bytes() >= 0);
        // After warm-up the pool should be serving mostly hits.
        assert!(pool.hits() > pool.misses(), "hits {} misses {}", pool.hits(), pool.misses());
    }
}
