//! A wakeup cell for spin-then-park consumers.
//!
//! The aggregator threads used to burn a core in `yield_now` loops
//! whenever the GPU ring went quiet. [`WaitCell`] lets them park on a
//! condvar instead while keeping the publish path almost free: a
//! producer only touches the lock when a sleeper is registered, so the
//! common no-sleeper publish costs one fence plus one relaxed-ish load.
//!
//! The handshake is the classic Dekker store/load pattern:
//!
//! * consumer: `sleepers.fetch_add(1)` (SeqCst) → re-check readiness
//!   under the lock → `wait_timeout`;
//! * producer: publish data → SeqCst fence → `sleepers.load`; if
//!   nonzero, take the lock and `notify_all`.
//!
//! Either the producer sees the sleeper (and its notify is serialized
//! with the consumer's wait by the lock), or the consumer's readiness
//! re-check sees the published data. The timeout is a belt-and-braces
//! bound, not a correctness requirement.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Parking support for consumers of a concurrent structure.
#[derive(Default)]
pub struct WaitCell {
    /// Consumers currently registered to sleep (or about to).
    sleepers: AtomicU64,
    /// Wakeup generation; only ever touched under `lock`.
    lock: Mutex<u64>,
    cv: Condvar,
}

impl WaitCell {
    pub fn new() -> Self {
        WaitCell {
            sleepers: AtomicU64::new(0),
            lock: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Wake every parked consumer. Call *after* making data visible
    /// (e.g. after a release-store of a full bit). Nearly free when
    /// nobody is parked.
    pub fn notify_all(&self) {
        // Pairs with the consumer's SeqCst fetch_add: if we read 0 here,
        // any later-registering consumer is guaranteed to see the data
        // published before this fence when it re-checks readiness.
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut gen = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        *gen = gen.wrapping_add(1);
        drop(gen);
        self.cv.notify_all();
    }

    /// Park for up to `timeout` unless `ready()` already holds (it is
    /// re-checked after registering, so a publish racing this call is
    /// never missed) or a notify arrives first. Returns `true` if the
    /// thread actually parked.
    pub fn park_timeout(&self, timeout: Duration, ready: impl Fn() -> bool) -> bool {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let parked = {
            let gen = self.lock.lock().unwrap_or_else(|p| p.into_inner());
            let gen0 = *gen;
            if ready() {
                false
            } else {
                // A producer that published after our fetch_add must
                // grab `lock` to notify, which serializes it after this
                // wait (wait releases the lock) or bumps `gen` first.
                let _unused = self
                    .cv
                    .wait_timeout_while(gen, timeout, |g| *g == gen0)
                    .unwrap_or_else(|p| p.into_inner());
                true
            }
        };
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        parked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn ready_check_skips_the_park() {
        let cell = WaitCell::new();
        let start = Instant::now();
        assert!(!cell.park_timeout(Duration::from_secs(5), || true));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn notify_wakes_a_parked_thread() {
        let cell = Arc::new(WaitCell::new());
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let (cell, flag) = (cell.clone(), flag.clone());
            std::thread::spawn(move || {
                let start = Instant::now();
                while !flag.load(Ordering::Acquire) {
                    cell.park_timeout(Duration::from_secs(10), || flag.load(Ordering::Acquire));
                }
                start.elapsed()
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::Release);
        cell.notify_all();
        let waited = waiter.join().unwrap();
        assert!(
            waited < Duration::from_secs(5),
            "woke via notify, not timeout ({waited:?})"
        );
    }

    #[test]
    fn timeout_bounds_the_park() {
        let cell = WaitCell::new();
        let start = Instant::now();
        assert!(cell.park_timeout(Duration::from_millis(10), || false));
        assert!(start.elapsed() >= Duration::from_millis(5));
    }
}
