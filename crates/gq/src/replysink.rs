//! Work-group-amortized completion futures for request-reply traffic.
//!
//! A GET (or value-returning AM) needs somewhere for its reply to land
//! and a way for the issuing work-group to wait. Doing that per lane
//! would reintroduce exactly the per-work-item synchronization the
//! offload queue exists to avoid, so a [`ReplySink`] amortizes the wait
//! across the work-group the same way the queue amortizes the enqueue:
//! every active lane registers one slot, the network thread completes
//! slots as replies (or timeouts) arrive, and the *whole group* parks
//! once on a [`WaitCell`] until the outstanding count hits zero.
//!
//! Slot state is a packed `(state, value)` pair of atomics per lane;
//! completion is idempotent by construction (the pending-reply table
//! removes an entry before completing it, so each slot is completed at
//! most once).

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::time::Duration;

use crate::park::WaitCell;

/// Why a request completed without a value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcFailure {
    /// The deadline passed before a reply arrived (evicted from the
    /// pending-reply table; surfaced in `rpc.timeouts`).
    TimedOut,
    /// The node restarted between request and reply; the generation
    /// guard failed every outstanding request rather than matching a
    /// stale reply.
    Restarted,
    /// The pending-reply table was full at issue time; the request was
    /// never sent.
    TableFull,
}

impl std::fmt::Display for RpcFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcFailure::TimedOut => write!(f, "request timed out"),
            RpcFailure::Restarted => write!(f, "node restarted with request outstanding"),
            RpcFailure::TableFull => write!(f, "pending-reply table full"),
        }
    }
}

impl std::error::Error for RpcFailure {}

/// Completion state of one slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyState {
    /// No reply yet.
    Pending,
    /// Reply arrived; the value is available.
    Ok(u64),
    /// Completed with an error.
    Failed(RpcFailure),
}

const ST_PENDING: u8 = 0;
const ST_OK: u8 = 1;
const ST_TIMEOUT: u8 = 2;
const ST_RESTARTED: u8 = 3;
const ST_TABLE_FULL: u8 = 4;

struct Slot {
    state: AtomicU8,
    value: AtomicU64,
}

/// One work-group's (or host caller's) set of outstanding replies.
pub struct ReplySink {
    slots: Vec<Slot>,
    outstanding: AtomicUsize,
    cell: WaitCell,
}

impl ReplySink {
    /// A sink with `slots` completion slots, none outstanding yet; the
    /// issuer calls [`arm`](Self::arm) once per registered request.
    pub fn new(slots: usize) -> Self {
        ReplySink {
            slots: (0..slots)
                .map(|_| Slot {
                    state: AtomicU8::new(ST_PENDING),
                    value: AtomicU64::new(0),
                })
                .collect(),
            outstanding: AtomicUsize::new(0),
            cell: WaitCell::new(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True for a slotless sink.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Count one more outstanding request (called by the issuer before
    /// the request can possibly complete).
    pub fn arm(&self) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
    }

    /// Requests not yet completed.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::SeqCst)
    }

    fn finish(&self, slot: usize, state: u8, value: u64) {
        let s = &self.slots[slot];
        s.value.store(value, Ordering::Relaxed);
        // Release: the waiter's acquire load of `state` sees `value`.
        s.state.store(state, Ordering::Release);
        if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.cell.notify_all();
        }
    }

    /// Complete `slot` with a reply value.
    pub fn complete(&self, slot: usize, value: u64) {
        self.finish(slot, ST_OK, value);
    }

    /// Complete `slot` with a failure.
    pub fn fail(&self, slot: usize, failure: RpcFailure) {
        let state = match failure {
            RpcFailure::TimedOut => ST_TIMEOUT,
            RpcFailure::Restarted => ST_RESTARTED,
            RpcFailure::TableFull => ST_TABLE_FULL,
        };
        self.finish(slot, state, 0);
    }

    /// Read slot `slot`'s completion state.
    pub fn get(&self, slot: usize) -> ReplyState {
        let s = &self.slots[slot];
        match s.state.load(Ordering::Acquire) {
            ST_PENDING => ReplyState::Pending,
            ST_OK => ReplyState::Ok(s.value.load(Ordering::Relaxed)),
            ST_TIMEOUT => ReplyState::Failed(RpcFailure::TimedOut),
            ST_RESTARTED => ReplyState::Failed(RpcFailure::Restarted),
            _ => ReplyState::Failed(RpcFailure::TableFull),
        }
    }

    /// Park until every armed request has completed (the WG-amortized
    /// wait: one park for the whole group, not one per lane). Returns
    /// `false` if `timeout` expired with requests still outstanding —
    /// a wall-clock backstop for a dead completion path, not the RPC
    /// deadline (the pending-reply table enforces that and completes
    /// slots with [`RpcFailure::TimedOut`] well before this fires).
    pub fn wait_all(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.outstanding() == 0 {
                return true;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return self.outstanding() == 0;
            }
            let park = (deadline - now).min(Duration::from_millis(10));
            self.cell.park_timeout(park, || self.outstanding() == 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn complete_then_wait_returns_values() {
        let sink = ReplySink::new(3);
        for _ in 0..3 {
            sink.arm();
        }
        sink.complete(1, 42);
        sink.fail(0, RpcFailure::TimedOut);
        sink.complete(2, 7);
        assert!(sink.wait_all(Duration::from_secs(1)));
        assert_eq!(sink.get(0), ReplyState::Failed(RpcFailure::TimedOut));
        assert_eq!(sink.get(1), ReplyState::Ok(42));
        assert_eq!(sink.get(2), ReplyState::Ok(7));
    }

    #[test]
    fn wait_parks_until_last_completion() {
        let sink = Arc::new(ReplySink::new(2));
        sink.arm();
        sink.arm();
        let completer = {
            let sink = sink.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                sink.complete(0, 1);
                std::thread::sleep(Duration::from_millis(20));
                sink.complete(1, 2);
            })
        };
        assert!(sink.wait_all(Duration::from_secs(5)));
        completer.join().unwrap();
        assert_eq!(sink.get(0), ReplyState::Ok(1));
        assert_eq!(sink.get(1), ReplyState::Ok(2));
    }

    #[test]
    fn wait_times_out_when_nothing_completes() {
        let sink = ReplySink::new(1);
        sink.arm();
        assert!(!sink.wait_all(Duration::from_millis(30)));
        assert_eq!(sink.get(0), ReplyState::Pending);
    }

    #[test]
    fn unarmed_sink_waits_instantly() {
        let sink = ReplySink::new(4);
        assert!(sink.wait_all(Duration::ZERO));
    }
}
