//! # gravel-gq — GPU-efficient producer/consumer queues
//!
//! The substrate of Gravel's core contribution (paper §4): a
//! producer/consumer queue that lets thousands of GPU work-items offload
//! small messages to CPU consumer threads with synchronization amortized
//! across each work-group.
//!
//! * [`GravelQueue`] — the work-group-slot queue: a leader work-item
//!   reserves a whole slot with one `fetch_add`, lanes write the slot's
//!   columns coalesced, and the ticket/full-bit protocol hands slots to
//!   consumers. Also provides the work-item-granularity strawman
//!   ([`GravelQueue::wi_produce`]) that the paper measures at two orders
//!   of magnitude slower.
//! * [`SpscQueue`] / [`MpmcQueue`] — the CPU-only baselines of Figure 8,
//!   with the cache-line padding that makes them expensive for small
//!   messages.
//! * [`Message`]/[`Command`] — the 32-byte PGAS message format (PUT,
//!   atomic increment, active message).
//! * [`QueueStats`] — dynamically-profiled synchronization counts
//!   (Figure 6's atomics-per-work-item, §8.1's poll fraction).
//!
//! ```
//! use gravel_gq::{GravelQueue, QueueConfig, Message, Consumed};
//! use gravel_simt::{SimtEngine, Grid};
//!
//! let q = GravelQueue::new(QueueConfig { slots: 8, lane_width: 64, rows: 4 });
//! // A GPU kernel: every work-item sends one atomic-increment message.
//! SimtEngine::with_cus(2).dispatch(Grid { wg_count: 4, wg_size: 64, wf_width: 64 }, |ctx| {
//!     let base = ctx.wg_id() * ctx.wg_size();
//!     q.wg_produce(ctx, |lane, row| Message::inc(0, (base + lane) as u64, 1).encode()[row]);
//! });
//! // A CPU consumer drains whole slots.
//! let mut out = Vec::new();
//! let mut messages = 0;
//! while let Consumed::Batch(n) = q.try_consume_into(&mut out) {
//!     messages += n;
//! }
//! assert_eq!(messages, 4 * 64);
//! ```

pub mod gravel_queue;
pub mod mpmc;
pub mod msg;
pub mod pad;
pub mod park;
pub mod pool;
pub mod replysink;
pub mod spsc;
pub mod stats;

pub use gravel_queue::{Consumed, GravelQueue, QueueConfig};
pub use mpmc::MpmcQueue;
pub use msg::{Band, Command, Message, TrafficClass, MSG_BYTES, MSG_ROWS, NUM_BANDS, NUM_CLASSES};
pub use pad::CachePad;
pub use park::WaitCell;
pub use pool::BufferPool;
pub use replysink::{ReplySink, ReplyState, RpcFailure};
pub use spsc::SpscQueue;
pub use stats::{QueueStats, StatsSnapshot};
