//! Property-based tests for the queue protocols.
//!
//! The central invariant of every queue variant: **every produced message
//! is consumed exactly once, unmodified**, regardless of batch sizes,
//! geometry, and thread interleavings.

use std::sync::Arc;

use gravel_gq::{Consumed, GravelQueue, MpmcQueue, QueueConfig, SpscQueue};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-threaded: arbitrary batch sizes through an arbitrary ring
    /// geometry come out complete and in order.
    #[test]
    fn gravel_queue_preserves_batches(
        slots in 2usize..9,
        lane_width in 1usize..17,
        rows in 1usize..5,
        batch_sizes in prop::collection::vec(1usize..17, 1..20),
    ) {
        let cfg = QueueConfig { slots, lane_width, rows };
        let q = GravelQueue::new(cfg);
        let mut expected = Vec::new();
        let mut next = 0u64;
        let mut consumed = Vec::new();
        for &raw in &batch_sizes {
            let count = raw.min(lane_width);
            let words: Vec<u64> = (0..count * rows).map(|_| { next += 1; next }).collect();
            expected.extend_from_slice(&words);
            q.produce_batch(&words, count);
            // Drain eagerly so small rings never block the single thread.
            let mut out = Vec::new();
            while let Consumed::Batch(_) = q.try_consume_into(&mut out) {}
            consumed.extend(out);
        }
        prop_assert_eq!(consumed, expected);
    }

    /// Multi-threaded Gravel queue: producers on threads, single consumer;
    /// every tagged message arrives exactly once.
    #[test]
    fn gravel_queue_exactly_once_concurrent(
        producers in 1usize..4,
        batches_per_producer in 1usize..20,
        lane_width in 1usize..9,
    ) {
        let q = Arc::new(GravelQueue::new(QueueConfig { slots: 4, lane_width, rows: 1 }));
        let handles: Vec<_> = (0..producers).map(|p| {
            let q = q.clone();
            std::thread::spawn(move || {
                for b in 0..batches_per_producer {
                    let tag = ((p as u64) << 32) | b as u64;
                    let words = vec![tag; lane_width];
                    q.produce_batch(&words, lane_width);
                }
            })
        }).collect();
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while q.consume_blocking(&mut got).is_some() {}
                got
            })
        };
        for h in handles { h.join().unwrap(); }
        q.close();
        let mut got = consumer.join().unwrap();
        prop_assert_eq!(got.len(), producers * batches_per_producer * lane_width);
        got.sort_unstable();
        got.dedup();
        prop_assert_eq!(got.len(), producers * batches_per_producer);
    }

    /// SPSC queue under concurrency keeps FIFO order and loses nothing.
    #[test]
    fn spsc_fifo_exactly_once(n in 1usize..400, capacity in 2usize..16) {
        let q = Arc::new(SpscQueue::new(capacity, 1));
        let qp = q.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..n as u64 { qp.produce(&[i]); }
            qp.close();
        });
        let mut out = Vec::new();
        while q.consume_blocking(&mut out).is_some() {}
        producer.join().unwrap();
        prop_assert_eq!(out, (0..n as u64).collect::<Vec<_>>());
    }

    /// MPMC queue with 2 producers and 2 consumers delivers exactly once.
    #[test]
    fn mpmc_exactly_once(per_producer in 1usize..200, capacity in 2usize..16) {
        let q = Arc::new(MpmcQueue::new(capacity, 1));
        let producers: Vec<_> = (0..2).map(|p| {
            let q = q.clone();
            std::thread::spawn(move || {
                for i in 0..per_producer as u64 {
                    q.produce(&[(p as u64) << 32 | i]);
                }
            })
        }).collect();
        let consumers: Vec<_> = (0..2).map(|_| {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while q.consume_blocking(&mut got).is_some() {}
                got
            })
        }).collect();
        for p in producers { p.join().unwrap(); }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        prop_assert_eq!(all.len(), 2 * per_producer);
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), 2 * per_producer);
    }

    /// Message codec round-trips for arbitrary fields.
    #[test]
    fn message_codec_roundtrip(dest: u32, addr: u64, value: u64, handler: u32, kind in 0u8..4) {
        use gravel_gq::{Command, Message};
        let m = match kind {
            0 => Message::put(dest, addr, value),
            1 => Message::inc(dest, addr, value),
            2 => Message::active(dest, handler, addr, value),
            _ => Message::shutdown(),
        };
        prop_assert_eq!(Message::decode(m.encode()), Some(m));
        prop_assert_eq!(Command::decode(m.command.encode()), Some(m.command));
    }
}
