//! A step-by-step re-enactment of the paper's Figure 7: the
//! producer/consumer queue's ticket protocol, times ① through ⑤.
//!
//! The figure shows a three-slot queue. wg0's leader (wi3) takes write
//! ticket 0 (②), the work-group fills the slot and sets the full bit
//! (③), aggregator thread t0 takes read ticket 0 and owns the slot
//! because F is set (④), and after consuming it clears F and increments
//! the current ticket N to release the slot (⑤).

use gravel_gq::{Consumed, GravelQueue, Message, QueueConfig};
use gravel_simt::{Grid, SimtEngine};

#[test]
fn figure7_timeline() {
    // Time ①: a three-slot queue, empty. Slots are 4 messages wide
    // (wi0..wi3 in the figure).
    let q = GravelQueue::new(QueueConfig { slots: 3, lane_width: 4, rows: 4 });
    assert_eq!(q.backlog(), 0);
    let mut out = Vec::new();
    assert_eq!(q.try_consume_into(&mut out), Consumed::Empty, "① empty queue");

    // Times ② and ③: wg0's four work-items produce; the leader performs
    // the single reservation RMW and publishes with the full bit.
    // Messages target nodes [1, 3, 1, 2] as drawn in the figure.
    let dests = [1u32, 3, 1, 2];
    let engine = SimtEngine::with_cus(1);
    engine.dispatch(Grid { wg_count: 1, wg_size: 4, wf_width: 4 }, |ctx| {
        q.wg_produce(ctx, |lane, row| Message::inc(dests[lane], lane as u64, 1).encode()[row]);
    });
    let snap = q.stats.snapshot();
    assert_eq!(snap.producer_rmws, 1, "② exactly one write-ticket RMW for the work-group");
    assert_eq!(snap.messages_produced, 4, "③ all four work-items wrote the slot");
    assert_eq!(q.backlog(), 1, "③ slot published, not yet consumed");

    // Time ④: the aggregator takes the read ticket and owns the slot
    // because F is set.
    assert_eq!(q.try_consume_into(&mut out), Consumed::Batch(4), "④ consumer owns the slot");
    let got: Vec<u32> = out
        .chunks_exact(4)
        .map(|c| Message::decode([c[0], c[1], c[2], c[3]]).unwrap().dest)
        .collect();
    assert_eq!(got, dests.to_vec(), "④ payload columns preserved in lane order: n1 n3 n1 n2");

    // Time ⑤: the slot is released (F cleared, N incremented) — the ring
    // is reusable for three more rounds without blocking.
    assert_eq!(q.backlog(), 0, "⑤ slot released");
    for round in 0..3 {
        q.produce_batch(&Message::put(0, round, round).encode(), 1);
    }
    assert_eq!(q.backlog(), 3, "ring accepts a full lap after release");
    let mut drained = 0;
    while let Consumed::Batch(n) = q.try_consume_into(&mut out) {
        drained += n;
    }
    assert_eq!(drained, 3);
}

/// The same protocol re-entered many times: slot N/F cycling never skips
/// or replays a round (the ticket is derived from the global index, so
/// producers and consumers for round k always agree).
#[test]
fn ticket_rounds_cycle_exactly() {
    let q = GravelQueue::new(QueueConfig { slots: 2, lane_width: 1, rows: 1 });
    let mut out = Vec::new();
    for i in 0..100u64 {
        q.produce_batch(&[i], 1);
        assert_eq!(q.try_consume_into(&mut out), Consumed::Batch(1));
    }
    assert_eq!(out, (0..100).collect::<Vec<u64>>());
}
