//! The reliable in-memory fabric: bounded crossbeam channels.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, SendTimeoutError, TrySendError};
use gravel_pgas::DataFrame;

use crate::{AckFrame, FaultStats, Heartbeat, NodeId, RecvStatus, SendStatus, Transport};

/// Reliable bounded-channel transport: one data ingress channel per
/// node (consumed by its network thread) and one ack mailbox per
/// `(node, lane)` (consumed by that aggregator).
///
/// Closing is a flag rather than sender-drop choreography: receivers
/// keep draining frames already in flight and report
/// [`RecvStatus::Closed`] only once the flag is set *and* their channel
/// is empty, so nothing accepted before `close()` is lost.
pub struct ChannelTransport {
    data: Vec<(Sender<DataFrame>, Receiver<DataFrame>)>,
    acks: Vec<Vec<(Sender<AckFrame>, Receiver<AckFrame>)>>,
    heartbeats: Vec<(Sender<Heartbeat>, Receiver<Heartbeat>)>,
    closed: AtomicBool,
    dropped_acks: AtomicU64,
}

/// Ack mailboxes are small: a flow re-acks on every packet, and only
/// the latest cumulative value matters.
const ACK_MAILBOX_CAPACITY: usize = 1024;

/// Heartbeat mailboxes are smaller still: only the most recent arrivals
/// matter to the failure detector, and losing a beat is itself a valid
/// network behaviour the detector must absorb.
const HEARTBEAT_MAILBOX_CAPACITY: usize = 256;

impl ChannelTransport {
    /// Fabric for `nodes` nodes with `lanes` aggregator lanes each and
    /// `capacity` packets of data buffering per node.
    pub fn new(nodes: usize, lanes: usize, capacity: usize) -> Self {
        assert!(nodes > 0 && lanes > 0, "empty fabric");
        assert!(capacity > 0, "data channels must hold at least one packet");
        ChannelTransport {
            data: (0..nodes).map(|_| bounded(capacity)).collect(),
            acks: (0..nodes)
                .map(|_| (0..lanes).map(|_| bounded(ACK_MAILBOX_CAPACITY)).collect())
                .collect(),
            heartbeats: (0..nodes).map(|_| bounded(HEARTBEAT_MAILBOX_CAPACITY)).collect(),
            closed: AtomicBool::new(false),
            dropped_acks: AtomicU64::new(0),
        }
    }
}

impl Transport for ChannelTransport {
    fn nodes(&self) -> usize {
        self.data.len()
    }

    fn lanes(&self) -> usize {
        self.acks[0].len()
    }

    fn send_data(&self, frame: DataFrame, timeout: Duration) -> SendStatus {
        if self.closed.load(Ordering::Acquire) {
            return SendStatus::Closed;
        }
        let dest = frame.dest as usize;
        debug_assert!(dest < self.data.len(), "frame to unknown node {dest}");
        match self.data[dest].0.send_timeout(frame, timeout) {
            Ok(()) => SendStatus::Sent,
            Err(SendTimeoutError::Timeout(_)) => {
                if self.closed.load(Ordering::Acquire) {
                    SendStatus::Closed
                } else {
                    SendStatus::TimedOut
                }
            }
            Err(SendTimeoutError::Disconnected(_)) => SendStatus::Closed,
        }
    }

    fn recv_data(&self, node: NodeId, timeout: Duration) -> RecvStatus<DataFrame> {
        let rx = &self.data[node as usize].1;
        match rx.recv_timeout(timeout) {
            Ok(frame) => RecvStatus::Msg(frame),
            Err(RecvTimeoutError::Timeout) => {
                if self.closed.load(Ordering::Acquire) && rx.is_empty() {
                    RecvStatus::Closed
                } else {
                    RecvStatus::TimedOut
                }
            }
            Err(RecvTimeoutError::Disconnected) => RecvStatus::Closed,
        }
    }

    fn send_ack(&self, ack: AckFrame) {
        if self.closed.load(Ordering::Acquire) {
            return;
        }
        let (dest, lane) = (ack.dest as usize, ack.lane as usize);
        debug_assert!(dest < self.acks.len() && lane < self.acks[dest].len());
        if let Err(TrySendError::Full(_)) = self.acks[dest][lane].0.try_send(ack) {
            self.dropped_acks.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn try_recv_ack(&self, node: NodeId, lane: u32) -> Option<AckFrame> {
        self.acks[node as usize][lane as usize].1.try_recv().ok()
    }

    fn send_heartbeat(&self, hb: Heartbeat) {
        if self.closed.load(Ordering::Acquire) {
            return;
        }
        // A full mailbox silently eats the beat: heartbeats carry no
        // payload the detector cannot reconstruct from the next one.
        let _ = self.heartbeats[hb.dest as usize].0.try_send(hb);
    }

    fn try_recv_heartbeat(&self, node: NodeId) -> Option<Heartbeat> {
        self.heartbeats[node as usize].1.try_recv().ok()
    }

    fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    fn fault_stats(&self) -> FaultStats {
        FaultStats {
            dropped_acks: self.dropped_acks.load(Ordering::Relaxed),
            ..FaultStats::default()
        }
    }

    fn data_depths(&self) -> Vec<usize> {
        self.data.iter().map(|(tx, _)| tx.len()).collect()
    }

    fn ack_depths(&self, node: NodeId) -> usize {
        self.acks[node as usize].iter().map(|(tx, _)| tx.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ack;
    use gravel_pgas::{Packet, WireIntegrity};

    fn frame(src: u32, dest: u32, tag: u64) -> DataFrame {
        Packet::from_words(src, dest, &[tag]).seal(0, WireIntegrity::Crc32c)
    }

    fn words(f: &DataFrame) -> Vec<u64> {
        f.open(WireIntegrity::Crc32c).expect("fabric is reliable").words()
    }

    fn ack(src: u32, dest: u32, lane: u32, cum_seq: u64) -> AckFrame {
        Ack { src, dest, lane, cum_seq }.seal(0, WireIntegrity::Crc32c)
    }

    const T: Duration = Duration::from_millis(200);

    #[test]
    fn routes_data_by_destination() {
        let t = ChannelTransport::new(3, 1, 16);
        assert_eq!(t.send_data(frame(0, 1, 7), T), SendStatus::Sent);
        assert_eq!(t.send_data(frame(0, 2, 9), T), SendStatus::Sent);
        match t.recv_data(1, T) {
            RecvStatus::Msg(f) => assert_eq!(words(&f), vec![7]),
            other => panic!("{other:?}"),
        }
        match t.recv_data(2, T) {
            RecvStatus::Msg(f) => assert_eq!(words(&f), vec![9]),
            other => panic!("{other:?}"),
        }
        assert!(matches!(t.recv_data(0, Duration::from_millis(1)), RecvStatus::TimedOut));
    }

    #[test]
    fn bounded_channel_times_out_when_full() {
        let t = ChannelTransport::new(2, 1, 1);
        assert_eq!(t.send_data(frame(0, 1, 1), T), SendStatus::Sent);
        assert_eq!(t.send_data(frame(0, 1, 2), Duration::from_millis(5)), SendStatus::TimedOut);
        // Draining unblocks the sender.
        assert!(matches!(t.recv_data(1, T), RecvStatus::Msg(_)));
        assert_eq!(t.send_data(frame(0, 1, 2), T), SendStatus::Sent);
        assert_eq!(t.data_depths(), vec![0, 1]);
    }

    #[test]
    fn close_drains_in_flight_then_reports_closed() {
        let t = ChannelTransport::new(2, 1, 4);
        assert_eq!(t.send_data(frame(0, 1, 5), T), SendStatus::Sent);
        t.close();
        assert_eq!(t.send_data(frame(0, 1, 6), T), SendStatus::Closed);
        assert!(matches!(t.recv_data(1, T), RecvStatus::Msg(_)));
        assert!(matches!(t.recv_data(1, Duration::from_millis(1)), RecvStatus::Closed));
        assert!(t.is_closed());
    }

    #[test]
    fn acks_route_to_lane_mailboxes() {
        let t = ChannelTransport::new(2, 2, 4);
        t.send_ack(ack(1, 0, 1, 41));
        assert_eq!(t.try_recv_ack(0, 0), None);
        let got = t.try_recv_ack(0, 1).expect("routed to (0, 1)");
        assert_eq!(
            got.open(WireIntegrity::Crc32c).unwrap(),
            Ack { src: 1, dest: 0, lane: 1, cum_seq: 41 }
        );
        assert_eq!(t.try_recv_ack(0, 1), None);
    }

    #[test]
    fn heartbeats_route_and_survive_overflow() {
        let t = ChannelTransport::new(2, 1, 4);
        t.send_heartbeat(Heartbeat { src: 0, dest: 1, seq: 7 });
        assert_eq!(t.try_recv_heartbeat(0), None);
        assert_eq!(t.try_recv_heartbeat(1), Some(Heartbeat { src: 0, dest: 1, seq: 7 }));
        // Overflow is silent: the mailbox keeps the oldest beats and the
        // sender never blocks.
        for seq in 0..(HEARTBEAT_MAILBOX_CAPACITY as u64 * 2) {
            t.send_heartbeat(Heartbeat { src: 0, dest: 1, seq });
        }
        let mut drained = 0;
        while t.try_recv_heartbeat(1).is_some() {
            drained += 1;
        }
        assert_eq!(drained, HEARTBEAT_MAILBOX_CAPACITY);
    }

    #[test]
    fn full_ack_mailbox_drops_and_counts() {
        let t = ChannelTransport::new(2, 1, 4);
        for i in 0..(ACK_MAILBOX_CAPACITY as u64 + 10) {
            t.send_ack(ack(1, 0, 0, i));
        }
        assert_eq!(t.fault_stats().dropped_acks, 10);
    }
}
