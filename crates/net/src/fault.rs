//! Fault-model, retry, and transport-selection configuration.

use std::time::Duration;

use crate::partition::LinkFault;

/// Which fabric the runtime should build.
#[derive(Clone, Debug, Default)]
pub enum TransportKind {
    /// In-memory bounded channels with no injected faults (the behaviour
    /// of the original hardwired fabric). The delivery protocol still
    /// runs — sequence numbers and acks flow — but nothing is ever
    /// dropped, duplicated, or reordered.
    #[default]
    Reliable,
    /// The reliable fabric wrapped in [`UnreliableTransport`]
    /// (crate-level docs) with this fault model.
    Unreliable(FaultConfig),
}

/// Seeded per-link fault model for [`UnreliableTransport`].
///
/// Each ordered cross-node link `(src, dest)` gets its own RNG derived
/// from `seed`, so a fixed seed reproduces the exact same fault pattern
/// for a given traffic order on each link regardless of cluster size or
/// scheduling of other links.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Base seed for all per-link RNGs.
    pub seed: u64,
    /// Probability a data packet is silently dropped.
    pub drop: f64,
    /// Probability a data packet is delivered twice.
    pub duplicate: f64,
    /// Probability a data packet is held back (delayed past later
    /// packets on the same link — the reordering mechanism).
    pub reorder: f64,
    /// Maximum extra latency for held-back packets; also the jitter
    /// bound applied to every delayed delivery.
    pub jitter: Duration,
    /// If nonzero, every link independently goes down once per period
    /// (phase-shifted per link so outages do not align cluster-wide).
    pub link_down_period: Duration,
    /// Length of each link-down window; packets and acks sent into a
    /// down link are dropped.
    pub link_down_len: Duration,
    /// Probability a data frame has 1–3 random bits flipped in flight.
    /// Also the probability an ack frame is bit-flipped on the reverse
    /// path.
    pub corrupt: f64,
    /// Probability a data frame is cut short at a random byte boundary.
    pub truncate: f64,
    /// Probability a data frame is replaced wholesale by random junk
    /// bytes (a babbling fabric).
    pub garbage: f64,
    /// Probability a data frame's *routing stamp* is rewritten so it
    /// lands at the wrong node with its contents (and CRC) intact.
    pub misroute: f64,
    /// Probability a data packet is held back by `delay` +
    /// seeded jitter in `[0, jitter)` — a latency fault, independent of
    /// the `reorder` knob (which injects jitter-only holds).
    pub delay_prob: f64,
    /// Base extra latency for `delay_prob` holds.
    pub delay: Duration,
    /// Declarative connectivity faults (symmetric partitions, one-way
    /// drops, per-link delays) evaluated against time since the
    /// transport was built — see [`LinkFault`]. These affect every
    /// traffic class: data, acks, and heartbeats.
    pub link_faults: Vec<LinkFault>,
}

impl FaultConfig {
    /// A fault model that only drops packets, with probability `drop`.
    pub fn drop_only(seed: u64, drop: f64) -> Self {
        FaultConfig { seed, drop, ..FaultConfig::quiet(seed) }
    }

    /// All fault probabilities zero (useful as a `..` base).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            jitter: Duration::from_micros(300),
            link_down_period: Duration::ZERO,
            link_down_len: Duration::ZERO,
            corrupt: 0.0,
            truncate: 0.0,
            garbage: 0.0,
            misroute: 0.0,
            delay_prob: 0.0,
            delay: Duration::ZERO,
            link_faults: Vec::new(),
        }
    }

    /// The corruption mix used by the wire-integrity tests and the
    /// fault_sweep corruption cells: bit flips at `p`, truncation and
    /// garbage at `p/2`, misroutes at `p/4`.
    pub fn corrupting(seed: u64, p: f64) -> Self {
        FaultConfig {
            corrupt: p,
            truncate: p / 2.0,
            garbage: p / 2.0,
            misroute: p / 4.0,
            ..FaultConfig::quiet(seed)
        }
    }

    /// The stress mix used by the fault-matrix tests: drop + duplicate +
    /// reorder all enabled at `p`, `2·p/3`, and `p` respectively.
    pub fn mixed(seed: u64, p: f64) -> Self {
        FaultConfig {
            seed,
            drop: p,
            duplicate: p * 2.0 / 3.0,
            reorder: p,
            ..FaultConfig::quiet(seed)
        }
    }

    /// Validate probability ranges; panics on nonsense.
    pub fn validate(&self) {
        for (name, p) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("corrupt", self.corrupt),
            ("truncate", self.truncate),
            ("garbage", self.garbage),
            ("misroute", self.misroute),
            ("delay_prob", self.delay_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "fault probability `{name}` = {p} out of [0, 1]");
        }
        if !self.link_down_period.is_zero() {
            assert!(
                self.link_down_len < self.link_down_period,
                "link_down_len must be shorter than link_down_period"
            );
        }
        if self.delay_prob > 0.0 {
            assert!(
                !self.delay.is_zero() || !self.jitter.is_zero(),
                "delay_prob without a delay or jitter bound does nothing"
            );
        }
    }
}

/// Sender-side delivery/retry tuning (go-back-N with cumulative acks).
#[derive(Clone, Debug)]
pub struct RetryConfig {
    /// Maximum unacknowledged packets in flight per (lane, destination)
    /// flow; a full window stalls the sender (counted as backpressure).
    pub window: usize,
    /// Initial retransmission backoff. Doubles on every expiry without
    /// progress, up to [`backoff_max`](Self::backoff_max).
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Consecutive no-progress retransmission rounds before the flow is
    /// declared dead and shutdown reports `RetryExhausted`.
    pub max_retries: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        // The initial backoff is deliberately far above in-process ack
        // latency (~tens of µs): a retransmission should mean the packet
        // or its ack was genuinely lost, not that the receiver thread was
        // briefly preempted. Worst-case dead-flow detection is
        // 25 + 50 + 100 + 200 + 16·250 ms ≈ 4.4 s, comfortably inside
        // the default quiesce deadlines.
        RetryConfig {
            window: 64,
            backoff: Duration::from_millis(25),
            backoff_max: Duration::from_millis(250),
            max_retries: 20,
        }
    }
}

/// Counters of faults an unreliable transport actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Data packets silently dropped (probability faults).
    pub dropped_data: u64,
    /// Acks dropped (probability faults or full mailbox).
    pub dropped_acks: u64,
    /// Heartbeats dropped (probability faults; full-mailbox losses are
    /// not counted — the detector never learns about them by design).
    pub dropped_heartbeats: u64,
    /// Data packets delivered twice.
    pub duplicated: u64,
    /// Data packets held back for jittered delivery.
    pub delayed: u64,
    /// Frames dropped because their link was in a down window.
    pub link_down_drops: u64,
    /// Data frames delivered with 1–3 bits flipped. Corruption counters
    /// count frames that *reached* a receiver mangled (the fabric
    /// accepted them), so they reconcile exactly against the receiver's
    /// integrity-drop counters.
    pub corrupted_data: u64,
    /// Data frames delivered cut short.
    pub truncated_data: u64,
    /// Data frames replaced wholesale with junk bytes.
    pub garbage_data: u64,
    /// Data frames delivered to the wrong node, contents intact.
    pub misrouted_data: u64,
    /// Ack frames delivered with bits flipped (best-effort plane: a
    /// corrupted ack may additionally die in a full mailbox, so
    /// receivers reconcile `<=` against this).
    pub corrupted_acks: u64,
    /// Frames (any plane) dropped by a symmetric partition window.
    pub partition_drops: u64,
    /// Frames (any plane) dropped by a one-way link fault.
    pub oneway_drops: u64,
}

impl FaultStats {
    /// Total injected data-plane losses.
    pub fn total_losses(&self) -> u64 {
        self.dropped_data + self.link_down_drops + self.partition_drops + self.oneway_drops
    }

    /// Total data frames delivered mangled in some way (excludes
    /// misroutes, whose bytes are intact).
    pub fn total_corruptions(&self) -> u64 {
        self.corrupted_data + self.truncated_data + self.garbage_data
    }

    /// True when no fault of any kind fired.
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_accepts_sane_models() {
        FaultConfig::quiet(1).validate();
        FaultConfig::drop_only(1, 0.1).validate();
        FaultConfig::mixed(1, 0.1).validate();
        FaultConfig::corrupting(1, 0.1).validate();
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn validation_rejects_bad_corruption_probability() {
        FaultConfig { corrupt: -0.5, ..FaultConfig::quiet(1) }.validate();
    }

    #[test]
    #[should_panic(expected = "out of [0, 1]")]
    fn validation_rejects_bad_probability() {
        FaultConfig::drop_only(1, 1.5).validate();
    }

    #[test]
    #[should_panic(expected = "shorter than")]
    fn validation_rejects_always_down_link() {
        let mut f = FaultConfig::quiet(1);
        f.link_down_period = Duration::from_millis(5);
        f.link_down_len = Duration::from_millis(5);
        f.validate();
    }

    #[test]
    fn fault_stats_helpers() {
        let mut s = FaultStats::default();
        assert!(s.is_clean());
        s.dropped_data = 3;
        s.link_down_drops = 2;
        assert_eq!(s.total_losses(), 5);
        assert!(!s.is_clean());
        s.corrupted_data = 4;
        s.truncated_data = 2;
        s.garbage_data = 1;
        s.misrouted_data = 9;
        assert_eq!(s.total_corruptions(), 7, "misroutes are not byte corruption");
    }
}
