//! Declarative link-level chaos: network partitions, one-way link
//! drops, and per-link delay injection.
//!
//! [`ChaosPlan`](crate::ChaosPlan) schedules *process* faults;
//! [`FaultConfig`](crate::FaultConfig) rolls *probabilistic* per-frame
//! faults. This module covers the third family real clusters face —
//! **structured connectivity failures** — as a declarative, seeded
//! schedule of [`LinkFault`]s evaluated against wall-clock time since
//! the schedule was armed:
//!
//! - [`LinkFault::Partition`] — a symmetric split: during the window,
//!   no frame crosses between the island and the rest of the cluster
//!   in either direction. Both sides keep talking internally.
//! - [`LinkFault::OneWay`] — an asymmetric drop: `src → dest` frames
//!   die, `dest → src` frames pass. This is the classic half-broken
//!   link that makes naive failure detectors declare a live node dead
//!   on one side only.
//! - [`LinkFault::Delay`] — every `src → dest` frame is held back by
//!   `base` plus a seeded jitter in `[0, jitter)`, which also reorders
//!   it against frames on other links.
//!
//! A [`LinkSchedule`] is consulted from a transport's single outbound
//! chokepoint (socket `write_to_peer`, or `UnreliableTransport`'s send
//! paths), so *every* traffic class — data, acks, heartbeats, control
//! frames — experiences the partition, exactly like a cable pull.
//! Multi-process harnesses hand every node the same textual spec
//! ([`LinkSchedule::parse`]); windows are measured from each process's
//! own arm time, so specs should use windows comfortably wider than
//! process-launch skew.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::NodeId;

/// SplitMix64 finalizer for deriving per-frame delay jitter.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One scheduled connectivity fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkFault {
    /// Symmetric partition: for `from <= elapsed < until`, frames
    /// between a node inside `island` and a node outside it are dropped
    /// in both directions.
    Partition { island: Vec<NodeId>, from: Duration, until: Duration },
    /// Asymmetric drop: for `from <= elapsed < until`, frames from
    /// `src` to `dest` are dropped; the reverse direction is untouched.
    OneWay { src: NodeId, dest: NodeId, from: Duration, until: Duration },
    /// Every `src → dest` frame is delayed by `base` plus a seeded
    /// jitter uniform in `[0, jitter)`. Active for the whole run.
    Delay { src: NodeId, dest: NodeId, base: Duration, jitter: Duration },
}

/// A seeded, armable schedule of [`LinkFault`]s plus injection
/// counters. All methods take `&self`; the hot-path queries are a scan
/// over a handful of faults with no locks.
pub struct LinkSchedule {
    faults: Vec<LinkFault>,
    seed: u64,
    /// Set once, at [`arm`](Self::arm) or first query — windows are
    /// relative to this instant.
    epoch: OnceLock<Instant>,
    delay_ctr: AtomicU64,
    partition_drops: AtomicU64,
    oneway_drops: AtomicU64,
    delayed: AtomicU64,
}

/// Injection counters of a [`LinkSchedule`], for reconciliation against
/// observer-side telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkScheduleStats {
    /// Frames dropped because a symmetric partition window covered the
    /// link.
    pub partition_drops: u64,
    /// Frames dropped by a one-way window.
    pub oneway_drops: u64,
    /// Frames held back by a delay fault.
    pub delayed: u64,
}

impl LinkSchedule {
    pub fn new(seed: u64, faults: Vec<LinkFault>) -> Self {
        for f in &faults {
            match f {
                LinkFault::Partition { island, from, until } => {
                    assert!(!island.is_empty(), "empty partition island");
                    assert!(from < until, "partition window must be nonempty");
                }
                LinkFault::OneWay { src, dest, from, until } => {
                    assert!(src != dest, "one-way fault on loopback");
                    assert!(from < until, "one-way window must be nonempty");
                }
                LinkFault::Delay { src, dest, base, jitter } => {
                    assert!(src != dest, "delay fault on loopback");
                    assert!(
                        !base.is_zero() || !jitter.is_zero(),
                        "delay fault with zero base and jitter"
                    );
                }
            }
        }
        LinkSchedule {
            faults,
            seed,
            epoch: OnceLock::new(),
            delay_ctr: AtomicU64::new(0),
            partition_drops: AtomicU64::new(0),
            oneway_drops: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
        }
    }

    /// An empty schedule (never blocks or delays anything).
    pub fn none() -> Self {
        LinkSchedule::new(0, Vec::new())
    }

    /// Derive a seeded symmetric half/half split of `nodes` nodes
    /// active during `[from, until)`. Same seed → same island.
    pub fn seeded_split(seed: u64, nodes: usize, from: Duration, until: Duration) -> LinkFault {
        assert!(nodes >= 2, "cannot split fewer than 2 nodes");
        let take = nodes / 2;
        // Seeded Fisher-Yates prefix: pick `take` distinct nodes.
        let mut ids: Vec<NodeId> = (0..nodes as u32).collect();
        for i in 0..take {
            let j = i + (mix(seed.wrapping_add(i as u64)) as usize) % (nodes - i);
            ids.swap(i, j);
        }
        let mut island = ids[..take].to_vec();
        island.sort_unstable();
        LinkFault::Partition { island, from, until }
    }

    /// The scheduled faults.
    pub fn faults(&self) -> &[LinkFault] {
        &self.faults
    }

    /// True when the schedule contains no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// True when any [`LinkFault::Delay`] is scheduled (transports use
    /// this to decide whether to run a delay pump at all).
    pub fn has_delays(&self) -> bool {
        self.faults.iter().any(|f| matches!(f, LinkFault::Delay { .. }))
    }

    /// Start the schedule clock now (idempotent; queries arm lazily if
    /// never called).
    pub fn arm(&self) {
        let _ = self.epoch.set(Instant::now());
    }

    fn elapsed(&self) -> Duration {
        self.epoch.get_or_init(Instant::now).elapsed()
    }

    /// Should a frame from `src` to `dest` be dropped right now?
    /// Counts the drop when true.
    pub fn blocked(&self, src: NodeId, dest: NodeId) -> bool {
        if src == dest || self.faults.is_empty() {
            return false;
        }
        let now = self.elapsed();
        for f in &self.faults {
            match f {
                LinkFault::Partition { island, from, until } => {
                    if now >= *from
                        && now < *until
                        && island.contains(&src) != island.contains(&dest)
                    {
                        self.partition_drops.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                }
                LinkFault::OneWay { src: s, dest: d, from, until } => {
                    if *s == src && *d == dest && now >= *from && now < *until {
                        self.oneway_drops.fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                }
                LinkFault::Delay { .. } => {}
            }
        }
        false
    }

    /// Extra latency to impose on a `src → dest` frame, if a delay
    /// fault covers the link. Counts the delay when `Some`.
    pub fn delay(&self, src: NodeId, dest: NodeId) -> Option<Duration> {
        if src == dest {
            return None;
        }
        for f in &self.faults {
            if let LinkFault::Delay { src: s, dest: d, base, jitter } = f {
                if *s == src && *d == dest {
                    let extra = if jitter.is_zero() {
                        Duration::ZERO
                    } else {
                        let n = self.delay_ctr.fetch_add(1, Ordering::Relaxed);
                        Duration::from_nanos(
                            mix(self.seed ^ n) % (jitter.as_nanos() as u64).max(1),
                        )
                    };
                    self.delayed.fetch_add(1, Ordering::Relaxed);
                    return Some(*base + extra);
                }
            }
        }
        None
    }

    /// Injection counters so far.
    pub fn stats(&self) -> LinkScheduleStats {
        LinkScheduleStats {
            partition_drops: self.partition_drops.load(Ordering::Relaxed),
            oneway_drops: self.oneway_drops.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
        }
    }

    /// Parse the textual spec multi-process harnesses pass on the
    /// command line: `;`-separated entries of
    ///
    /// ```text
    /// part:<id>|<id>|...:<from_ms>:<until_ms>
    /// oneway:<src>:<dest>:<from_ms>:<until_ms>
    /// delay:<src>:<dest>:<base_ms>:<jitter_ms>
    /// ```
    pub fn parse(seed: u64, spec: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
            let parts: Vec<&str> = entry.trim().split(':').collect();
            let num = |s: &str| -> Result<u64, String> {
                s.parse::<u64>().map_err(|_| format!("bad number `{s}` in `{entry}`"))
            };
            match parts.as_slice() {
                ["part", island, from, until] => {
                    let ids = island
                        .split('|')
                        .map(|s| num(s).map(|v| v as NodeId))
                        .collect::<Result<Vec<_>, _>>()?;
                    faults.push(LinkFault::Partition {
                        island: ids,
                        from: Duration::from_millis(num(from)?),
                        until: Duration::from_millis(num(until)?),
                    });
                }
                ["oneway", src, dest, from, until] => {
                    faults.push(LinkFault::OneWay {
                        src: num(src)? as NodeId,
                        dest: num(dest)? as NodeId,
                        from: Duration::from_millis(num(from)?),
                        until: Duration::from_millis(num(until)?),
                    });
                }
                ["delay", src, dest, base, jitter] => {
                    faults.push(LinkFault::Delay {
                        src: num(src)? as NodeId,
                        dest: num(dest)? as NodeId,
                        base: Duration::from_millis(num(base)?),
                        jitter: Duration::from_millis(num(jitter)?),
                    });
                }
                _ => return Err(format!("unrecognized link-chaos entry `{entry}`")),
            }
        }
        Ok(LinkSchedule::new(seed, faults))
    }
}

impl fmt::Debug for LinkSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinkSchedule")
            .field("faults", &self.faults)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn partition_blocks_across_but_not_within_the_island() {
        let s = LinkSchedule::new(
            1,
            vec![LinkFault::Partition { island: vec![0, 1, 2], from: ms(0), until: ms(60_000) }],
        );
        s.arm();
        assert!(s.blocked(0, 3), "island to outside");
        assert!(s.blocked(4, 1), "outside to island");
        assert!(!s.blocked(0, 2), "within island");
        assert!(!s.blocked(3, 5), "within the complement");
        assert!(!s.blocked(0, 0), "loopback is never partitioned");
        let st = s.stats();
        assert_eq!((st.partition_drops, st.oneway_drops), (2, 0));
    }

    #[test]
    fn partition_respects_its_window() {
        let s = LinkSchedule::new(
            1,
            vec![LinkFault::Partition { island: vec![0], from: ms(50), until: ms(80) }],
        );
        s.arm();
        assert!(!s.blocked(0, 1), "before the window");
        std::thread::sleep(ms(55));
        assert!(s.blocked(0, 1), "inside the window");
        std::thread::sleep(ms(40));
        assert!(!s.blocked(0, 1), "after the window — healed");
    }

    #[test]
    fn oneway_is_asymmetric() {
        let s = LinkSchedule::new(
            1,
            vec![LinkFault::OneWay { src: 2, dest: 3, from: ms(0), until: ms(60_000) }],
        );
        s.arm();
        assert!(s.blocked(2, 3), "faulted direction drops");
        assert!(!s.blocked(3, 2), "reverse direction passes");
        assert!(!s.blocked(2, 4), "other links untouched");
        assert_eq!(s.stats().oneway_drops, 1);
    }

    #[test]
    fn delay_is_seeded_and_bounded() {
        let make = |seed| {
            let s = LinkSchedule::new(
                seed,
                vec![LinkFault::Delay { src: 0, dest: 1, base: ms(5), jitter: ms(10) }],
            );
            s.arm();
            (0..32).map(|_| s.delay(0, 1).unwrap()).collect::<Vec<_>>()
        };
        let a = make(7);
        assert_eq!(a, make(7), "same seed, same jitter sequence");
        assert_ne!(a, make(8), "different seed, different sequence");
        for d in &a {
            assert!(*d >= ms(5) && *d < ms(15), "delay {d:?} outside [base, base+jitter)");
        }
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 1, "jitter varies");
        let s = LinkSchedule::new(7, vec![LinkFault::Delay { src: 0, dest: 1, base: ms(5), jitter: ms(10) }]);
        assert_eq!(s.delay(1, 0), None, "reverse direction undelayed");
        assert_eq!(s.delay(0, 0), None, "loopback undelayed");
    }

    #[test]
    fn seeded_split_is_reproducible_and_half_sized() {
        let a = LinkSchedule::seeded_split(9, 6, ms(100), ms(200));
        assert_eq!(a, LinkSchedule::seeded_split(9, 6, ms(100), ms(200)));
        match &a {
            LinkFault::Partition { island, from, until } => {
                assert_eq!(island.len(), 3);
                assert!(island.windows(2).all(|w| w[0] < w[1]), "sorted unique");
                assert!(island.iter().all(|&n| n < 6));
                assert_eq!((*from, *until), (ms(100), ms(200)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!((0..20).any(|s| LinkSchedule::seeded_split(s, 6, ms(100), ms(200)) != a));
    }

    #[test]
    fn spec_parses_all_three_kinds() {
        let s = LinkSchedule::parse(3, "part:0|1|2:500:2500; oneway:2:3:100:900;delay:0:1:5:3")
            .unwrap();
        assert_eq!(
            s.faults(),
            &[
                LinkFault::Partition { island: vec![0, 1, 2], from: ms(500), until: ms(2500) },
                LinkFault::OneWay { src: 2, dest: 3, from: ms(100), until: ms(900) },
                LinkFault::Delay { src: 0, dest: 1, base: ms(5), jitter: ms(3) },
            ]
        );
        assert!(s.has_delays());
        assert!(LinkSchedule::parse(0, "").unwrap().is_empty());
        assert!(LinkSchedule::parse(0, "part:0:1").is_err());
        assert!(LinkSchedule::parse(0, "bogus:1:2:3:4").is_err());
        assert!(LinkSchedule::parse(0, "oneway:a:b:0:1").is_err());
    }

    #[test]
    #[should_panic(expected = "window must be nonempty")]
    fn empty_window_is_rejected() {
        LinkSchedule::new(0, vec![LinkFault::OneWay { src: 0, dest: 1, from: ms(5), until: ms(5) }]);
    }
}
