//! Real-socket transport: the fabric over OS processes.
//!
//! [`SocketTransport`] carries the same sealed frames as the in-memory
//! fabrics, but over stream sockets — Unix-domain by default, TCP
//! behind the same code — so node death can mean *process* death. Each
//! endpoint owns one listening socket and a full mesh of peer
//! connections; by convention node `i` dials every peer `j < i` and
//! accepts from every peer `j > i`, so each pair has exactly one
//! stream.
//!
//! On the wire every frame is length-delimited: a `u32` little-endian
//! byte count followed by the self-describing checksummed frame from
//! `gravel_pgas::frame` (DESIGN.md §13). [`StreamDecoder`] reassembles
//! frames from arbitrary read boundaries — a frame split at any byte
//! offset decodes identically.
//!
//! Connections open with a binary HELLO handshake (wire version, node
//! id, intended peer, epoch, cluster shape). A peer speaking a
//! different version or shape gets a counted, logged REJECT frame and a
//! closed stream, never a silent hang. Lost connections are redialed by
//! the connecting side with bounded exponential backoff plus seeded
//! jitter; while a link is down, frames routed over it are dropped and
//! counted — the runtime's go-back-N retransmission heals the loss, and
//! heartbeat silence feeds the phi-accrual detector exactly as a dead
//! process should.
//!
//! Data-plane frames honor the configured [`WireIntegrity`] (the bench
//! ablation); the connection control plane (HELLO / REJECT / HEARTBEAT
//! / CONTROL) is always sealed and verified with CRC32C — membership
//! and recovery traffic is never run unchecked.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use gravel_gq::BufferPool;
use gravel_pgas::frame::{
    open_control, open_heartbeat, open_hello, open_reject, seal_heartbeat, seal_hello,
    seal_reject, HelloInfo, RejectReason,
};
use gravel_pgas::{DataFrame, FrameError, WireIntegrity, ACK_FRAME_BYTES, HEADER_BYTES};

use crate::partition::LinkSchedule;
use crate::{AckFrame, FaultStats, Heartbeat, NodeId, RecvStatus, SendStatus, Transport};

/// Hard ceiling on a single frame's size on the wire. A length prefix
/// beyond this is a protocol violation and drops the connection.
pub const MAX_FRAME_BYTES: usize = 8 << 20;

/// Where one node listens.
#[derive(Clone, Debug)]
pub enum SocketAddrSpec {
    /// Unix-domain socket at this path.
    Uds(PathBuf),
    /// TCP endpoint, e.g. `127.0.0.1:7400`. Port 0 binds an ephemeral
    /// port (usable only by the accept side of every pair).
    Tcp(String),
}

/// Redial policy for a lost connection.
#[derive(Clone, Copy, Debug)]
pub struct ReconnectConfig {
    /// First retry delay; doubles per consecutive failure.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
    /// How long a handshake may take before the dial counts as failed.
    pub handshake_timeout: Duration,
}

impl Default for ReconnectConfig {
    fn default() -> Self {
        ReconnectConfig {
            base: Duration::from_millis(10),
            max: Duration::from_millis(250),
            handshake_timeout: Duration::from_secs(2),
        }
    }
}

/// Configuration for one node's socket endpoint.
#[derive(Clone, Debug)]
pub struct SocketConfig {
    /// This node's id.
    pub node: NodeId,
    /// Cluster size.
    pub nodes: usize,
    /// Aggregator lanes per node.
    pub lanes: usize,
    /// Listen address per node id; `addrs[node]` is bound locally.
    pub addrs: Vec<SocketAddrSpec>,
    /// Data-plane integrity (control plane is always CRC32C).
    pub integrity: WireIntegrity,
    /// Redial policy.
    pub reconnect: ReconnectConfig,
    /// Seed for backoff jitter (deterministic per seed).
    pub seed: u64,
    /// Data ingress channel capacity.
    pub ingress_capacity: usize,
    /// Packet-buffer arena for the data path: inbound data frames are
    /// sealed into recycled buffers and outbound length-prefix
    /// assembly reuses pooled scratch, so the steady-state wire loop
    /// allocates nothing. `None` (the ablation) allocates per frame.
    pub pool: Option<BufferPool>,
    /// Declarative link chaos (partitions, one-way drops, per-link
    /// delays). Consulted at the single outbound chokepoint, so every
    /// traffic class — data, acks, heartbeats, control — experiences
    /// the fault like a pulled cable. Armed at [`SocketTransport::spawn`].
    pub link_chaos: Option<Arc<LinkSchedule>>,
}

impl SocketConfig {
    /// A small-cluster default over the given addresses.
    pub fn new(node: NodeId, addrs: Vec<SocketAddrSpec>) -> Self {
        SocketConfig {
            node,
            nodes: addrs.len(),
            lanes: 1,
            addrs,
            integrity: WireIntegrity::Crc32c,
            reconnect: ReconnectConfig::default(),
            seed: 1,
            ingress_capacity: 4096,
            pool: None,
            link_chaos: None,
        }
    }
}

/// Membership-relevant connection events, in arrival order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerEvent {
    /// A handshake with this peer completed (first connect or redial).
    Up(NodeId),
    /// The stream to this peer died.
    Down(NodeId),
}

/// A verified control-plane message.
#[derive(Clone, Debug)]
pub struct ControlMsg {
    /// Sending node (verified header).
    pub src: NodeId,
    /// Sender's epoch at seal time.
    pub epoch: u32,
    /// Op-specific payload words.
    pub words: Vec<u64>,
}

/// Counter snapshot for tests and telemetry mirroring.
#[derive(Clone, Copy, Debug, Default)]
pub struct SocketStats {
    /// Handshakes completed (first connects and redials).
    pub handshakes: u64,
    /// Handshakes completed on a link that had been up before — i.e.
    /// successful reconnects after a loss.
    pub reconnects: u64,
    /// Dial attempts that failed before a handshake completed.
    pub connect_failures: u64,
    /// Inbound handshakes we refused with a REJECT frame.
    pub handshake_rejects: u64,
    /// Our own HELLOs a peer answered with a REJECT.
    pub rejected_by_peer: u64,
    /// Frames dropped because the link to their destination was down
    /// or mid-redial (go-back-N retransmission heals these).
    pub link_drops: u64,
    /// Inbound frames dropped on a full local mailbox.
    pub mailbox_drops: u64,
    /// Inbound bytes that were not a decodable frame (bad length
    /// prefix, unknown kind, failed control-plane verification).
    pub garbage_frames: u64,
    /// Outbound frames swallowed by a symmetric partition window of
    /// the configured link-chaos schedule.
    pub partition_drops: u64,
    /// Outbound frames swallowed by a one-way link fault.
    pub oneway_drops: u64,
    /// Outbound frames held back by a per-link delay fault.
    pub chaos_delayed: u64,
}

/// One live stream, UDS or TCP, unified behind Read/Write.
enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    fn set_read_timeout(&self, t: Option<Duration>) {
        let _ = match self {
            Stream::Unix(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(spec: &SocketAddrSpec) -> std::io::Result<Listener> {
        match spec {
            SocketAddrSpec::Uds(path) => {
                let _ = std::fs::remove_file(path);
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
            SocketAddrSpec::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
        }
    }

    fn set_nonblocking(&self) {
        let _ = match self {
            Listener::Unix(l) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        };
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l) => Ok(Stream::Unix(l.accept()?.0)),
            Listener::Tcp(l) => Ok(Stream::Tcp(l.accept()?.0)),
        }
    }

    fn local_tcp_port(&self) -> Option<u16> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok().map(|a| a.port()),
            Listener::Unix(_) => None,
        }
    }
}

// No unlink-on-drop for the Unix listener: a restarted endpoint may
// already have re-bound the same path, and a late async unlink from
// the old accept thread would delete the *new* socket file. Stale
// files are instead removed at bind time.

/// Reassembles length-delimited frames from arbitrary read boundaries.
/// Public so the fuzz tests can split a valid byte stream at every
/// offset and assert identical reassembly.
pub struct StreamDecoder {
    buf: VecDeque<u8>,
    max_frame: usize,
}

impl StreamDecoder {
    /// Decoder enforcing the given frame-size ceiling.
    pub fn new(max_frame: usize) -> Self {
        StreamDecoder { buf: VecDeque::new(), max_frame }
    }

    /// Feed bytes as they arrived from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame, `Ok(None)` if more bytes are
    /// needed, or `Err(len)` if the length prefix exceeds the ceiling
    /// (the stream is unrecoverable — framing is lost).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, usize> {
        let mut out = Vec::new();
        match self.next_frame_into(&mut out) {
            Ok(true) => Ok(Some(out)),
            Ok(false) => Ok(None),
            Err(len) => Err(len),
        }
    }

    /// Allocation-free [`next_frame`](Self::next_frame): the frame is
    /// written into `out` (cleared first) and `Ok(true)` returned. The
    /// read loop reuses one scratch vector across frames, so steady-
    /// state reassembly never allocates.
    pub fn next_frame_into(&mut self, out: &mut Vec<u8>) -> Result<bool, usize> {
        if self.buf.len() < 4 {
            return Ok(false);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
            as usize;
        if len > self.max_frame {
            return Err(len);
        }
        if self.buf.len() < 4 + len {
            return Ok(false);
        }
        self.buf.drain(..4);
        out.clear();
        out.reserve(len);
        let (head, tail) = self.buf.as_slices();
        if head.len() >= len {
            out.extend_from_slice(&head[..len]);
        } else {
            out.extend_from_slice(head);
            out.extend_from_slice(&tail[..len - head.len()]);
        }
        self.buf.drain(..len);
        Ok(true)
    }
}

/// Per-peer connection slot. `generation` ties each reader thread to
/// the stream it serves, so a stale reader can't tear down a
/// replacement connection.
struct PeerSlot {
    writer: Option<Stream>,
    generation: u64,
    ever_connected: bool,
    /// Peer answered our HELLO with a REJECT — dialing again is
    /// pointless (version/shape mismatches don't heal), so the
    /// connector stops, bounding the storm.
    gave_up: bool,
}

struct Counters {
    handshakes: AtomicU64,
    reconnects: AtomicU64,
    connect_failures: AtomicU64,
    handshake_rejects: AtomicU64,
    rejected_by_peer: AtomicU64,
    link_drops: AtomicU64,
    mailbox_drops: AtomicU64,
    garbage_frames: AtomicU64,
}

struct Inner {
    me: NodeId,
    nodes: usize,
    lanes: usize,
    integrity: WireIntegrity,
    reconnect: ReconnectConfig,
    seed: u64,
    addrs: Vec<SocketAddrSpec>,
    epoch: AtomicU32,
    closed: AtomicBool,
    peers: Vec<Mutex<PeerSlot>>,
    data_tx: Sender<DataFrame>,
    data_rx: Receiver<DataFrame>,
    ack_tx: Vec<Sender<AckFrame>>,
    ack_rx: Vec<Receiver<AckFrame>>,
    hb_tx: Sender<Heartbeat>,
    hb_rx: Receiver<Heartbeat>,
    ctrl_tx: Sender<ControlMsg>,
    ctrl_rx: Receiver<ControlMsg>,
    event_tx: Sender<PeerEvent>,
    event_rx: Mutex<Receiver<PeerEvent>>,
    stats: Counters,
    tcp_port: AtomicU32,
    pool: Option<BufferPool>,
    link_chaos: Option<Arc<LinkSchedule>>,
    /// Frames held back by a delay fault, drained by the delay pump.
    delayq: Mutex<std::collections::BinaryHeap<DelayedWrite>>,
    delay_id: AtomicU64,
}

/// One outbound frame held back by a link-chaos delay fault.
struct DelayedWrite {
    due: Instant,
    /// Tiebreak so the heap is a total order.
    id: u64,
    peer: NodeId,
    frame: Vec<u8>,
}

impl PartialEq for DelayedWrite {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl Eq for DelayedWrite {}
impl PartialOrd for DelayedWrite {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayedWrite {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-due-first.
        other.due.cmp(&self.due).then(other.id.cmp(&self.id))
    }
}

/// The socket-backed [`Transport`]. One instance per OS process (one
/// node's endpoint); construction binds the listener and starts the
/// connection supervisor threads.
pub struct SocketTransport {
    inner: Arc<Inner>,
}

const ACK_MAILBOX_CAPACITY: usize = 1024;
const HEARTBEAT_MAILBOX_CAPACITY: usize = 256;
/// How often blocked loops re-check the closed flag.
const POLL: Duration = Duration::from_millis(10);
/// Read timeout on established streams, so readers notice `close()`.
const READ_TICK: Duration = Duration::from_millis(100);

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SocketTransport {
    /// Bind the listener, start the accept and redial supervisors, and
    /// begin forming the mesh. Returns as soon as the endpoint is
    /// listening — peers come up asynchronously (see
    /// [`wait_connected`](Self::wait_connected)).
    pub fn spawn(cfg: SocketConfig) -> std::io::Result<Arc<SocketTransport>> {
        assert_eq!(cfg.addrs.len(), cfg.nodes, "one listen address per node");
        assert!((cfg.node as usize) < cfg.nodes, "node id out of range");
        let listener = Listener::bind(&cfg.addrs[cfg.node as usize])?;
        listener.set_nonblocking();
        let tcp_port = listener.local_tcp_port().unwrap_or(0);
        let (data_tx, data_rx) = bounded(cfg.ingress_capacity);
        let (hb_tx, hb_rx) = bounded(HEARTBEAT_MAILBOX_CAPACITY);
        let (ctrl_tx, ctrl_rx) = unbounded();
        let (event_tx, event_rx) = unbounded();
        let mut ack_tx = Vec::new();
        let mut ack_rx = Vec::new();
        for _ in 0..cfg.lanes {
            let (t, r) = bounded(ACK_MAILBOX_CAPACITY);
            ack_tx.push(t);
            ack_rx.push(r);
        }
        let inner = Arc::new(Inner {
            me: cfg.node,
            nodes: cfg.nodes,
            lanes: cfg.lanes,
            integrity: cfg.integrity,
            reconnect: cfg.reconnect,
            seed: cfg.seed,
            addrs: cfg.addrs,
            epoch: AtomicU32::new(0),
            closed: AtomicBool::new(false),
            peers: (0..cfg.nodes)
                .map(|_| {
                    Mutex::new(PeerSlot {
                        writer: None,
                        generation: 0,
                        ever_connected: false,
                        gave_up: false,
                    })
                })
                .collect(),
            data_tx,
            data_rx,
            ack_tx,
            ack_rx,
            hb_tx,
            hb_rx,
            ctrl_tx,
            ctrl_rx,
            event_tx,
            event_rx: Mutex::new(event_rx),
            stats: Counters {
                handshakes: AtomicU64::new(0),
                reconnects: AtomicU64::new(0),
                connect_failures: AtomicU64::new(0),
                handshake_rejects: AtomicU64::new(0),
                rejected_by_peer: AtomicU64::new(0),
                link_drops: AtomicU64::new(0),
                mailbox_drops: AtomicU64::new(0),
                garbage_frames: AtomicU64::new(0),
            },
            tcp_port: AtomicU32::new(tcp_port as u32),
            pool: cfg.pool,
            link_chaos: cfg.link_chaos,
            delayq: Mutex::new(std::collections::BinaryHeap::new()),
            delay_id: AtomicU64::new(0),
        });
        if let Some(sched) = &inner.link_chaos {
            sched.arm();
            if sched.has_delays() {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("gravel-delay-{}", inner.me))
                    .spawn(move || inner.delay_pump())
                    .expect("spawn delay pump");
            }
        }
        {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("gravel-accept-{}", inner.me))
                .spawn(move || inner.accept_loop(listener))
                .expect("spawn accept thread");
        }
        for peer in 0..inner.me {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("gravel-dial-{}-{}", inner.me, peer))
                .spawn(move || inner.dial_loop(peer))
                .expect("spawn dial thread");
        }
        Ok(Arc::new(SocketTransport { inner }))
    }

    /// The TCP port actually bound (for `Tcp("…:0")` listen specs).
    pub fn tcp_port(&self) -> u16 {
        self.inner.tcp_port.load(Ordering::Relaxed) as u16
    }

    /// Stamp the epoch carried by outgoing HELLO and heartbeat frames.
    pub fn set_epoch(&self, epoch: u32) {
        self.inner.epoch.store(epoch, Ordering::Relaxed);
    }

    /// The data-plane integrity this endpoint was configured with
    /// (callers seal their own data frames; the control plane is
    /// always CRC32C).
    pub fn integrity(&self) -> WireIntegrity {
        self.inner.integrity
    }

    /// Whether the stream to `peer` is currently up.
    pub fn connected(&self, peer: NodeId) -> bool {
        self.inner.peers[peer as usize].lock().unwrap().writer.is_some()
    }

    /// Block until the stream to `peer` is up, up to `deadline`.
    pub fn wait_connected(&self, peer: NodeId, deadline: Duration) -> bool {
        let until = Instant::now() + deadline;
        while Instant::now() < until {
            if self.connected(peer) {
                return true;
            }
            if self.inner.closed.load(Ordering::Relaxed) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.connected(peer)
    }

    /// Send a control-plane message (always CRC32C). Returns whether
    /// the frame reached a live stream (or the loopback) — callers
    /// treat `false` as "peer down, retry after reconnect".
    pub fn send_control(&self, dest: NodeId, words: &[u64]) -> bool {
        let inner = &self.inner;
        let epoch = inner.epoch.load(Ordering::Relaxed);
        if dest == inner.me {
            return inner
                .ctrl_tx
                .send(ControlMsg { src: inner.me, epoch, words: words.to_vec() })
                .is_ok();
        }
        let bytes =
            gravel_pgas::seal_control(inner.me, dest, epoch, words, WireIntegrity::Crc32c);
        inner.write_to_peer(dest, &bytes)
    }

    /// Receive the next verified control-plane message.
    pub fn recv_control(&self, timeout: Duration) -> RecvStatus<ControlMsg> {
        match self.inner.ctrl_rx.recv_timeout(timeout) {
            Ok(m) => RecvStatus::Msg(m),
            Err(RecvTimeoutError::Timeout) => {
                if self.inner.closed.load(Ordering::Relaxed) && self.inner.ctrl_rx.is_empty() {
                    RecvStatus::Closed
                } else {
                    RecvStatus::TimedOut
                }
            }
            Err(RecvTimeoutError::Disconnected) => RecvStatus::Closed,
        }
    }

    /// Pop the next connection event, waiting up to `timeout`.
    pub fn poll_event(&self, timeout: Duration) -> Option<PeerEvent> {
        self.inner.event_rx.lock().unwrap().recv_timeout(timeout).ok()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SocketStats {
        let c = &self.inner.stats;
        let chaos = self
            .inner
            .link_chaos
            .as_ref()
            .map(|s| s.stats())
            .unwrap_or_default();
        SocketStats {
            handshakes: c.handshakes.load(Ordering::Relaxed),
            reconnects: c.reconnects.load(Ordering::Relaxed),
            connect_failures: c.connect_failures.load(Ordering::Relaxed),
            handshake_rejects: c.handshake_rejects.load(Ordering::Relaxed),
            rejected_by_peer: c.rejected_by_peer.load(Ordering::Relaxed),
            link_drops: c.link_drops.load(Ordering::Relaxed),
            mailbox_drops: c.mailbox_drops.load(Ordering::Relaxed),
            garbage_frames: c.garbage_frames.load(Ordering::Relaxed),
            partition_drops: chaos.partition_drops,
            oneway_drops: chaos.oneway_drops,
            chaos_delayed: chaos.delayed,
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.inner.close_impl();
    }
}

impl Inner {
    fn hello(&self, peer: NodeId) -> HelloInfo {
        HelloInfo {
            node: self.me,
            peer,
            nodes: self.nodes as u32,
            lanes: self.lanes as u32,
            epoch: self.epoch.load(Ordering::Relaxed),
        }
    }

    fn close_impl(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        for slot in &self.peers {
            let mut slot = slot.lock().unwrap();
            if let Some(s) = slot.writer.take() {
                s.shutdown();
            }
            slot.generation += 1;
        }
    }

    // -- outbound ----------------------------------------------------------

    /// Write one length-delimited frame to `peer`'s stream, subject to
    /// the link-chaos schedule: a partition or one-way window swallows
    /// the frame silently (the stream stays up — a pulled cable, not a
    /// closed socket), a delay fault hands it to the delay pump. This
    /// is the single outbound chokepoint, so data, acks, heartbeats,
    /// and control frames all experience the chaos identically.
    fn write_to_peer(&self, peer: NodeId, frame: &[u8]) -> bool {
        if let Some(sched) = &self.link_chaos {
            if sched.blocked(self.me, peer) {
                return true; // swallowed by the partition
            }
            if let Some(hold) = sched.delay(self.me, peer) {
                self.delayq.lock().unwrap().push(DelayedWrite {
                    due: Instant::now() + hold,
                    id: self.delay_id.fetch_add(1, Ordering::Relaxed),
                    peer,
                    frame: frame.to_vec(),
                });
                return true;
            }
        }
        self.write_now(peer, frame)
    }

    /// The delay pump: deliver held-back frames when they come due.
    /// Blocked windows are re-checked at delivery time, so a frame
    /// delayed into a partition window still dies like a real queue
    /// drained onto a dead link.
    fn delay_pump(self: Arc<Self>) {
        while !self.closed.load(Ordering::Relaxed) {
            loop {
                let next = {
                    let mut q = self.delayq.lock().unwrap();
                    match q.peek() {
                        Some(d) if d.due <= Instant::now() => q.pop(),
                        _ => None,
                    }
                };
                match next {
                    Some(d) => {
                        let blocked = self
                            .link_chaos
                            .as_ref()
                            .is_some_and(|s| s.blocked(self.me, d.peer));
                        if !blocked {
                            self.write_now(d.peer, &d.frame);
                        }
                    }
                    None => break,
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Write one length-delimited frame to `peer`'s stream. On any
    /// failure the connection is torn down (the redial supervisor or
    /// the peer's own dialer brings it back) and the frame is dropped.
    fn write_now(&self, peer: NodeId, frame: &[u8]) -> bool {
        debug_assert!(frame.len() <= MAX_FRAME_BYTES);
        // Assemble prefix + frame in one buffer so the stream sees a
        // single write; the buffer is pooled scratch when the arena is
        // on (returned via `put` — it never outlives this call).
        let taken = self.pool.as_ref().map(|pool| pool.take(4 + frame.len()));
        let (mut buf, ticket) = match taken {
            Some((v, t)) => (v, Some(t)),
            None => (Vec::with_capacity(4 + frame.len()), None),
        };
        buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        buf.extend_from_slice(frame);
        let ok = {
            let mut slot = self.peers[peer as usize].lock().unwrap();
            match slot.writer.as_mut() {
                None => {
                    self.stats.link_drops.fetch_add(1, Ordering::Relaxed);
                    false
                }
                Some(writer) => {
                    if let Err(_e) = writer.write_all(&buf) {
                        self.stats.link_drops.fetch_add(1, Ordering::Relaxed);
                        let gen = slot.generation;
                        self.drop_conn(&mut slot, gen);
                        false
                    } else {
                        true
                    }
                }
            }
        };
        if let (Some(pool), Some(t)) = (&self.pool, ticket) {
            pool.put(buf, t);
        }
        ok
    }

    /// Tear down the connection in `slot` if it is still generation
    /// `gen`, emitting a Down event.
    fn drop_conn(&self, slot: &mut PeerSlot, gen: u64) {
        if slot.generation != gen {
            return;
        }
        if let Some(s) = slot.writer.take() {
            s.shutdown();
        }
        slot.generation += 1;
    }

    fn note_down(&self, peer: NodeId) {
        if !self.closed.load(Ordering::Relaxed) {
            let _ = self.event_tx.send(PeerEvent::Down(peer));
        }
    }

    // -- connection establishment -----------------------------------------

    /// Install a handshaken stream for `peer`, replacing any previous
    /// one, and start its reader thread.
    fn install(self: &Arc<Self>, peer: NodeId, stream: Stream) {
        let reader = match stream.try_clone() {
            Ok(r) => r,
            Err(_) => return,
        };
        stream.set_read_timeout(Some(READ_TICK));
        let gen;
        {
            let mut slot = self.peers[peer as usize].lock().unwrap();
            if let Some(old) = slot.writer.take() {
                old.shutdown();
            }
            slot.generation += 1;
            gen = slot.generation;
            slot.writer = Some(stream);
            if slot.ever_connected {
                self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            slot.ever_connected = true;
        }
        self.stats.handshakes.fetch_add(1, Ordering::Relaxed);
        let _ = self.event_tx.send(PeerEvent::Up(peer));
        let inner = Arc::clone(self);
        std::thread::Builder::new()
            .name(format!("gravel-read-{}-{}", self.me, peer))
            .spawn(move || inner.read_loop(peer, gen, reader))
            .expect("spawn reader thread");
    }

    fn accept_loop(self: Arc<Self>, listener: Listener) {
        while !self.closed.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok(stream) => self.handle_inbound(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
                Err(_) => std::thread::sleep(POLL),
            }
        }
    }

    /// Run the accept side of the HELLO handshake on a fresh stream.
    fn handle_inbound(self: &Arc<Self>, mut stream: Stream) {
        stream.set_read_timeout(Some(self.reconnect.handshake_timeout));
        let frame = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => return, // peer vanished or talked garbage framing
        };
        match open_hello(&frame, WireIntegrity::Crc32c) {
            Ok(h) => {
                if h.nodes as usize != self.nodes || h.lanes as usize != self.lanes {
                    self.reject(&mut stream, RejectReason::ClusterShape, h.nodes, h.node);
                    return;
                }
                if h.node as usize >= self.nodes || h.node == self.me || h.peer != self.me {
                    self.reject(&mut stream, RejectReason::NodeId, h.node, h.node);
                    return;
                }
                // Answer with our own HELLO to complete the handshake.
                let reply = seal_hello(&self.hello(h.node), WireIntegrity::Crc32c);
                if write_frame(&mut stream, &reply).is_err() {
                    return;
                }
                self.install(h.node, stream);
            }
            Err(FrameError::BadVersion { got }) => {
                self.reject(&mut stream, RejectReason::Version, got as u32, u32::MAX);
            }
            Err(_) => {
                self.reject(&mut stream, RejectReason::Protocol, 0, u32::MAX);
            }
        }
    }

    /// Send a counted, logged REJECT and drop the stream.
    fn reject(&self, stream: &mut Stream, reason: RejectReason, detail: u32, claimed: u32) {
        self.stats.handshake_rejects.fetch_add(1, Ordering::Relaxed);
        eprintln!(
            "gravel-net: node {} rejected inbound handshake (claimed id {}): {} (detail {})",
            self.me,
            if claimed == u32::MAX { "?".into() } else { claimed.to_string() },
            reason,
            detail,
        );
        let frame = seal_reject(self.me, reason, detail, WireIntegrity::Crc32c);
        let _ = write_frame(stream, &frame);
        stream.shutdown();
    }

    /// Redial supervisor for one peer we are responsible for dialing
    /// (`peer < me`). Exponential backoff with seeded jitter, reset on
    /// every successful handshake.
    fn dial_loop(self: Arc<Self>, peer: NodeId) {
        let mut rng = self.seed ^ ((self.me as u64) << 32) ^ peer as u64;
        let mut attempt: u32 = 0;
        while !self.closed.load(Ordering::Relaxed) {
            {
                let slot = self.peers[peer as usize].lock().unwrap();
                if slot.gave_up {
                    return;
                }
                if slot.writer.is_some() {
                    drop(slot);
                    attempt = 0;
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            }
            match self.dial_once(peer) {
                DialOutcome::Connected => {
                    attempt = 0;
                }
                DialOutcome::Rejected => {
                    self.peers[peer as usize].lock().unwrap().gave_up = true;
                    return;
                }
                DialOutcome::Failed => {
                    self.stats.connect_failures.fetch_add(1, Ordering::Relaxed);
                    let exp = self
                        .reconnect
                        .base
                        .saturating_mul(1u32 << attempt.min(16))
                        .min(self.reconnect.max);
                    // Jitter in [0, exp/2): desynchronizes redial storms
                    // without stretching the ceiling.
                    let jitter_ns =
                        splitmix(&mut rng) % (exp.as_nanos() as u64 / 2).max(1);
                    attempt = attempt.saturating_add(1);
                    let wait = exp + Duration::from_nanos(jitter_ns);
                    let until = Instant::now() + wait;
                    while Instant::now() < until && !self.closed.load(Ordering::Relaxed) {
                        std::thread::sleep(POLL.min(wait));
                    }
                }
            }
        }
    }

    fn dial_once(self: &Arc<Self>, peer: NodeId) -> DialOutcome {
        let stream = match &self.addrs[peer as usize] {
            SocketAddrSpec::Uds(path) => UnixStream::connect(path).map(Stream::Unix),
            SocketAddrSpec::Tcp(addr) => TcpStream::connect(addr).map(Stream::Tcp),
        };
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => return DialOutcome::Failed,
        };
        stream.set_read_timeout(Some(self.reconnect.handshake_timeout));
        let hello = seal_hello(&self.hello(peer), WireIntegrity::Crc32c);
        if write_frame(&mut stream, &hello).is_err() {
            return DialOutcome::Failed;
        }
        let reply = match read_frame(&mut stream) {
            Ok(f) => f,
            Err(_) => return DialOutcome::Failed,
        };
        if let Ok(h) = open_hello(&reply, WireIntegrity::Crc32c) {
            if h.node != peer || h.peer != self.me {
                return DialOutcome::Failed;
            }
            self.install(peer, stream);
            return DialOutcome::Connected;
        }
        if let Ok((src, reason, detail)) = open_reject(&reply, WireIntegrity::Crc32c) {
            self.stats.rejected_by_peer.fetch_add(1, Ordering::Relaxed);
            eprintln!(
                "gravel-net: node {} handshake rejected by node {src}: {reason} (detail {detail})",
                self.me,
            );
            return DialOutcome::Rejected;
        }
        DialOutcome::Failed
    }

    // -- inbound frame pump ------------------------------------------------

    fn read_loop(self: Arc<Self>, peer: NodeId, gen: u64, mut stream: Stream) {
        let mut decoder = StreamDecoder::new(MAX_FRAME_BYTES);
        let mut chunk = [0u8; 16 * 1024];
        let mut frame = Vec::new();
        loop {
            if self.closed.load(Ordering::Relaxed) {
                return;
            }
            {
                let slot = self.peers[peer as usize].lock().unwrap();
                if slot.generation != gen {
                    return; // replaced by a newer connection
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => break, // EOF: peer exited or died
                Ok(n) => {
                    decoder.push(&chunk[..n]);
                    loop {
                        match decoder.next_frame_into(&mut frame) {
                            Ok(true) => self.route(&frame),
                            Ok(false) => break,
                            Err(_) => {
                                // Length prefix is garbage: framing is
                                // lost, the stream cannot be trusted.
                                self.stats.garbage_frames.fetch_add(1, Ordering::Relaxed);
                                self.teardown(peer, gen);
                                return;
                            }
                        }
                    }
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => break,
            }
        }
        self.teardown(peer, gen);
    }

    fn teardown(&self, peer: NodeId, gen: u64) {
        let mut slot = self.peers[peer as usize].lock().unwrap();
        if slot.generation == gen {
            self.drop_conn(&mut slot, gen);
            drop(slot);
            self.note_down(peer);
        }
    }

    /// Dispatch one reassembled frame by its (unverified) kind byte.
    /// Verification happens at each plane's consumer for data and acks
    /// (mirroring the in-memory fabrics, where frames arrive sealed);
    /// control-plane frames are verified right here.
    fn route(&self, frame: &[u8]) {
        if frame.len() < HEADER_BYTES {
            self.stats.garbage_frames.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let kind = frame[6];
        let word = |at: usize| {
            u32::from_le_bytes([frame[at], frame[at + 1], frame[at + 2], frame[at + 3]])
        };
        match kind {
            // All data-plane kinds: DATA plus the request-reply frames
            // (GET / AM_CALL / AM_REPLY). The receiver's verified open
            // re-checks the kind against the data-plane set.
            0 | 6 | 7 | 8 => {
                // Pool on: the frame bytes live in a recycled slab and
                // the seal allocates nothing. Pool off (or frame too
                // big for a bucket — take still serves it): plain copy.
                let bytes = match &self.pool {
                    Some(pool) => {
                        let (mut v, ticket) = pool.take(frame.len());
                        v.extend_from_slice(frame);
                        pool.seal(v, ticket)
                    }
                    None => Bytes::from(frame.to_vec()),
                };
                let df = DataFrame {
                    src: word(8),
                    dest: word(12),
                    born: Instant::now(),
                    bytes,
                };
                if self.data_tx.try_send(df).is_err() {
                    self.stats.mailbox_drops.fetch_add(1, Ordering::Relaxed);
                }
            }
            1 => {
                if frame.len() != ACK_FRAME_BYTES {
                    self.stats.garbage_frames.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let lane = word(16) as usize;
                if lane >= self.lanes {
                    self.stats.garbage_frames.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let ack = AckFrame {
                    src: word(8),
                    dest: word(12),
                    lane: lane as u32,
                    bytes: frame.try_into().expect("length checked above"),
                };
                if self.ack_tx[lane].try_send(ack).is_err() {
                    self.stats.mailbox_drops.fetch_add(1, Ordering::Relaxed);
                }
            }
            4 => match open_heartbeat(frame, WireIntegrity::Crc32c) {
                Ok(h) => {
                    let hb = Heartbeat { src: h.src, dest: h.dest, seq: h.seq };
                    if self.hb_tx.try_send(hb).is_err() {
                        self.stats.mailbox_drops.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    self.stats.garbage_frames.fetch_add(1, Ordering::Relaxed);
                }
            },
            5 => match open_control(frame, WireIntegrity::Crc32c) {
                Ok((head, words)) => {
                    let _ = self.ctrl_tx.send(ControlMsg {
                        src: head.src,
                        epoch: head.epoch,
                        words,
                    });
                }
                Err(_) => {
                    self.stats.garbage_frames.fetch_add(1, Ordering::Relaxed);
                }
            },
            _ => {
                // HELLO / REJECT mid-stream, or an unknown kind.
                self.stats.garbage_frames.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

enum DialOutcome {
    Connected,
    Rejected,
    Failed,
}

/// Read one length-delimited frame (handshake path; stream has a read
/// timeout set).
fn read_frame(stream: &mut Stream) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(ErrorKind::InvalidData, "oversized frame"));
    }
    let mut buf = vec![0u8; len];
    stream.read_exact(&mut buf)?;
    Ok(buf)
}

fn write_frame(stream: &mut Stream, frame: &[u8]) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(4 + frame.len());
    buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    buf.extend_from_slice(frame);
    stream.write_all(&buf)
}

impl Transport for SocketTransport {
    fn nodes(&self) -> usize {
        self.inner.nodes
    }

    fn lanes(&self) -> usize {
        self.inner.lanes
    }

    fn send_data(&self, frame: DataFrame, timeout: Duration) -> SendStatus {
        let inner = &self.inner;
        if inner.closed.load(Ordering::Relaxed) {
            return SendStatus::Closed;
        }
        if frame.dest == inner.me {
            // Loopback: a node's own serialized atomics never touch the
            // wire, but they do experience the same bounded-ingress
            // backpressure.
            return match inner.data_tx.send_timeout(frame, timeout) {
                Ok(()) => SendStatus::Sent,
                Err(crossbeam::channel::SendTimeoutError::Timeout(_)) => SendStatus::TimedOut,
                Err(crossbeam::channel::SendTimeoutError::Disconnected(_)) => SendStatus::Closed,
            };
        }
        // Cross-node: write or drop. A down link never blocks the
        // sender — go-back-N retransmission heals the loss after the
        // redial supervisor restores the stream.
        inner.write_to_peer(frame.dest, &frame.bytes);
        SendStatus::Sent
    }

    fn recv_data(&self, node: NodeId, timeout: Duration) -> RecvStatus<DataFrame> {
        debug_assert_eq!(node, self.inner.me, "socket endpoint receives only its own node");
        match self.inner.data_rx.recv_timeout(timeout) {
            Ok(f) => RecvStatus::Msg(f),
            Err(RecvTimeoutError::Timeout) => {
                if self.inner.closed.load(Ordering::Relaxed) && self.inner.data_rx.is_empty() {
                    RecvStatus::Closed
                } else {
                    RecvStatus::TimedOut
                }
            }
            Err(RecvTimeoutError::Disconnected) => RecvStatus::Closed,
        }
    }

    fn send_ack(&self, ack: AckFrame) {
        let inner = &self.inner;
        if inner.closed.load(Ordering::Relaxed) {
            return;
        }
        if ack.dest == inner.me {
            let lane = ack.lane as usize;
            if lane < inner.lanes && inner.ack_tx[lane].try_send(ack).is_err() {
                inner.stats.mailbox_drops.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        inner.write_to_peer(ack.dest, &ack.bytes);
    }

    fn try_recv_ack(&self, node: NodeId, lane: u32) -> Option<AckFrame> {
        debug_assert_eq!(node, self.inner.me);
        self.inner.ack_rx.get(lane as usize)?.try_recv().ok()
    }

    fn send_heartbeat(&self, hb: Heartbeat) {
        let inner = &self.inner;
        if inner.closed.load(Ordering::Relaxed) {
            return;
        }
        if hb.dest == inner.me {
            let _ = inner.hb_tx.try_send(hb);
            return;
        }
        let epoch = inner.epoch.load(Ordering::Relaxed);
        let bytes = seal_heartbeat(hb.src, hb.dest, epoch, hb.seq, WireIntegrity::Crc32c);
        inner.write_to_peer(hb.dest, &bytes);
    }

    fn try_recv_heartbeat(&self, node: NodeId) -> Option<Heartbeat> {
        debug_assert_eq!(node, self.inner.me);
        self.inner.hb_rx.try_recv().ok()
    }

    fn close(&self) {
        self.inner.close_impl();
    }

    fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Relaxed)
    }

    fn fault_stats(&self) -> FaultStats {
        // The socket fabric injects nothing; real link losses show up
        // in `stats()` instead.
        FaultStats::default()
    }

    fn data_depths(&self) -> Vec<usize> {
        let mut v = vec![0; self.inner.nodes];
        v[self.inner.me as usize] = self.inner.data_rx.len();
        v
    }

    fn ack_depths(&self, node: NodeId) -> usize {
        debug_assert_eq!(node, self.inner.me);
        self.inner.ack_rx.iter().map(|r| r.len()).sum()
    }
}
