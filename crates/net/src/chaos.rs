//! Process-fault chaos plans: the node-level counterpart to
//! [`FaultConfig`](crate::FaultConfig)'s link faults.
//!
//! A [`ChaosPlan`] is a deterministic schedule of *process* faults —
//! panic a given aggregator lane at its Nth drain step, panic a network
//! thread at its Nth applied packet, or blackhole a node's outgoing
//! heartbeats for a window of beats. The runtime polls the plan from
//! the affected worker threads (`agg_tick` / `net_tick` /
//! `heartbeat_blackholed`); each kill fires exactly once, so a
//! supervised restart of the worker does not immediately re-kill it.
//!
//! Plans are either hand-written (pinpoint a step for a regression
//! test) or derived from a seed ([`ChaosPlan::seeded`]) for sweep-style
//! chaos testing with reproducible schedules.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::NodeId;

/// One scheduled process fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessFault {
    /// Panic aggregator lane `slot` of `node` when it reaches drain
    /// step `at_step` (a drain step = one message handed to the
    /// delivery layer; step counts accumulate across restarts).
    PanicAggregator { node: NodeId, slot: u32, at_step: u64 },
    /// Panic the network thread of `node` when it is about to apply its
    /// `at_step`th message (counted across restarts).
    PanicNet { node: NodeId, at_step: u64 },
    /// Suppress every outgoing heartbeat from `node` whose beat number
    /// lies in `[from_beat, from_beat + beats)`. Unlike the panics this
    /// is not one-shot — the whole window is blackholed — and it is how
    /// tests make the failure detector declare a live node dead.
    HeartbeatBlackhole { node: NodeId, from_beat: u64, beats: u64 },
    /// Kill the whole OS process of `node` when it has applied its
    /// `at_step`th packet. Thread panics are healed by the in-process
    /// supervisor; this one is not — it is the `kill -9` class of
    /// fault. In-process the victim calls `std::process::abort()` on a
    /// matching [`kill_tick`](ChaosPlan::kill_tick); multi-process
    /// harnesses instead read the plan and deliver a literal SIGKILL
    /// from outside.
    KillProcess { node: NodeId, at_step: u64 },
}

/// A deterministic schedule of process faults, shared by every worker
/// thread of a runtime. All methods take `&self` and are called from
/// the hot paths of aggregator/net threads, so the common no-fault case
/// is a couple of integer compares under a short critical section.
pub struct ChaosPlan {
    faults: Vec<ProcessFault>,
    /// One-shot latch per fault (indexed like `faults`); heartbeat
    /// blackholes never latch.
    fired: Vec<AtomicBool>,
    /// Drain-step counters per (node, slot) aggregator lane.
    agg_steps: Mutex<HashMap<(NodeId, u32), u64>>,
    /// Apply-step counters per node network thread.
    net_steps: Mutex<HashMap<NodeId, u64>>,
    /// Applied-packet counters per node process (for `KillProcess`).
    kill_steps: Mutex<HashMap<NodeId, u64>>,
}

impl ChaosPlan {
    /// A plan executing exactly the given faults.
    pub fn new(faults: Vec<ProcessFault>) -> Self {
        let fired = faults.iter().map(|_| AtomicBool::new(false)).collect();
        ChaosPlan {
            faults,
            fired,
            agg_steps: Mutex::new(HashMap::new()),
            net_steps: Mutex::new(HashMap::new()),
            kill_steps: Mutex::new(HashMap::new()),
        }
    }

    /// An empty plan (no faults ever fire).
    pub fn none() -> Self {
        ChaosPlan::new(Vec::new())
    }

    /// A seeded single-kill plan for sweep harnesses: derives one
    /// aggregator or net panic somewhere in the first `horizon` steps of
    /// a random worker. Same seed + same topology → same schedule.
    pub fn seeded(seed: u64, nodes: usize, slots: usize, horizon: u64) -> Self {
        assert!(nodes > 0 && slots > 0 && horizon > 0, "empty chaos domain");
        // SplitMix64: cheap, stateless, good enough for schedule derivation.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        let node = (next() % nodes as u64) as NodeId;
        let at_step = 1 + next() % horizon;
        let fault = if next() % 2 == 0 {
            let slot = (next() % slots as u64) as u32;
            ProcessFault::PanicAggregator { node, slot, at_step }
        } else {
            ProcessFault::PanicNet { node, at_step }
        };
        ChaosPlan::new(vec![fault])
    }

    /// The scheduled faults, in plan order.
    pub fn faults(&self) -> &[ProcessFault] {
        &self.faults
    }

    /// How many panic-style kills the plan schedules (used by tests and
    /// benches to size restart budgets).
    pub fn kills_planned(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| !matches!(f, ProcessFault::HeartbeatBlackhole { .. }))
            .count()
    }

    /// How many one-shot faults have fired so far.
    pub fn fired(&self) -> usize {
        self.fired.iter().filter(|f| f.load(Ordering::Relaxed)).count()
    }

    /// Called by aggregator lane `(node, slot)` once per drain step,
    /// *before* handing the message to the delivery layer. Returns true
    /// exactly once per matching scheduled panic: the caller must then
    /// panic with a recognizable message.
    pub fn agg_tick(&self, node: NodeId, slot: u32) -> bool {
        let step = {
            let mut steps = self.agg_steps.lock().unwrap();
            let s = steps.entry((node, slot)).or_insert(0);
            *s += 1;
            *s
        };
        self.fire_matching(|f| {
            matches!(f, ProcessFault::PanicAggregator { node: n, slot: sl, at_step }
                if *n == node && *sl == slot && *at_step == step)
        })
    }

    /// Called by node `node`'s network thread once per message it is
    /// about to apply. Returns true exactly once per matching panic.
    pub fn net_tick(&self, node: NodeId) -> bool {
        let step = {
            let mut steps = self.net_steps.lock().unwrap();
            let s = steps.entry(node).or_insert(0);
            *s += 1;
            *s
        };
        self.fire_matching(|f| {
            matches!(f, ProcessFault::PanicNet { node: n, at_step }
                if *n == node && *at_step == step)
        })
    }

    /// A seeded single process-kill plan for multi-process harnesses:
    /// picks a victim node and an applied-packet count within
    /// `horizon`. Same seed + same topology → same victim and step, so
    /// a run is reproducible end to end even though the kill itself is
    /// an OS-level SIGKILL.
    pub fn seeded_kill(seed: u64, nodes: usize, horizon: u64) -> Self {
        assert!(nodes > 0 && horizon > 0, "empty chaos domain");
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        let node = (next() % nodes as u64) as NodeId;
        let at_step = 1 + next() % horizon;
        ChaosPlan::new(vec![ProcessFault::KillProcess { node, at_step }])
    }

    /// The scheduled process kill for `node`, if any (harnesses use
    /// this to know whom to SIGKILL and the victim process uses
    /// [`kill_tick`](ChaosPlan::kill_tick) to self-abort
    /// deterministically).
    pub fn process_kill(&self, node: NodeId) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            ProcessFault::KillProcess { node: n, at_step } if *n == node => Some(*at_step),
            _ => None,
        })
    }

    /// Called by node `node`'s process once per fully applied packet.
    /// Returns true exactly once per matching `KillProcess`: the caller
    /// must then die for real (`std::process::abort()`), not panic —
    /// the in-process supervisor must not be able to heal it.
    pub fn kill_tick(&self, node: NodeId) -> bool {
        let step = {
            let mut steps = self.kill_steps.lock().unwrap();
            let s = steps.entry(node).or_insert(0);
            *s += 1;
            *s
        };
        self.fire_matching(|f| {
            matches!(f, ProcessFault::KillProcess { node: n, at_step }
                if *n == node && *at_step == step)
        })
    }

    /// Should heartbeat number `beat` from `node` be suppressed?
    pub fn heartbeat_blackholed(&self, node: NodeId, beat: u64) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, ProcessFault::HeartbeatBlackhole { node: n, from_beat, beats }
                if *n == node && (*from_beat..from_beat + beats).contains(&beat))
        })
    }

    /// Latch-and-fire: true for the first unfired fault matching `pred`.
    fn fire_matching(&self, pred: impl Fn(&ProcessFault) -> bool) -> bool {
        for (i, f) in self.faults.iter().enumerate() {
            if pred(f) && !self.fired[i].swap(true, Ordering::Relaxed) {
                return true;
            }
        }
        false
    }
}

impl fmt::Debug for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaosPlan")
            .field("faults", &self.faults)
            .field("fired", &self.fired())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_panic_fires_once_at_exact_step() {
        let plan = ChaosPlan::new(vec![ProcessFault::PanicAggregator {
            node: 1,
            slot: 0,
            at_step: 3,
        }]);
        assert!(!plan.agg_tick(1, 0)); // step 1
        assert!(!plan.agg_tick(0, 0)); // other node, own counter
        assert!(!plan.agg_tick(1, 0)); // step 2
        assert!(plan.agg_tick(1, 0)); // step 3: fire
        assert!(!plan.agg_tick(1, 0)); // one-shot: never again
        assert_eq!(plan.fired(), 1);
        assert_eq!(plan.kills_planned(), 1);
    }

    #[test]
    fn net_panic_counts_independently_per_node() {
        let plan = ChaosPlan::new(vec![
            ProcessFault::PanicNet { node: 0, at_step: 2 },
            ProcessFault::PanicNet { node: 1, at_step: 1 },
        ]);
        assert!(plan.net_tick(1));
        assert!(!plan.net_tick(0));
        assert!(plan.net_tick(0));
        assert_eq!(plan.fired(), 2);
    }

    #[test]
    fn heartbeat_blackhole_covers_window() {
        let plan = ChaosPlan::new(vec![ProcessFault::HeartbeatBlackhole {
            node: 2,
            from_beat: 5,
            beats: 3,
        }]);
        assert!(!plan.heartbeat_blackholed(2, 4));
        assert!(plan.heartbeat_blackholed(2, 5));
        assert!(plan.heartbeat_blackholed(2, 7));
        assert!(!plan.heartbeat_blackholed(2, 8));
        assert!(!plan.heartbeat_blackholed(1, 6));
        assert_eq!(plan.kills_planned(), 0, "blackholes are not kills");
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        let a = ChaosPlan::seeded(9, 4, 2, 100);
        let b = ChaosPlan::seeded(9, 4, 2, 100);
        assert_eq!(a.faults(), b.faults());
        assert_eq!(a.kills_planned(), 1);
        match a.faults()[0] {
            ProcessFault::PanicAggregator { node, slot, at_step } => {
                assert!(node < 4 && slot < 2 && (1..=100).contains(&at_step));
            }
            ProcessFault::PanicNet { node, at_step } => {
                assert!(node < 4 && (1..=100).contains(&at_step));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Different seeds eventually differ.
        assert!((0..20).any(|s| {
            ChaosPlan::seeded(s, 4, 2, 100).faults() != a.faults()
        }));
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = ChaosPlan::none();
        assert!(!plan.agg_tick(0, 0));
        assert!(!plan.net_tick(0));
        assert!(!plan.kill_tick(0));
        assert!(!plan.heartbeat_blackholed(0, 0));
        assert_eq!(plan.kills_planned(), 0);
    }

    #[test]
    fn process_kill_fires_once_at_exact_packet() {
        let plan = ChaosPlan::new(vec![ProcessFault::KillProcess { node: 2, at_step: 2 }]);
        assert_eq!(plan.process_kill(2), Some(2));
        assert_eq!(plan.process_kill(0), None);
        assert!(!plan.kill_tick(2)); // packet 1
        assert!(!plan.kill_tick(0)); // other node, own counter
        assert!(plan.kill_tick(2)); // packet 2: die
        assert!(!plan.kill_tick(2)); // one-shot (a restarted process
                                     // builds a fresh plan anyway)
        assert_eq!(plan.kills_planned(), 1, "a process kill is a kill");
    }

    #[test]
    fn seeded_kill_is_reproducible_and_in_range() {
        let a = ChaosPlan::seeded_kill(7, 4, 50);
        let b = ChaosPlan::seeded_kill(7, 4, 50);
        assert_eq!(a.faults(), b.faults());
        match a.faults()[0] {
            ProcessFault::KillProcess { node, at_step } => {
                assert!(node < 4 && (1..=50).contains(&at_step));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
