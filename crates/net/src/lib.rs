//! Pluggable transport for the live Gravel runtime.
//!
//! The paper's live mode runs N nodes in one process with "the network"
//! as in-memory channels. This crate extracts that hardwired fabric into
//! a [`Transport`] trait with two implementations:
//!
//! - [`ChannelTransport`] — the original reliable in-memory fabric, now
//!   with **bounded** per-node ingress channels so senders experience
//!   real backpressure instead of unbounded queue growth.
//! - [`UnreliableTransport`] — a decorator that injects seeded,
//!   per-link faults (drop, duplication, latency jitter / reordering,
//!   transient link-down windows) on the data plane, plus ack drops on
//!   the reverse path.
//!
//! Delivery *semantics* (sequence numbers, cumulative acks, go-back-N
//! retransmission, duplicate suppression) live above this crate, in the
//! runtime's aggregator and network threads — the transport only moves
//! frames and, in the unreliable case, loses or mangles them on purpose.
//! Faults are applied exclusively to cross-node links (`src != dest`);
//! the loopback path a node uses for its own serialized atomics is
//! always reliable, mirroring the paper's hardware where local routing
//! never touches the NIC.
//!
//! Both planes carry *sealed frames* ([`gravel_pgas::DataFrame`] for
//! data, [`AckFrame`] for acks): opaque checksummed bytes the transport
//! may corrupt byte-wise without understanding them. The out-of-band
//! routing stamps (`src`, `dest`, `lane`) exist so the fabric can switch
//! a frame without parsing it — and so corruption injection can misroute
//! one without touching its (still CRC-valid) contents.

mod channel;
pub mod chaos;
mod fault;
pub mod partition;
pub mod socket;
mod unreliable;

pub use channel::ChannelTransport;
pub use chaos::{ChaosPlan, ProcessFault};
pub use fault::{FaultConfig, FaultStats, RetryConfig, TransportKind};
pub use partition::{LinkFault, LinkSchedule, LinkScheduleStats};
pub use socket::{
    ControlMsg, PeerEvent, ReconnectConfig, SocketAddrSpec, SocketConfig, SocketStats,
    SocketTransport, StreamDecoder, MAX_FRAME_BYTES,
};
pub use unreliable::UnreliableTransport;

use std::time::Duration;

use gravel_pgas::frame::{open_ack, seal_ack, ACK_FRAME_BYTES};
use gravel_pgas::{DataFrame, FrameError, WireIntegrity};

/// Node identifier on the fabric.
pub type NodeId = u32;

/// A cumulative acknowledgement on the reverse path.
///
/// `src` is the acking (receiving) node; the frame is routed to
/// aggregator lane `lane` of node `dest`, confirming receipt of every
/// data packet on that flow with sequence number `<= cum_seq`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ack {
    /// Node that received the data and is acknowledging it.
    pub src: NodeId,
    /// Original data sender the ack is addressed to.
    pub dest: NodeId,
    /// Aggregator lane (slot) on `dest` that owns the flow.
    pub lane: u32,
    /// Highest sequence number received in order on this flow.
    pub cum_seq: u64,
}

impl Ack {
    /// Seal into the checksummed wire form the ack plane carries.
    pub fn seal(&self, epoch: u32, integrity: WireIntegrity) -> AckFrame {
        AckFrame {
            src: self.src,
            dest: self.dest,
            lane: self.lane,
            bytes: seal_ack(self.src, self.dest, self.lane, epoch, self.cum_seq, integrity),
        }
    }
}

/// A sealed ack as it travels the reverse path: 40 opaque frame bytes
/// plus the out-of-band routing stamps the fabric switches on. Like
/// [`DataFrame`], the stamps are untrusted — the receiving aggregator
/// decodes the verified header, not the stamps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AckFrame {
    /// Acking node (which link the frame leaves on).
    pub src: NodeId,
    /// Routing stamp: node whose mailbox this lands in.
    pub dest: NodeId,
    /// Routing stamp: aggregator lane mailbox.
    pub lane: u32,
    /// The complete frame: header + CRC trailer, no payload.
    pub bytes: [u8; ACK_FRAME_BYTES],
}

impl AckFrame {
    /// Verify the frame and decode the [`Ack`] from its header.
    pub fn open(&self, integrity: WireIntegrity) -> Result<Ack, FrameError> {
        let head = open_ack(&self.bytes, integrity)?;
        Ok(Ack { src: head.src, dest: head.dest, lane: head.lane, cum_seq: head.seq })
    }
}

/// One liveness beacon on the heartbeat plane.
///
/// Heartbeats are the input to the runtime's phi-accrual failure
/// detector: node `src` emits one per heartbeat interval towards every
/// peer, and the *absence* of arrivals is what raises suspicion. They
/// are deliberately the least reliable traffic class — best-effort,
/// droppable by full mailboxes and by every injected fault — because a
/// detector that needs reliable heartbeats would be useless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Heartbeat {
    /// Emitting node.
    pub src: NodeId,
    /// Observing node.
    pub dest: NodeId,
    /// Monotonic beat number at the emitter.
    pub seq: u64,
}

/// Outcome of a send attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendStatus {
    /// Accepted by the fabric (which, for an unreliable transport, does
    /// *not* imply it will be delivered).
    Sent,
    /// The bounded channel stayed full for the whole timeout.
    TimedOut,
    /// The fabric has been closed.
    Closed,
}

/// Outcome of a receive attempt.
#[derive(Debug)]
pub enum RecvStatus<T> {
    /// A frame arrived.
    Msg(T),
    /// Nothing arrived within the timeout.
    TimedOut,
    /// The fabric is closed and fully drained.
    Closed,
}

/// An N-node interconnect: a data plane from aggregators to network
/// threads and an ack plane back to per-lane aggregator mailboxes.
///
/// All methods take `&self`; implementations are shared across threads
/// behind an `Arc<dyn Transport>`.
pub trait Transport: Send + Sync {
    /// Cluster size.
    fn nodes(&self) -> usize;

    /// Aggregator lanes per node (ack mailboxes per node).
    fn lanes(&self) -> usize;

    /// Send a sealed data frame towards `frame.dest` (the routing
    /// stamp), blocking up to `timeout` if the destination's ingress
    /// channel is full.
    fn send_data(&self, frame: DataFrame, timeout: Duration) -> SendStatus;

    /// Receive the next data frame addressed to `node`, waiting up to
    /// `timeout`. The frame is *unverified* — the caller must `open` it
    /// before trusting a byte.
    fn recv_data(&self, node: NodeId, timeout: Duration) -> RecvStatus<DataFrame>;

    /// Send a sealed ack towards `(ack.dest, ack.lane)`. Best-effort and
    /// non-blocking: acks are cumulative, so dropping one (full mailbox,
    /// injected fault) only delays progress until the next ack or a
    /// retransmission — it can never corrupt the protocol.
    fn send_ack(&self, ack: AckFrame);

    /// Drain one pending (unverified) ack for aggregator `lane` of
    /// `node`.
    fn try_recv_ack(&self, node: NodeId, lane: u32) -> Option<AckFrame>;

    /// Send a liveness beacon towards `hb.dest`. Best-effort and
    /// non-blocking like acks; a transport without a heartbeat plane may
    /// simply drop them (the failure detector then reports every peer as
    /// silent, which is the honest answer).
    fn send_heartbeat(&self, hb: Heartbeat) {
        let _ = hb;
    }

    /// Drain one pending heartbeat addressed to `node`.
    fn try_recv_heartbeat(&self, node: NodeId) -> Option<Heartbeat> {
        let _ = node;
        None
    }

    /// Close the fabric: subsequent sends fail fast, receivers drain
    /// what is already in flight and then observe [`RecvStatus::Closed`].
    fn close(&self);

    /// Whether [`close`](Self::close) has been called.
    fn is_closed(&self) -> bool;

    /// Counters of injected faults (all zero for reliable transports).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }

    /// Current data-plane queue depth per node, for quiesce-timeout
    /// diagnostics.
    fn data_depths(&self) -> Vec<usize>;

    /// Acks currently sitting in node `node`'s lane mailboxes (sent but
    /// not yet drained by its aggregators). On a quiesced cluster this
    /// closes the ack ledger: every ack sent is either received, still
    /// mailboxed here, or counted in `fault_stats().dropped_acks`.
    fn ack_depths(&self, node: NodeId) -> usize;
}
