//! The fault-injecting decorator.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bytes::Bytes;
use gravel_pgas::frame::{HEADER_BYTES, MAGIC};
use gravel_pgas::DataFrame;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::partition::LinkSchedule;
use crate::{AckFrame, FaultConfig, FaultStats, Heartbeat, NodeId, RecvStatus, SendStatus, Transport};

/// SplitMix64-style finalizer for deriving per-link seeds.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pick 1–3 *distinct* `(byte, bit-mask)` flips for a frame of `len`
/// bytes. Distinctness matters: two identical flips would cancel and
/// deliver the frame intact while the stats claim it was corrupted.
fn roll_flips(rng: &mut StdRng, len: usize) -> Vec<(usize, u8)> {
    let want = rng.gen_range(1..=3usize);
    let mut flips: Vec<(usize, u8)> = Vec::with_capacity(want);
    while flips.len() < want {
        let f = (rng.gen_range(0..len), 1u8 << rng.gen_range(0..8u32));
        if !flips.contains(&f) {
            flips.push(f);
        }
    }
    flips
}

struct LinkState {
    rng: StdRng,
    /// Phase offset of this link's down windows within the period.
    down_phase: Duration,
}

/// A frame held back for jittered (reordering) delivery.
struct Delayed {
    due: Instant,
    /// Tiebreak so the heap is a total order.
    id: u64,
    frame: DataFrame,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert for earliest-due-first.
        other.due.cmp(&self.due).then(other.id.cmp(&self.id))
    }
}

/// Decorator that injects seeded per-link faults into an inner
/// transport (see crate docs for the model). Cross-node data packets
/// may be dropped, duplicated, or held back; acks may be dropped.
/// Loopback (`src == dest`) traffic passes through untouched.
pub struct UnreliableTransport<T: Transport> {
    inner: T,
    cfg: FaultConfig,
    /// Declarative connectivity faults (partitions, one-way drops,
    /// per-link delays) built from `cfg.link_faults`, armed at
    /// construction.
    schedule: LinkSchedule,
    /// Row-major `[src][dest]` link states (unused diagonal included to
    /// keep indexing trivial).
    links: Vec<Mutex<LinkState>>,
    /// Held-back frames awaiting their jittered due time, per dest.
    delayed: Vec<Mutex<BinaryHeap<Delayed>>>,
    epoch: Instant,
    next_delay_id: AtomicU64,
    dropped_data: AtomicU64,
    dropped_acks: AtomicU64,
    dropped_heartbeats: AtomicU64,
    duplicated: AtomicU64,
    delayed_count: AtomicU64,
    link_down_drops: AtomicU64,
    corrupted_data: AtomicU64,
    truncated_data: AtomicU64,
    garbage_data: AtomicU64,
    misrouted_data: AtomicU64,
    corrupted_acks: AtomicU64,
}

/// One corruption decision for a data frame, rolled under the link
/// lock so the pattern is seed-deterministic per link.
enum Mangle {
    /// Replace the frame wholesale with junk bytes.
    Garbage(Vec<u8>),
    /// Cut the frame to this many bytes.
    Truncate(usize),
    /// XOR these `(byte, mask)` pairs into the frame.
    Flip(Vec<(usize, u8)>),
    /// Rewrite the routing stamp to this node, contents untouched.
    Misroute(u32),
}

impl<T: Transport> UnreliableTransport<T> {
    /// Wrap `inner` with the given fault model.
    pub fn new(inner: T, cfg: FaultConfig) -> Self {
        cfg.validate();
        let nodes = inner.nodes();
        let links = (0..nodes * nodes)
            .map(|i| {
                let (src, dest) = (i / nodes, i % nodes);
                let seed = mix(cfg.seed ^ mix((src as u64) << 32 | dest as u64));
                let down_phase = if cfg.link_down_period.is_zero() {
                    Duration::ZERO
                } else {
                    Duration::from_nanos(seed % cfg.link_down_period.as_nanos() as u64)
                };
                Mutex::new(LinkState { rng: StdRng::seed_from_u64(seed), down_phase })
            })
            .collect();
        let schedule = LinkSchedule::new(cfg.seed, cfg.link_faults.clone());
        schedule.arm();
        UnreliableTransport {
            delayed: (0..nodes).map(|_| Mutex::new(BinaryHeap::new())).collect(),
            links,
            inner,
            schedule,
            cfg,
            epoch: Instant::now(),
            next_delay_id: AtomicU64::new(0),
            dropped_data: AtomicU64::new(0),
            dropped_acks: AtomicU64::new(0),
            dropped_heartbeats: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delayed_count: AtomicU64::new(0),
            link_down_drops: AtomicU64::new(0),
            corrupted_data: AtomicU64::new(0),
            truncated_data: AtomicU64::new(0),
            garbage_data: AtomicU64::new(0),
            misrouted_data: AtomicU64::new(0),
            corrupted_acks: AtomicU64::new(0),
        }
    }

    /// Roll at most one corruption for a data frame of `len` bytes.
    /// Priority garbage > truncate > flip > misroute keeps the per-link
    /// pattern deterministic for a fixed seed and traffic order.
    fn roll_mangle(&self, rng: &mut StdRng, len: usize, dest: u32) -> Option<Mangle> {
        if self.cfg.garbage > 0.0 && rng.gen_bool(self.cfg.garbage) {
            let junk_len = HEADER_BYTES + rng.gen_range(0..=64usize);
            let mut junk = vec![0u8; junk_len];
            for chunk in junk.chunks_mut(8) {
                let w = rng.next_u64().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
            // If the junk opens with a valid magic by chance, break it:
            // classification in tests stays deterministic (BadMagic).
            if junk[..4] == MAGIC.to_le_bytes() {
                junk[0] ^= 0x01;
            }
            return Some(Mangle::Garbage(junk));
        }
        if self.cfg.truncate > 0.0 && rng.gen_bool(self.cfg.truncate) {
            return Some(Mangle::Truncate(rng.gen_range(0..len)));
        }
        if self.cfg.corrupt > 0.0 && rng.gen_bool(self.cfg.corrupt) {
            return Some(Mangle::Flip(roll_flips(rng, len)));
        }
        if self.cfg.misroute > 0.0 && rng.gen_bool(self.cfg.misroute) {
            let nodes = self.inner.nodes() as u32;
            // Any node but the intended one (with 2 nodes that is the
            // sender itself — still a misdelivery the receiver catches).
            let mut target = rng.gen_range(0..nodes);
            if target == dest {
                target = (target + 1) % nodes;
            }
            return Some(Mangle::Misroute(target));
        }
        None
    }

    fn link(&self, src: NodeId, dest: NodeId) -> &Mutex<LinkState> {
        &self.links[src as usize * self.inner.nodes() + dest as usize]
    }

    /// Is the `(src, dest)` link inside one of its down windows?
    fn link_down(&self, phase: Duration) -> bool {
        if self.cfg.link_down_period.is_zero() {
            return false;
        }
        let period = self.cfg.link_down_period.as_nanos() as u64;
        let pos = (self.epoch.elapsed().as_nanos() as u64 + phase.as_nanos() as u64) % period;
        pos < self.cfg.link_down_len.as_nanos() as u64
    }

    /// Pop a due delayed frame for `node`, and report the next due time.
    fn pop_delayed(&self, node: NodeId, now: Instant, ignore_due: bool) -> (Option<DataFrame>, Option<Instant>) {
        let mut heap = self.delayed[node as usize].lock().unwrap();
        match heap.peek() {
            Some(d) if ignore_due || d.due <= now => {
                let frame = heap.pop().unwrap().frame;
                let next = heap.peek().map(|d| d.due);
                (Some(frame), next)
            }
            Some(d) => (None, Some(d.due)),
            None => (None, None),
        }
    }

    /// Deliver a mangled variant of `frame` and count it — but only if
    /// the inner fabric accepted the bytes. A corrupted frame that dies
    /// in a full channel was never *delivered* corrupted, and counting
    /// it would break the receiver-side reconciliation ledger.
    fn deliver_mangled(&self, frame: DataFrame, mangle: Mangle) {
        let (mangled, counter) = match mangle {
            Mangle::Garbage(junk) => (
                DataFrame { bytes: Bytes::from(junk), ..frame },
                &self.garbage_data,
            ),
            Mangle::Truncate(n) => (
                DataFrame { bytes: frame.bytes.slice(0..n), ..frame },
                &self.truncated_data,
            ),
            Mangle::Flip(flips) => {
                let mut bytes = frame.bytes.to_vec();
                for (at, mask) in flips {
                    bytes[at] ^= mask;
                }
                (
                    DataFrame { bytes: Bytes::from(bytes), ..frame },
                    &self.corrupted_data,
                )
            }
            Mangle::Misroute(target) => (
                DataFrame { dest: target, ..frame },
                &self.misrouted_data,
            ),
        };
        if self.inner.send_data(mangled, Duration::ZERO) == SendStatus::Sent {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<T: Transport> Transport for UnreliableTransport<T> {
    fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    fn lanes(&self) -> usize {
        self.inner.lanes()
    }

    fn send_data(&self, frame: DataFrame, timeout: Duration) -> SendStatus {
        if frame.src == frame.dest {
            return self.inner.send_data(frame, timeout);
        }
        if self.schedule.blocked(frame.src, frame.dest) {
            return SendStatus::Sent; // swallowed by the partition
        }
        let (down, drop, dup, delay, mangle) = {
            let mut link = self.link(frame.src, frame.dest).lock().unwrap();
            let down = self.link_down(link.down_phase);
            let drop = self.cfg.drop > 0.0 && link.rng.gen_bool(self.cfg.drop);
            let dup = self.cfg.duplicate > 0.0 && link.rng.gen_bool(self.cfg.duplicate);
            let mut delay = if self.cfg.reorder > 0.0 && link.rng.gen_bool(self.cfg.reorder) {
                let jitter_ns = (self.cfg.jitter.as_nanos() as u64).max(1);
                Some(Duration::from_nanos(link.rng.next_u64() % jitter_ns))
            } else {
                None
            };
            // The latency knob: a base hold plus jitter, stacking on top
            // of (not replacing) a reorder hold rolled above.
            if self.cfg.delay_prob > 0.0 && link.rng.gen_bool(self.cfg.delay_prob) {
                let jitter_ns = self.cfg.jitter.as_nanos() as u64;
                let extra = if jitter_ns == 0 {
                    Duration::ZERO
                } else {
                    Duration::from_nanos(link.rng.next_u64() % jitter_ns)
                };
                delay = Some(delay.unwrap_or(Duration::ZERO).max(self.cfg.delay + extra));
            }
            let mangle = self.roll_mangle(&mut link.rng, frame.bytes.len(), frame.dest);
            (down, drop, dup, delay, mangle)
        };
        // Declarative per-link delay faults stack on whatever was rolled.
        let delay = match self.schedule.delay(frame.src, frame.dest) {
            Some(d) => Some(delay.unwrap_or(Duration::ZERO) + d),
            None => delay,
        };
        if down {
            self.link_down_drops.fetch_add(1, Ordering::Relaxed);
            return SendStatus::Sent; // swallowed by the dead link
        }
        if drop {
            self.dropped_data.fetch_add(1, Ordering::Relaxed);
            return SendStatus::Sent;
        }
        if dup {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            // Best-effort second copy, sent *pristine* before any
            // corruption: the protocol must survive a mangled original
            // racing a clean duplicate. Losing it is itself a valid
            // fault.
            let _ = self.inner.send_data(frame.clone(), Duration::ZERO);
        }
        if let Some(mangle) = mangle {
            // The original is consumed by the mangling — from the
            // sender's perspective it was Sent; from the receiver's it
            // will fail verification and be healed by retransmission
            // (corrupted ≡ lost).
            self.deliver_mangled(frame, mangle);
            return SendStatus::Sent;
        }
        if let Some(extra) = delay {
            self.delayed_count.fetch_add(1, Ordering::Relaxed);
            let dest = frame.dest as usize;
            self.delayed[dest].lock().unwrap().push(Delayed {
                due: Instant::now() + extra,
                id: self.next_delay_id.fetch_add(1, Ordering::Relaxed),
                frame,
            });
            return SendStatus::Sent;
        }
        self.inner.send_data(frame, timeout)
    }

    fn recv_data(&self, node: NodeId, timeout: Duration) -> RecvStatus<DataFrame> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            let (due, next_due) = self.pop_delayed(node, now, false);
            if let Some(frame) = due {
                return RecvStatus::Msg(frame);
            }
            let mut wait = deadline.saturating_duration_since(now);
            if let Some(nd) = next_due {
                wait = wait.min(nd.saturating_duration_since(now));
            }
            match self.inner.recv_data(node, wait) {
                RecvStatus::Msg(frame) => return RecvStatus::Msg(frame),
                RecvStatus::Closed => {
                    // Fabric closed: flush held-back frames immediately so
                    // nothing accepted before close() is lost.
                    return match self.pop_delayed(node, now, true).0 {
                        Some(frame) => RecvStatus::Msg(frame),
                        None => RecvStatus::Closed,
                    };
                }
                RecvStatus::TimedOut => {
                    if Instant::now() >= deadline {
                        // One last chance for a frame that came due during
                        // the inner wait.
                        return match self.pop_delayed(node, Instant::now(), false).0 {
                            Some(frame) => RecvStatus::Msg(frame),
                            None => RecvStatus::TimedOut,
                        };
                    }
                }
            }
        }
    }

    fn send_ack(&self, mut ack: AckFrame) {
        if ack.src != ack.dest {
            if self.schedule.blocked(ack.src, ack.dest) {
                return; // swallowed by the partition
            }
            let (down, drop, flips) = {
                let mut link = self.link(ack.src, ack.dest).lock().unwrap();
                let down = self.link_down(link.down_phase);
                let drop = self.cfg.drop > 0.0 && link.rng.gen_bool(self.cfg.drop);
                let flips = if self.cfg.corrupt > 0.0 && link.rng.gen_bool(self.cfg.corrupt) {
                    Some(roll_flips(&mut link.rng, ack.bytes.len()))
                } else {
                    None
                };
                (down, drop, flips)
            };
            if down {
                self.link_down_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if drop {
                self.dropped_acks.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if let Some(flips) = flips {
                // Only the frame bytes are flipped; the routing stamps
                // stay intact so the mangled ack still lands in the
                // right mailbox to be rejected there. Counted at
                // injection (not on accept): acks are fire-and-forget,
                // so the receiver reconciles `<=` against this.
                for (at, mask) in flips {
                    ack.bytes[at] ^= mask;
                }
                self.corrupted_acks.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inner.send_ack(ack);
    }

    fn try_recv_ack(&self, node: NodeId, lane: u32) -> Option<AckFrame> {
        self.inner.try_recv_ack(node, lane)
    }

    fn send_heartbeat(&self, hb: Heartbeat) {
        if hb.src != hb.dest {
            if self.schedule.blocked(hb.src, hb.dest) {
                return; // swallowed by the partition
            }
            let (down, drop) = {
                let mut link = self.link(hb.src, hb.dest).lock().unwrap();
                let down = self.link_down(link.down_phase);
                let drop = self.cfg.drop > 0.0 && link.rng.gen_bool(self.cfg.drop);
                (down, drop)
            };
            // Either way the beat dies silently — heartbeats are the
            // least reliable traffic class by design.
            if down {
                self.link_down_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if drop {
                self.dropped_heartbeats.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.inner.send_heartbeat(hb);
    }

    fn try_recv_heartbeat(&self, node: NodeId) -> Option<Heartbeat> {
        self.inner.try_recv_heartbeat(node)
    }

    fn close(&self) {
        self.inner.close();
    }

    fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }

    fn fault_stats(&self) -> FaultStats {
        let inner = self.inner.fault_stats();
        let sched = self.schedule.stats();
        FaultStats {
            dropped_data: self.dropped_data.load(Ordering::Relaxed),
            dropped_acks: self.dropped_acks.load(Ordering::Relaxed) + inner.dropped_acks,
            dropped_heartbeats: self.dropped_heartbeats.load(Ordering::Relaxed)
                + inner.dropped_heartbeats,
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delayed: self.delayed_count.load(Ordering::Relaxed),
            link_down_drops: self.link_down_drops.load(Ordering::Relaxed),
            corrupted_data: self.corrupted_data.load(Ordering::Relaxed),
            truncated_data: self.truncated_data.load(Ordering::Relaxed),
            garbage_data: self.garbage_data.load(Ordering::Relaxed),
            misrouted_data: self.misrouted_data.load(Ordering::Relaxed),
            corrupted_acks: self.corrupted_acks.load(Ordering::Relaxed),
            partition_drops: sched.partition_drops,
            oneway_drops: sched.oneway_drops,
        }
    }

    fn data_depths(&self) -> Vec<usize> {
        let mut depths = self.inner.data_depths();
        for (d, heap) in self.delayed.iter().enumerate() {
            depths[d] += heap.lock().unwrap().len();
        }
        depths
    }

    fn ack_depths(&self, node: crate::NodeId) -> usize {
        // Ack faults are drops, never delays: everything buffered lives
        // in the inner fabric's mailboxes.
        self.inner.ack_depths(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ack, ChannelTransport};
    use gravel_pgas::{FrameError, Packet, WireIntegrity};

    fn pkt(src: u32, dest: u32, tag: u64) -> DataFrame {
        Packet::from_words(src, dest, &[tag]).seal(0, WireIntegrity::Crc32c)
    }

    fn words(f: &DataFrame) -> Vec<u64> {
        f.open(WireIntegrity::Crc32c).expect("frame should be pristine").words()
    }

    const T: Duration = Duration::from_millis(300);

    #[test]
    fn no_faults_is_transparent() {
        // Capacity must cover all 20 sends: nothing drains until the
        // send loop finishes.
        let t = UnreliableTransport::new(ChannelTransport::new(2, 1, 32), FaultConfig::quiet(1));
        for i in 0..20 {
            assert_eq!(t.send_data(pkt(0, 1, i), T), SendStatus::Sent);
        }
        for i in 0..20 {
            match t.recv_data(1, T) {
                RecvStatus::Msg(f) => assert_eq!(words(&f), vec![i]),
                other => panic!("{other:?}"),
            }
        }
        assert!(t.fault_stats().is_clean());
    }

    #[test]
    fn drops_are_counted_and_deterministic() {
        let count_drops = |seed| {
            let t = UnreliableTransport::new(
                ChannelTransport::new(2, 1, 2048),
                FaultConfig::drop_only(seed, 0.2),
            );
            for i in 0..1000 {
                t.send_data(pkt(0, 1, i), T);
            }
            t.fault_stats().dropped_data
        };
        let a = count_drops(7);
        assert_eq!(a, count_drops(7), "same seed, same faults");
        assert!((100..350).contains(&a), "~20% of 1000, got {a}");
        assert_ne!(a, count_drops(8), "different seed, different pattern");
    }

    #[test]
    fn duplicates_deliver_twice() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 2048),
            FaultConfig { duplicate: 1.0, ..FaultConfig::quiet(3) },
        );
        for i in 0..10 {
            t.send_data(pkt(0, 1, i), T);
        }
        let mut got = 0;
        while let RecvStatus::Msg(_) = t.recv_data(1, Duration::from_millis(10)) {
            got += 1;
        }
        assert_eq!(got, 20);
        assert_eq!(t.fault_stats().duplicated, 10);
    }

    #[test]
    fn reordering_actually_reorders() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 4096),
            FaultConfig {
                reorder: 0.5,
                jitter: Duration::from_millis(2),
                ..FaultConfig::quiet(11)
            },
        );
        for i in 0..200 {
            t.send_data(pkt(0, 1, i), T);
        }
        let mut got = Vec::new();
        while let RecvStatus::Msg(f) = t.recv_data(1, Duration::from_millis(20)) {
            got.push(words(&f)[0]);
        }
        assert_eq!(got.len(), 200, "nothing lost, only reordered");
        assert!(got.windows(2).any(|w| w[0] > w[1]), "some inversion exists");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn loopback_is_never_faulted() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 2048),
            FaultConfig { drop: 1.0, ..FaultConfig::quiet(5) },
        );
        for i in 0..50 {
            t.send_data(pkt(0, 0, i), T);
        }
        for i in 0..50 {
            match t.recv_data(0, T) {
                RecvStatus::Msg(f) => assert_eq!(words(&f), vec![i]),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(t.fault_stats().dropped_data, 0);
    }

    #[test]
    fn close_flushes_delayed_packets() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 16),
            FaultConfig {
                reorder: 1.0,
                jitter: Duration::from_secs(5), // far beyond the test timeout
                ..FaultConfig::quiet(9)
            },
        );
        t.send_data(pkt(0, 1, 42), T);
        t.close();
        match t.recv_data(1, Duration::from_millis(50)) {
            RecvStatus::Msg(f) => assert_eq!(words(&f), vec![42]),
            other => panic!("delayed packet lost at close: {other:?}"),
        }
        assert!(matches!(t.recv_data(1, Duration::from_millis(5)), RecvStatus::Closed));
    }

    #[test]
    fn heartbeats_are_faulted_like_everything_else() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 16),
            FaultConfig { drop: 1.0, ..FaultConfig::quiet(17) },
        );
        for seq in 0..25 {
            t.send_heartbeat(Heartbeat { src: 0, dest: 1, seq });
        }
        assert_eq!(t.try_recv_heartbeat(1), None, "every beat dropped");
        assert_eq!(t.fault_stats().dropped_heartbeats, 25);
        // Loopback beats (a node observing itself) are never faulted.
        t.send_heartbeat(Heartbeat { src: 0, dest: 0, seq: 1 });
        assert_eq!(t.try_recv_heartbeat(0), Some(Heartbeat { src: 0, dest: 0, seq: 1 }));
    }

    #[test]
    fn link_down_windows_swallow_traffic() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 4096),
            FaultConfig {
                link_down_period: Duration::from_millis(10),
                link_down_len: Duration::from_millis(5),
                ..FaultConfig::quiet(13)
            },
        );
        // Spread sends across several periods: some must hit a window.
        for i in 0..40 {
            t.send_data(pkt(0, 1, i), T);
            std::thread::sleep(Duration::from_millis(1));
        }
        let drops = t.fault_stats().link_down_drops;
        assert!(drops > 0, "no send hit a down window");
        assert!(drops < 40, "link was never up");
    }

    #[test]
    fn corruption_is_deterministic_and_counted() {
        let run = |seed| {
            let t = UnreliableTransport::new(
                ChannelTransport::new(2, 1, 4096),
                FaultConfig::corrupting(seed, 0.2),
            );
            for i in 0..1000 {
                t.send_data(pkt(0, 1, i), T);
            }
            let s = t.fault_stats();
            (s.corrupted_data, s.truncated_data, s.garbage_data, s.misrouted_data)
        };
        let a = run(21);
        assert_eq!(a, run(21), "same seed, same corruption pattern");
        assert_ne!(a, run(22), "different seed, different pattern");
        let total = a.0 + a.1 + a.2 + a.3;
        assert!((200..600).contains(&total), "~35% of 1000 corrupted somehow, got {total}");
        assert!(a.0 > 0 && a.1 > 0 && a.2 > 0 && a.3 > 0, "every class fired: {a:?}");
    }

    #[test]
    fn corrupted_frames_fail_verification_at_the_receiver() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 4096),
            FaultConfig { corrupt: 1.0, ..FaultConfig::quiet(23) },
        );
        for i in 0..100 {
            assert_eq!(t.send_data(pkt(0, 1, i), T), SendStatus::Sent);
        }
        let mut bad = 0;
        while let RecvStatus::Msg(f) = t.recv_data(1, Duration::from_millis(10)) {
            assert!(f.open(WireIntegrity::Crc32c).is_err(), "flip went undetected");
            bad += 1;
        }
        assert_eq!(bad as u64, t.fault_stats().corrupted_data);
        assert_eq!(bad, 100, "every frame was delivered (mangled), none lost");
    }

    #[test]
    fn truncated_frames_classify_as_truncation() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 256),
            FaultConfig { truncate: 1.0, ..FaultConfig::quiet(29) },
        );
        for i in 0..50 {
            t.send_data(pkt(0, 1, i), T);
        }
        while let RecvStatus::Msg(f) = t.recv_data(1, Duration::from_millis(10)) {
            let err = f.open(WireIntegrity::Crc32c).unwrap_err();
            assert!(err.is_truncation(), "expected truncation, got {err}");
        }
        assert_eq!(t.fault_stats().truncated_data, 50);
    }

    #[test]
    fn garbage_frames_fail_magic() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 256),
            FaultConfig { garbage: 1.0, ..FaultConfig::quiet(31) },
        );
        for i in 0..50 {
            t.send_data(pkt(0, 1, i), T);
        }
        while let RecvStatus::Msg(f) = t.recv_data(1, Duration::from_millis(10)) {
            assert!(matches!(
                f.open(WireIntegrity::Crc32c),
                Err(FrameError::BadMagic { .. })
            ));
        }
        assert_eq!(t.fault_stats().garbage_data, 50);
    }

    #[test]
    fn misrouted_frames_arrive_intact_at_the_wrong_node() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(3, 1, 256),
            FaultConfig { misroute: 1.0, ..FaultConfig::quiet(37) },
        );
        for i in 0..20 {
            t.send_data(pkt(0, 1, i), T);
        }
        assert!(
            matches!(t.recv_data(1, Duration::from_millis(10)), RecvStatus::TimedOut),
            "nothing reaches the intended node"
        );
        let mut strays = 0;
        for node in [0u32, 2] {
            while let RecvStatus::Msg(f) = t.recv_data(node, Duration::from_millis(10)) {
                // The frame verifies — misroutes corrupt routing, not
                // bytes — and its header still names the true dest.
                let p = f.open(WireIntegrity::Crc32c).expect("bytes intact");
                assert_eq!(p.dest, 1, "header names the intended destination");
                assert_ne!(f.dest, 1, "routing stamp was rewritten");
                strays += 1;
            }
        }
        assert_eq!(strays, 20);
        assert_eq!(t.fault_stats().misrouted_data, 20);
    }

    #[test]
    fn duplicates_are_pristine_even_when_the_original_is_corrupted() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 256),
            FaultConfig { duplicate: 1.0, corrupt: 1.0, ..FaultConfig::quiet(41) },
        );
        t.send_data(pkt(0, 1, 7), T);
        let (mut ok, mut bad) = (0, 0);
        while let RecvStatus::Msg(f) = t.recv_data(1, Duration::from_millis(10)) {
            match f.open(WireIntegrity::Crc32c) {
                Ok(p) => {
                    assert_eq!(p.words(), vec![7]);
                    ok += 1;
                }
                Err(_) => bad += 1,
            }
        }
        assert_eq!((ok, bad), (1, 1), "one clean duplicate, one mangled original");
    }

    #[test]
    fn partition_blocks_every_plane_then_heals() {
        use crate::partition::LinkFault;
        let t = UnreliableTransport::new(
            ChannelTransport::new(3, 1, 256),
            FaultConfig {
                link_faults: vec![LinkFault::Partition {
                    island: vec![0],
                    from: Duration::ZERO,
                    until: Duration::from_millis(80),
                }],
                ..FaultConfig::quiet(3)
            },
        );
        for i in 0..10 {
            assert_eq!(t.send_data(pkt(0, 1, i), T), SendStatus::Sent);
        }
        t.send_ack(Ack { src: 0, dest: 1, lane: 0, cum_seq: 1 }.seal(0, WireIntegrity::Crc32c));
        t.send_heartbeat(Heartbeat { src: 1, dest: 0, seq: 0 });
        // Links wholly inside one side still work.
        t.send_data(pkt(1, 2, 99), T);
        match t.recv_data(2, T) {
            RecvStatus::Msg(f) => assert_eq!(words(&f), vec![99]),
            other => panic!("{other:?}"),
        }
        assert!(matches!(t.recv_data(1, Duration::from_millis(5)), RecvStatus::TimedOut));
        assert_eq!(t.try_recv_ack(1, 0), None);
        assert_eq!(t.try_recv_heartbeat(0), None);
        // Injected-vs-observed: 12 frames were swallowed, all by the
        // partition, and the ledger says exactly that.
        let s = t.fault_stats();
        assert_eq!(s.partition_drops, 12);
        assert_eq!(s.total_losses(), 12);
        // Heal: the window expires and the same link carries traffic.
        std::thread::sleep(Duration::from_millis(90));
        t.send_data(pkt(0, 1, 7), T);
        match t.recv_data(1, T) {
            RecvStatus::Msg(f) => assert_eq!(words(&f), vec![7]),
            other => panic!("partition did not heal: {other:?}"),
        }
        assert_eq!(t.fault_stats().partition_drops, 12, "no drops after heal");
    }

    #[test]
    fn oneway_link_drop_is_asymmetric() {
        use crate::partition::LinkFault;
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 256),
            FaultConfig {
                link_faults: vec![LinkFault::OneWay {
                    src: 0,
                    dest: 1,
                    from: Duration::ZERO,
                    until: Duration::from_secs(60),
                }],
                ..FaultConfig::quiet(5)
            },
        );
        for i in 0..5 {
            t.send_data(pkt(0, 1, i), T);
            t.send_data(pkt(1, 0, 100 + i), T);
        }
        assert!(matches!(t.recv_data(1, Duration::from_millis(5)), RecvStatus::TimedOut));
        for i in 0..5 {
            match t.recv_data(0, T) {
                RecvStatus::Msg(f) => assert_eq!(words(&f), vec![100 + i]),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(t.fault_stats().oneway_drops, 5);
        assert_eq!(t.fault_stats().partition_drops, 0);
    }

    #[test]
    fn delay_knob_holds_frames_for_at_least_the_base() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 256),
            FaultConfig {
                delay_prob: 1.0,
                delay: Duration::from_millis(30),
                jitter: Duration::from_millis(5),
                ..FaultConfig::quiet(7)
            },
        );
        let sent_at = Instant::now();
        for i in 0..10 {
            t.send_data(pkt(0, 1, i), T);
        }
        // Nothing may surface before the base delay has elapsed.
        assert!(matches!(t.recv_data(1, Duration::from_millis(5)), RecvStatus::TimedOut));
        let mut got = 0;
        while let RecvStatus::Msg(f) = t.recv_data(1, Duration::from_millis(100)) {
            assert!(
                sent_at.elapsed() >= Duration::from_millis(30),
                "frame {:?} surfaced before its base delay",
                words(&f)
            );
            got += 1;
            if got == 10 {
                break;
            }
        }
        // Injected-vs-observed reconciliation: every frame was held
        // exactly once and every held frame was eventually delivered.
        assert_eq!(got, 10);
        assert_eq!(t.fault_stats().delayed, 10);
        assert!(!t.fault_stats().is_clean() && t.fault_stats().total_losses() == 0);
    }

    #[test]
    fn declarative_per_link_delay_applies_to_one_direction() {
        use crate::partition::LinkFault;
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 256),
            FaultConfig {
                link_faults: vec![LinkFault::Delay {
                    src: 0,
                    dest: 1,
                    base: Duration::from_millis(25),
                    jitter: Duration::from_millis(5),
                }],
                ..FaultConfig::quiet(9)
            },
        );
        let sent_at = Instant::now();
        t.send_data(pkt(0, 1, 1), T);
        t.send_data(pkt(1, 0, 2), T);
        // Reverse direction is undelayed and arrives immediately.
        match t.recv_data(0, Duration::from_millis(200)) {
            RecvStatus::Msg(f) => assert_eq!(words(&f), vec![2]),
            other => panic!("{other:?}"),
        }
        match t.recv_data(1, Duration::from_millis(500)) {
            RecvStatus::Msg(f) => assert_eq!(words(&f), vec![1]),
            other => panic!("{other:?}"),
        }
        assert!(sent_at.elapsed() >= Duration::from_millis(25), "delayed direction was held");
        assert_eq!(t.fault_stats().delayed, 1);
    }

    #[test]
    fn corrupted_acks_fail_verification() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 16),
            FaultConfig { corrupt: 1.0, ..FaultConfig::quiet(43) },
        );
        for i in 0..20 {
            t.send_ack(Ack { src: 1, dest: 0, lane: 0, cum_seq: i }.seal(0, WireIntegrity::Crc32c));
        }
        let mut bad = 0;
        while let Some(f) = t.try_recv_ack(0, 0) {
            assert!(f.open(WireIntegrity::Crc32c).is_err());
            bad += 1;
        }
        assert_eq!(bad, 20);
        assert_eq!(t.fault_stats().corrupted_acks, 20);
        // Loopback acks are never touched.
        t.send_ack(Ack { src: 0, dest: 0, lane: 0, cum_seq: 9 }.seal(0, WireIntegrity::Crc32c));
        let f = t.try_recv_ack(0, 0).unwrap();
        assert_eq!(f.open(WireIntegrity::Crc32c).unwrap().cum_seq, 9);
    }
}
