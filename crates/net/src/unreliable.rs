//! The fault-injecting decorator.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use gravel_pgas::Packet;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::{Ack, FaultConfig, FaultStats, Heartbeat, NodeId, RecvStatus, SendStatus, Transport};

/// SplitMix64-style finalizer for deriving per-link seeds.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct LinkState {
    rng: StdRng,
    /// Phase offset of this link's down windows within the period.
    down_phase: Duration,
}

/// A packet held back for jittered (reordering) delivery.
struct Delayed {
    due: Instant,
    /// Tiebreak so the heap is a total order.
    id: u64,
    pkt: Packet,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.id == other.id
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert for earliest-due-first.
        other.due.cmp(&self.due).then(other.id.cmp(&self.id))
    }
}

/// Decorator that injects seeded per-link faults into an inner
/// transport (see crate docs for the model). Cross-node data packets
/// may be dropped, duplicated, or held back; acks may be dropped.
/// Loopback (`src == dest`) traffic passes through untouched.
pub struct UnreliableTransport<T: Transport> {
    inner: T,
    cfg: FaultConfig,
    /// Row-major `[src][dest]` link states (unused diagonal included to
    /// keep indexing trivial).
    links: Vec<Mutex<LinkState>>,
    /// Held-back packets awaiting their jittered due time, per dest.
    delayed: Vec<Mutex<BinaryHeap<Delayed>>>,
    epoch: Instant,
    next_delay_id: AtomicU64,
    dropped_data: AtomicU64,
    dropped_acks: AtomicU64,
    dropped_heartbeats: AtomicU64,
    duplicated: AtomicU64,
    delayed_count: AtomicU64,
    link_down_drops: AtomicU64,
}

impl<T: Transport> UnreliableTransport<T> {
    /// Wrap `inner` with the given fault model.
    pub fn new(inner: T, cfg: FaultConfig) -> Self {
        cfg.validate();
        let nodes = inner.nodes();
        let links = (0..nodes * nodes)
            .map(|i| {
                let (src, dest) = (i / nodes, i % nodes);
                let seed = mix(cfg.seed ^ mix((src as u64) << 32 | dest as u64));
                let down_phase = if cfg.link_down_period.is_zero() {
                    Duration::ZERO
                } else {
                    Duration::from_nanos(seed % cfg.link_down_period.as_nanos() as u64)
                };
                Mutex::new(LinkState { rng: StdRng::seed_from_u64(seed), down_phase })
            })
            .collect();
        UnreliableTransport {
            delayed: (0..nodes).map(|_| Mutex::new(BinaryHeap::new())).collect(),
            links,
            inner,
            cfg,
            epoch: Instant::now(),
            next_delay_id: AtomicU64::new(0),
            dropped_data: AtomicU64::new(0),
            dropped_acks: AtomicU64::new(0),
            dropped_heartbeats: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delayed_count: AtomicU64::new(0),
            link_down_drops: AtomicU64::new(0),
        }
    }

    fn link(&self, src: NodeId, dest: NodeId) -> &Mutex<LinkState> {
        &self.links[src as usize * self.inner.nodes() + dest as usize]
    }

    /// Is the `(src, dest)` link inside one of its down windows?
    fn link_down(&self, phase: Duration) -> bool {
        if self.cfg.link_down_period.is_zero() {
            return false;
        }
        let period = self.cfg.link_down_period.as_nanos() as u64;
        let pos = (self.epoch.elapsed().as_nanos() as u64 + phase.as_nanos() as u64) % period;
        pos < self.cfg.link_down_len.as_nanos() as u64
    }

    /// Pop a due delayed packet for `node`, and report the next due time.
    fn pop_delayed(&self, node: NodeId, now: Instant, ignore_due: bool) -> (Option<Packet>, Option<Instant>) {
        let mut heap = self.delayed[node as usize].lock().unwrap();
        match heap.peek() {
            Some(d) if ignore_due || d.due <= now => {
                let pkt = heap.pop().unwrap().pkt;
                let next = heap.peek().map(|d| d.due);
                (Some(pkt), next)
            }
            Some(d) => (None, Some(d.due)),
            None => (None, None),
        }
    }
}

impl<T: Transport> Transport for UnreliableTransport<T> {
    fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    fn lanes(&self) -> usize {
        self.inner.lanes()
    }

    fn send_data(&self, pkt: Packet, timeout: Duration) -> SendStatus {
        if pkt.src == pkt.dest {
            return self.inner.send_data(pkt, timeout);
        }
        let (down, drop, dup, delay) = {
            let mut link = self.link(pkt.src, pkt.dest).lock().unwrap();
            let down = self.link_down(link.down_phase);
            let drop = self.cfg.drop > 0.0 && link.rng.gen_bool(self.cfg.drop);
            let dup = self.cfg.duplicate > 0.0 && link.rng.gen_bool(self.cfg.duplicate);
            let delay = if self.cfg.reorder > 0.0 && link.rng.gen_bool(self.cfg.reorder) {
                let jitter_ns = (self.cfg.jitter.as_nanos() as u64).max(1);
                Some(Duration::from_nanos(link.rng.next_u64() % jitter_ns))
            } else {
                None
            };
            (down, drop, dup, delay)
        };
        if down {
            self.link_down_drops.fetch_add(1, Ordering::Relaxed);
            return SendStatus::Sent; // swallowed by the dead link
        }
        if drop {
            self.dropped_data.fetch_add(1, Ordering::Relaxed);
            return SendStatus::Sent;
        }
        if dup {
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            // Best-effort second copy; losing it is itself a valid fault.
            let _ = self.inner.send_data(pkt.clone(), Duration::ZERO);
        }
        if let Some(extra) = delay {
            self.delayed_count.fetch_add(1, Ordering::Relaxed);
            let dest = pkt.dest as usize;
            self.delayed[dest].lock().unwrap().push(Delayed {
                due: Instant::now() + extra,
                id: self.next_delay_id.fetch_add(1, Ordering::Relaxed),
                pkt,
            });
            return SendStatus::Sent;
        }
        self.inner.send_data(pkt, timeout)
    }

    fn recv_data(&self, node: NodeId, timeout: Duration) -> RecvStatus<Packet> {
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            let (due, next_due) = self.pop_delayed(node, now, false);
            if let Some(pkt) = due {
                return RecvStatus::Msg(pkt);
            }
            let mut wait = deadline.saturating_duration_since(now);
            if let Some(nd) = next_due {
                wait = wait.min(nd.saturating_duration_since(now));
            }
            match self.inner.recv_data(node, wait) {
                RecvStatus::Msg(pkt) => return RecvStatus::Msg(pkt),
                RecvStatus::Closed => {
                    // Fabric closed: flush held-back packets immediately so
                    // nothing accepted before close() is lost.
                    return match self.pop_delayed(node, now, true).0 {
                        Some(pkt) => RecvStatus::Msg(pkt),
                        None => RecvStatus::Closed,
                    };
                }
                RecvStatus::TimedOut => {
                    if Instant::now() >= deadline {
                        // One last chance for a packet that came due during
                        // the inner wait.
                        return match self.pop_delayed(node, Instant::now(), false).0 {
                            Some(pkt) => RecvStatus::Msg(pkt),
                            None => RecvStatus::TimedOut,
                        };
                    }
                }
            }
        }
    }

    fn send_ack(&self, ack: Ack) {
        if ack.src != ack.dest {
            let (down, drop) = {
                let mut link = self.link(ack.src, ack.dest).lock().unwrap();
                let down = self.link_down(link.down_phase);
                let drop = self.cfg.drop > 0.0 && link.rng.gen_bool(self.cfg.drop);
                (down, drop)
            };
            if down {
                self.link_down_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if drop {
                self.dropped_acks.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.inner.send_ack(ack);
    }

    fn try_recv_ack(&self, node: NodeId, lane: u32) -> Option<Ack> {
        self.inner.try_recv_ack(node, lane)
    }

    fn send_heartbeat(&self, hb: Heartbeat) {
        if hb.src != hb.dest {
            let (down, drop) = {
                let mut link = self.link(hb.src, hb.dest).lock().unwrap();
                let down = self.link_down(link.down_phase);
                let drop = self.cfg.drop > 0.0 && link.rng.gen_bool(self.cfg.drop);
                (down, drop)
            };
            // Either way the beat dies silently — heartbeats are the
            // least reliable traffic class by design.
            if down {
                self.link_down_drops.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if drop {
                self.dropped_heartbeats.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.inner.send_heartbeat(hb);
    }

    fn try_recv_heartbeat(&self, node: NodeId) -> Option<Heartbeat> {
        self.inner.try_recv_heartbeat(node)
    }

    fn close(&self) {
        self.inner.close();
    }

    fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }

    fn fault_stats(&self) -> FaultStats {
        let inner = self.inner.fault_stats();
        FaultStats {
            dropped_data: self.dropped_data.load(Ordering::Relaxed),
            dropped_acks: self.dropped_acks.load(Ordering::Relaxed) + inner.dropped_acks,
            dropped_heartbeats: self.dropped_heartbeats.load(Ordering::Relaxed)
                + inner.dropped_heartbeats,
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delayed: self.delayed_count.load(Ordering::Relaxed),
            link_down_drops: self.link_down_drops.load(Ordering::Relaxed),
        }
    }

    fn data_depths(&self) -> Vec<usize> {
        let mut depths = self.inner.data_depths();
        for (d, heap) in self.delayed.iter().enumerate() {
            depths[d] += heap.lock().unwrap().len();
        }
        depths
    }

    fn ack_depths(&self, node: crate::NodeId) -> usize {
        // Ack faults are drops, never delays: everything buffered lives
        // in the inner fabric's mailboxes.
        self.inner.ack_depths(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChannelTransport;

    fn pkt(src: u32, dest: u32, tag: u64) -> Packet {
        Packet::from_words(src, dest, &[tag])
    }

    const T: Duration = Duration::from_millis(300);

    #[test]
    fn no_faults_is_transparent() {
        // Capacity must cover all 20 sends: nothing drains until the
        // send loop finishes.
        let t = UnreliableTransport::new(ChannelTransport::new(2, 1, 32), FaultConfig::quiet(1));
        for i in 0..20 {
            assert_eq!(t.send_data(pkt(0, 1, i), T), SendStatus::Sent);
        }
        for i in 0..20 {
            match t.recv_data(1, T) {
                RecvStatus::Msg(p) => assert_eq!(p.words(), vec![i]),
                other => panic!("{other:?}"),
            }
        }
        assert!(t.fault_stats().is_clean());
    }

    #[test]
    fn drops_are_counted_and_deterministic() {
        let count_drops = |seed| {
            let t = UnreliableTransport::new(
                ChannelTransport::new(2, 1, 2048),
                FaultConfig::drop_only(seed, 0.2),
            );
            for i in 0..1000 {
                t.send_data(pkt(0, 1, i), T);
            }
            t.fault_stats().dropped_data
        };
        let a = count_drops(7);
        assert_eq!(a, count_drops(7), "same seed, same faults");
        assert!((100..350).contains(&a), "~20% of 1000, got {a}");
        assert_ne!(a, count_drops(8), "different seed, different pattern");
    }

    #[test]
    fn duplicates_deliver_twice() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 2048),
            FaultConfig { duplicate: 1.0, ..FaultConfig::quiet(3) },
        );
        for i in 0..10 {
            t.send_data(pkt(0, 1, i), T);
        }
        let mut got = 0;
        while let RecvStatus::Msg(_) = t.recv_data(1, Duration::from_millis(10)) {
            got += 1;
        }
        assert_eq!(got, 20);
        assert_eq!(t.fault_stats().duplicated, 10);
    }

    #[test]
    fn reordering_actually_reorders() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 4096),
            FaultConfig {
                reorder: 0.5,
                jitter: Duration::from_millis(2),
                ..FaultConfig::quiet(11)
            },
        );
        for i in 0..200 {
            t.send_data(pkt(0, 1, i), T);
        }
        let mut got = Vec::new();
        while let RecvStatus::Msg(p) = t.recv_data(1, Duration::from_millis(20)) {
            got.push(p.words()[0]);
        }
        assert_eq!(got.len(), 200, "nothing lost, only reordered");
        assert!(got.windows(2).any(|w| w[0] > w[1]), "some inversion exists");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn loopback_is_never_faulted() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 2048),
            FaultConfig { drop: 1.0, ..FaultConfig::quiet(5) },
        );
        for i in 0..50 {
            t.send_data(pkt(0, 0, i), T);
        }
        for i in 0..50 {
            match t.recv_data(0, T) {
                RecvStatus::Msg(p) => assert_eq!(p.words(), vec![i]),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(t.fault_stats().dropped_data, 0);
    }

    #[test]
    fn close_flushes_delayed_packets() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 16),
            FaultConfig {
                reorder: 1.0,
                jitter: Duration::from_secs(5), // far beyond the test timeout
                ..FaultConfig::quiet(9)
            },
        );
        t.send_data(pkt(0, 1, 42), T);
        t.close();
        match t.recv_data(1, Duration::from_millis(50)) {
            RecvStatus::Msg(p) => assert_eq!(p.words(), vec![42]),
            other => panic!("delayed packet lost at close: {other:?}"),
        }
        assert!(matches!(t.recv_data(1, Duration::from_millis(5)), RecvStatus::Closed));
    }

    #[test]
    fn heartbeats_are_faulted_like_everything_else() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 16),
            FaultConfig { drop: 1.0, ..FaultConfig::quiet(17) },
        );
        for seq in 0..25 {
            t.send_heartbeat(Heartbeat { src: 0, dest: 1, seq });
        }
        assert_eq!(t.try_recv_heartbeat(1), None, "every beat dropped");
        assert_eq!(t.fault_stats().dropped_heartbeats, 25);
        // Loopback beats (a node observing itself) are never faulted.
        t.send_heartbeat(Heartbeat { src: 0, dest: 0, seq: 1 });
        assert_eq!(t.try_recv_heartbeat(0), Some(Heartbeat { src: 0, dest: 0, seq: 1 }));
    }

    #[test]
    fn link_down_windows_swallow_traffic() {
        let t = UnreliableTransport::new(
            ChannelTransport::new(2, 1, 4096),
            FaultConfig {
                link_down_period: Duration::from_millis(10),
                link_down_len: Duration::from_millis(5),
                ..FaultConfig::quiet(13)
            },
        );
        // Spread sends across several periods: some must hit a window.
        for i in 0..40 {
            t.send_data(pkt(0, 1, i), T);
            std::thread::sleep(Duration::from_millis(1));
        }
        let drops = t.fault_stats().link_down_drops;
        assert!(drops > 0, "no send hit a down window");
        assert!(drops < 40, "link was never up");
    }
}
