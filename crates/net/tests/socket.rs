//! In-process tests for the socket transport: handshake, routing on
//! every plane, version rejection, bounded redial backoff, and
//! stream-reassembly at every split offset.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gravel_net::{
    Ack, Heartbeat, PeerEvent, ReconnectConfig, RecvStatus, SocketAddrSpec, SocketConfig,
    SocketTransport, StreamDecoder, Transport, MAX_FRAME_BYTES,
};
use gravel_pgas::frame::{crc32c, open_reject, seal_control, seal_hello, HelloInfo, RejectReason};
use gravel_pgas::{seal_ack, Packet, WireIntegrity, HEADER_BYTES};
use proptest::prelude::*;

fn temp_path(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("gravel-sock-{}-{tag}-{n}", std::process::id()))
}

fn uds_pair(tag: &str) -> Vec<SocketAddrSpec> {
    vec![
        SocketAddrSpec::Uds(temp_path(&format!("{tag}-0"))),
        SocketAddrSpec::Uds(temp_path(&format!("{tag}-1"))),
    ]
}

fn fast_reconnect() -> ReconnectConfig {
    ReconnectConfig {
        base: Duration::from_millis(5),
        max: Duration::from_millis(50),
        handshake_timeout: Duration::from_secs(2),
    }
}

fn spawn_pair(tag: &str) -> (Arc<SocketTransport>, Arc<SocketTransport>) {
    let addrs = uds_pair(tag);
    let mut cfg0 = SocketConfig::new(0, addrs.clone());
    cfg0.reconnect = fast_reconnect();
    let mut cfg1 = SocketConfig::new(1, addrs);
    cfg1.reconnect = fast_reconnect();
    let t0 = SocketTransport::spawn(cfg0).expect("bind node 0");
    let t1 = SocketTransport::spawn(cfg1).expect("bind node 1");
    assert!(t0.wait_connected(1, Duration::from_secs(5)), "0 sees 1");
    assert!(t1.wait_connected(0, Duration::from_secs(5)), "1 sees 0");
    (t0, t1)
}

fn poll<T>(deadline: Duration, mut f: impl FnMut() -> Option<T>) -> T {
    let until = Instant::now() + deadline;
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < until, "poll timed out");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn uds_roundtrip_all_planes() {
    let (t0, t1) = spawn_pair("roundtrip");

    // Data plane: a sealed packet crosses the socket and opens clean.
    let mut pkt = Packet::from_words(1, 0, &[10, 20, 30, 40]);
    pkt.seq = 7;
    let frame = pkt.seal(3, WireIntegrity::Crc32c);
    assert_eq!(
        t1.send_data(frame, Duration::from_secs(1)),
        gravel_net::SendStatus::Sent
    );
    let got = poll(Duration::from_secs(5), || {
        match t0.recv_data(0, Duration::from_millis(50)) {
            RecvStatus::Msg(f) => Some(f),
            _ => None,
        }
    });
    let back = got.open(WireIntegrity::Crc32c).expect("clean frame");
    // `born` is re-stamped at the receiving endpoint (it never crosses
    // a real wire), so compare the protocol fields.
    assert_eq!(
        (back.src, back.dest, back.lane, back.seq, back.words()),
        (pkt.src, pkt.dest, pkt.lane, pkt.seq, pkt.words())
    );

    // Ack plane, node 0 -> node 1 lane 0.
    let ack = Ack { src: 0, dest: 1, lane: 0, cum_seq: 7 };
    t0.send_ack(ack.seal(3, WireIntegrity::Crc32c));
    let af = poll(Duration::from_secs(5), || t1.try_recv_ack(1, 0));
    assert_eq!(af.open(WireIntegrity::Crc32c).unwrap(), ack);

    // Heartbeat plane (sealed + verified over the wire).
    t0.send_heartbeat(Heartbeat { src: 0, dest: 1, seq: 42 });
    let hb = poll(Duration::from_secs(5), || t1.try_recv_heartbeat(1));
    assert_eq!(hb, Heartbeat { src: 0, dest: 1, seq: 42 });

    // Control plane, including loopback.
    assert!(t1.send_control(0, &[9, 8, 7]));
    let msg = poll(Duration::from_secs(5), || match t0.recv_control(Duration::from_millis(50)) {
        RecvStatus::Msg(m) => Some(m),
        _ => None,
    });
    assert_eq!((msg.src, msg.words.as_slice()), (1, &[9u64, 8, 7][..]));
    assert!(t0.send_control(0, &[5]));
    let lo = poll(Duration::from_secs(5), || match t0.recv_control(Duration::from_millis(50)) {
        RecvStatus::Msg(m) => Some(m),
        _ => None,
    });
    assert_eq!((lo.src, lo.words.as_slice()), (0, &[5u64][..]));

    // Loopback data obeys the same bounded-ingress semantics.
    let self_pkt = Packet::from_words(0, 0, &[1, 2, 3, 4]);
    let self_frame = self_pkt.seal(0, WireIntegrity::Crc32c);
    t0.send_data(self_frame, Duration::from_secs(1));
    let lo = poll(Duration::from_secs(5), || {
        match t0.recv_data(0, Duration::from_millis(50)) {
            RecvStatus::Msg(f) => Some(f),
            _ => None,
        }
    });
    assert_eq!(lo.open(WireIntegrity::Crc32c).unwrap(), self_pkt);

    let s0 = t0.stats();
    assert_eq!(s0.handshakes, 1);
    assert_eq!(s0.reconnects, 0);
    assert_eq!(s0.handshake_rejects, 0);
    t0.close();
    t1.close();
}

#[test]
fn tcp_behind_the_same_code() {
    // Node 0 binds an ephemeral port; node 1 (the dialer for the pair)
    // learns it before spawning.
    let mut cfg0 = SocketConfig::new(
        0,
        vec![
            SocketAddrSpec::Tcp("127.0.0.1:0".into()),
            SocketAddrSpec::Tcp("127.0.0.1:0".into()),
        ],
    );
    cfg0.reconnect = fast_reconnect();
    let t0 = SocketTransport::spawn(cfg0).expect("bind tcp node 0");
    let port = t0.tcp_port();
    assert_ne!(port, 0);
    let mut cfg1 = SocketConfig::new(
        1,
        vec![
            SocketAddrSpec::Tcp(format!("127.0.0.1:{port}")),
            SocketAddrSpec::Tcp("127.0.0.1:0".into()),
        ],
    );
    cfg1.reconnect = fast_reconnect();
    let t1 = SocketTransport::spawn(cfg1).expect("bind tcp node 1");
    assert!(t1.wait_connected(0, Duration::from_secs(5)));

    let pkt = Packet::from_words(1, 0, &[0xdead, 0xbeef, 2, 2]);
    t1.send_data(pkt.seal(0, WireIntegrity::Crc32c), Duration::from_secs(1));
    let got = poll(Duration::from_secs(5), || {
        match t0.recv_data(0, Duration::from_millis(50)) {
            RecvStatus::Msg(f) => Some(f),
            _ => None,
        }
    });
    let back = got.open(WireIntegrity::Crc32c).unwrap();
    assert_eq!(
        (back.src, back.dest, back.seq, back.words()),
        (pkt.src, pkt.dest, pkt.seq, pkt.words())
    );
    t0.close();
    t1.close();
}

/// Satellite: a HELLO carrying a mismatched wire version gets a
/// counted, logged REJECT frame back — never a silent hang.
#[test]
fn version_mismatch_is_rejected_with_a_frame() {
    let path = temp_path("reject-listener");
    let addrs = vec![
        SocketAddrSpec::Uds(path.clone()),
        SocketAddrSpec::Uds(temp_path("reject-ghost")),
    ];
    let t0 = SocketTransport::spawn(SocketConfig::new(0, addrs)).expect("bind");

    // Craft a HELLO from "node 1" and stamp an alien wire version,
    // re-sealing the CRC so only the version check can fail.
    let hello = seal_hello(
        &HelloInfo { node: 1, peer: 0, nodes: 2, lanes: 1, epoch: 0 },
        WireIntegrity::Crc32c,
    );
    let mut alien = hello.to_vec();
    alien[4] = 0x2a;
    alien[5] = 0;
    let tail = alien.len() - 4;
    let crc = crc32c(&alien[..tail]);
    alien[tail..].copy_from_slice(&crc.to_le_bytes());

    let mut raw = UnixStream::connect(&path).expect("dial listener");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(&(alien.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&alien).unwrap();

    let mut len = [0u8; 4];
    raw.read_exact(&mut len).expect("a reply frame, not a hang");
    let mut reply = vec![0u8; u32::from_le_bytes(len) as usize];
    raw.read_exact(&mut reply).unwrap();
    let (src, reason, detail) = open_reject(&reply, WireIntegrity::Crc32c).expect("REJECT");
    assert_eq!(src, 0);
    assert_eq!(reason, RejectReason::Version);
    assert_eq!(detail, 0x2a);

    // The stream is closed after the rejection.
    let n = raw.read(&mut len).unwrap_or(0);
    assert_eq!(n, 0, "rejecting side closes the stream");
    assert_eq!(t0.stats().handshake_rejects, 1);

    // Garbage that is not a HELLO at all is rejected as Protocol.
    let mut raw = UnixStream::connect(&path).expect("dial again");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let junk = [0x13u8; 64];
    raw.write_all(&(junk.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&junk).unwrap();
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).expect("a reply frame");
    let mut reply = vec![0u8; u32::from_le_bytes(len) as usize];
    raw.read_exact(&mut reply).unwrap();
    let (_, reason, _) = open_reject(&reply, WireIntegrity::Crc32c).expect("REJECT");
    assert_eq!(reason, RejectReason::Protocol);
    assert_eq!(t0.stats().handshake_rejects, 2);
    t0.close();
}

/// A dialer that keeps getting connection-refused backs off
/// exponentially (with jitter) instead of storming, and heals the
/// moment the listener appears — then survives a listener death and
/// counts the reconnect.
#[test]
fn redial_backoff_is_bounded_and_heals() {
    let addrs = uds_pair("backoff");
    let mut cfg1 = SocketConfig::new(1, addrs.clone());
    cfg1.reconnect = ReconnectConfig {
        base: Duration::from_millis(10),
        max: Duration::from_millis(100),
        handshake_timeout: Duration::from_secs(2),
    };
    // Node 1 dials node 0, which does not exist yet.
    let t1 = SocketTransport::spawn(cfg1).expect("bind node 1");
    std::thread::sleep(Duration::from_millis(600));
    let failures = t1.stats().connect_failures;
    // Pure 10ms polling would rack up ~60 failures in 600ms; the
    // exponential schedule (10+15+20+30+... capped at 100+jitter)
    // keeps it far lower while still retrying promptly.
    assert!(failures >= 2, "dialer must keep trying (got {failures})");
    assert!(failures <= 20, "backoff must bound the storm (got {failures})");

    // The listener appears; the link heals without intervention.
    let mut cfg0 = SocketConfig::new(0, addrs.clone());
    cfg0.reconnect = fast_reconnect();
    let t0 = SocketTransport::spawn(cfg0).expect("bind node 0");
    assert!(t1.wait_connected(0, Duration::from_secs(5)), "link heals");
    assert_eq!(t1.stats().reconnects, 0, "first connect is not a reconnect");
    let up = poll(Duration::from_secs(5), || t1.poll_event(Duration::from_millis(20)));
    assert_eq!(up, PeerEvent::Up(0));

    // Kill the listener end; the dialer notices, redials, and the
    // replacement handshake counts as a reconnect.
    t0.close();
    drop(t0);
    let down = poll(Duration::from_secs(5), || {
        t1.poll_event(Duration::from_millis(20)).filter(|e| matches!(e, PeerEvent::Down(0)))
    });
    assert_eq!(down, PeerEvent::Down(0));
    let mut cfg0b = SocketConfig::new(0, addrs);
    cfg0b.reconnect = fast_reconnect();
    let t0b = SocketTransport::spawn(cfg0b).expect("rebind node 0");
    assert!(t1.wait_connected(0, Duration::from_secs(5)), "link re-heals");
    assert_eq!(t1.stats().reconnects, 1);
    t0b.close();
    t1.close();
}

/// Satellite: stream reassembly split at *every* byte offset. A valid
/// multi-frame byte stream cut into two arbitrary reads must reassemble
/// into the identical frame sequence. The stream mixes every plane the
/// wire carries, including the request-reply kinds (GET and AM_REPLY),
/// so a reply split across two kernel reads is covered at each offset.
#[test]
fn reassembly_survives_a_split_at_every_offset() {
    let mut stream = Vec::new();
    let mut frames = Vec::new();
    let pkt = Packet::from_words(1, 0, &[11, 22, 33, 44, 55, 66, 77, 88]);
    let get = Packet::from_words(1, 0, &gravel_gq::Message::get(0, 5, 0xAB, 250).encode());
    let rep = Packet::from_words(0, 1, &gravel_gq::Message::reply(1, 0xAB, 0x5EED).encode());
    for bytes in [
        pkt.seal(1, WireIntegrity::Crc32c).bytes.to_vec(),
        get.seal(1, WireIntegrity::Crc32c).bytes.to_vec(),
        rep.seal(1, WireIntegrity::Crc32c).bytes.to_vec(),
        seal_ack(0, 1, 0, 1, 3, WireIntegrity::Crc32c).to_vec(),
        seal_control(1, 0, 2, &[1, 2, 3], WireIntegrity::Crc32c).to_vec(),
    ] {
        stream.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        stream.extend_from_slice(&bytes);
        frames.push(bytes);
    }
    for cut in 0..=stream.len() {
        let mut dec = StreamDecoder::new(MAX_FRAME_BYTES);
        let mut got = Vec::new();
        for part in [&stream[..cut], &stream[cut..]] {
            dec.push(part);
            while let Some(f) = dec.next_frame().expect("valid stream") {
                got.push(f);
            }
        }
        assert_eq!(got, frames, "split at byte {cut}");
        assert_eq!(dec.pending(), 0, "split at byte {cut}");
    }
    // The reassembled request-reply frames still advertise their kind.
    let kinds: Vec<gravel_pgas::FrameKind> = frames
        .iter()
        .filter_map(|f| gravel_pgas::open_data_frame(f, WireIntegrity::Crc32c).ok())
        .map(|h| h.kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            gravel_pgas::FrameKind::Data,
            gravel_pgas::FrameKind::Get,
            gravel_pgas::FrameKind::AmReply
        ]
    );
}

/// End-to-end on a real socket: GET and AM_REPLY frames dripped through
/// a raw stream one byte per write — after a genuine HELLO handshake —
/// must reassemble and route to the data plane intact. This is the
/// requester's view of a server's reply split at arbitrary kernel read
/// boundaries.
#[test]
fn reply_frames_split_at_read_boundaries_reach_the_data_plane() {
    let path = temp_path("reply-split-listener");
    let addrs = vec![
        SocketAddrSpec::Uds(path.clone()),
        SocketAddrSpec::Uds(temp_path("reply-split-ghost")),
    ];
    let mut cfg = SocketConfig::new(0, addrs);
    cfg.lanes = 2; // lane 0 = bulk, lane 1 = request-reply
    let t0 = SocketTransport::spawn(cfg).expect("bind");

    // Handshake as "node 1" over a raw stream so every subsequent write
    // boundary is under the test's control.
    let mut raw = UnixStream::connect(&path).expect("dial listener");
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let hello = seal_hello(
        &HelloInfo { node: 1, peer: 0, nodes: 2, lanes: 2, epoch: 0 },
        WireIntegrity::Crc32c,
    );
    raw.write_all(&(hello.len() as u32).to_le_bytes()).unwrap();
    raw.write_all(&hello).unwrap();
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).expect("listener answers with its own HELLO");
    let mut answer = vec![0u8; u32::from_le_bytes(len) as usize];
    raw.read_exact(&mut answer).unwrap();

    // A GET request and the AM_REPLY answering it, on the RPC lane.
    let msgs = [
        gravel_gq::Message::get(0, 5, 0xAB, 250),
        gravel_gq::Message::reply(0, 0xAB, 0x5EED),
    ];
    let mut sent = Vec::new();
    for (seq, msg) in msgs.iter().enumerate() {
        let mut pkt = Packet::from_words(1, 0, &msg.encode());
        pkt.lane = 1;
        pkt.seq = seq as u64;
        sent.push(pkt.seal(9, WireIntegrity::Crc32c));
    }
    for frame in &sent {
        raw.write_all(&(frame.bytes.len() as u32).to_le_bytes()).unwrap();
        for b in frame.bytes.iter() {
            raw.write_all(std::slice::from_ref(b)).unwrap();
        }
    }

    for (i, msg) in msgs.iter().enumerate() {
        let got = poll(Duration::from_secs(5), || {
            match t0.recv_data(0, Duration::from_millis(50)) {
                RecvStatus::Msg(f) => Some(f),
                _ => None,
            }
        });
        let head =
            gravel_pgas::open_data_frame(&got.bytes, WireIntegrity::Crc32c).expect("clean frame");
        let want = if i == 0 { gravel_pgas::FrameKind::Get } else { gravel_pgas::FrameKind::AmReply };
        assert_eq!(head.kind, want, "frame {i} kind survived the byte-dripped stream");
        let back = got.open(WireIntegrity::Crc32c).expect("opens on the data plane");
        assert_eq!((back.lane, back.seq), (1, i as u64));
        let words: [u64; gravel_gq::MSG_ROWS] =
            back.words().try_into().expect("one message per RPC packet");
        assert_eq!(gravel_gq::Message::decode(words), Some(*msg));
    }
    t0.close();
}

/// An oversized length prefix is a framing error, not an allocation.
#[test]
fn oversized_length_prefix_is_rejected() {
    let mut dec = StreamDecoder::new(1024);
    dec.push(&(4096u32).to_le_bytes());
    dec.push(&[0u8; 8]);
    assert_eq!(dec.next_frame(), Err(4096));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("GRAVEL_FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
    ))]

    /// Random chunkings of a random valid frame stream always
    /// reassemble to the identical frame sequence, regardless of how
    /// the reads were sliced.
    #[test]
    fn reassembly_is_chunking_invariant(
        seqs in prop::collection::vec(any::<u64>(), 1..8),
        cuts in prop::collection::vec(1usize..64, 0..24),
    ) {
        let mut stream = Vec::new();
        let mut frames = Vec::new();
        for (i, &seq) in seqs.iter().enumerate() {
            let mut pkt = Packet::from_words(1, 0, &[seq, i as u64, 0, 0]);
            pkt.seq = seq;
            let bytes = pkt.seal(0, WireIntegrity::Crc32c).bytes.to_vec();
            stream.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            stream.extend_from_slice(&bytes);
            frames.push(bytes);
        }
        let mut dec = StreamDecoder::new(MAX_FRAME_BYTES);
        let mut got = Vec::new();
        let mut at = 0;
        for &c in &cuts {
            let end = (at + c).min(stream.len());
            dec.push(&stream[at..end]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
            at = end;
        }
        dec.push(&stream[at..]);
        while let Some(f) = dec.next_frame().unwrap() {
            got.push(f);
        }
        prop_assert_eq!(got, frames);
    }

    /// Arbitrary garbage fed to the decoder never panics: it either
    /// yields (garbage) frames, waits for more bytes, or flags an
    /// oversized prefix. Whatever it yields, the frame router's header
    /// sanity floor (HEADER_BYTES) is what protects downstream.
    #[test]
    fn decoder_never_panics_on_garbage(
        junk in prop::collection::vec(any::<u8>(), 0..256),
        cut in any::<usize>(),
    ) {
        let mut dec = StreamDecoder::new(4096);
        let cut = if junk.is_empty() { 0 } else { cut % junk.len() };
        dec.push(&junk[..cut]);
        let _ = dec.next_frame();
        dec.push(&junk[cut..]);
        while let Ok(Some(f)) = dec.next_frame() {
            // Frames shorter than a header would be counted as garbage
            // by the router; longer ones must still never panic the
            // openers.
            if f.len() >= HEADER_BYTES {
                let _ = gravel_pgas::open_frame(
                    &f,
                    gravel_pgas::FrameKind::Data,
                    WireIntegrity::Crc32c,
                );
            }
        }
    }
}

#[test]
fn link_chaos_partitions_and_delays_the_socket_mesh() {
    use gravel_net::{LinkFault, LinkSchedule};
    let addrs = uds_pair("chaos");
    // Node 0 gets a schedule: partition from 0 for a window, then a
    // permanent delay on 0 -> 1. Node 1 runs clean (asymmetric view,
    // like a real mid-network failure near node 0's rack).
    let sched = Arc::new(LinkSchedule::new(
        5,
        vec![
            LinkFault::Partition {
                island: vec![0],
                from: Duration::ZERO,
                until: Duration::from_millis(400),
            },
            LinkFault::Delay {
                src: 0,
                dest: 1,
                base: Duration::from_millis(10),
                jitter: Duration::from_millis(5),
            },
        ],
    ));
    let mut cfg0 = SocketConfig::new(0, addrs.clone());
    cfg0.reconnect = fast_reconnect();
    cfg0.link_chaos = Some(Arc::clone(&sched));
    let mut cfg1 = SocketConfig::new(1, addrs);
    cfg1.reconnect = fast_reconnect();
    let t0 = SocketTransport::spawn(cfg0).expect("bind node 0");
    let t1 = SocketTransport::spawn(cfg1).expect("bind node 1");
    assert!(t0.wait_connected(1, Duration::from_secs(5)));
    assert!(t1.wait_connected(0, Duration::from_secs(5)));

    // During the window every outbound plane from 0 is swallowed —
    // the stream stays up, the bytes just never arrive.
    t0.send_heartbeat(Heartbeat { src: 0, dest: 1, seq: 1 });
    assert!(t0.send_control(1, &[1, 2, 3]), "partition looks like a sent frame");
    let pkt = Packet::from_words(0, 1, &[77]);
    t0.send_data(pkt.seal(0, WireIntegrity::Crc32c), Duration::from_secs(1));
    // The reverse direction (1 -> 0) is clean: node 1 has no schedule.
    t1.send_heartbeat(Heartbeat { src: 1, dest: 0, seq: 9 });
    let hb = poll(Duration::from_secs(5), || t0.try_recv_heartbeat(0));
    assert_eq!(hb.seq, 9);
    assert!(t1.try_recv_heartbeat(1).is_none(), "nothing crossed 0 -> 1");
    assert!(matches!(t1.recv_control(Duration::from_millis(50)), RecvStatus::TimedOut));
    let s = t0.stats();
    assert!(s.partition_drops >= 3, "all three planes were swallowed: {s:?}");

    // After the window heals, frames flow again — via the delay fault,
    // so they arrive late but intact and in order.
    std::thread::sleep(Duration::from_millis(450));
    let sent_at = Instant::now();
    assert!(t0.send_control(1, &[4, 5, 6]));
    let msg = poll(Duration::from_secs(5), || match t1.recv_control(Duration::from_millis(20)) {
        RecvStatus::Msg(m) => Some(m),
        _ => None,
    });
    assert_eq!(msg.words, vec![4, 5, 6]);
    assert!(
        sent_at.elapsed() >= Duration::from_millis(10),
        "the healed link still carries the delay fault"
    );
    assert!(t0.stats().chaos_delayed >= 1);
    t0.close();
    t1.close();
}
