//! The PGAS API kernels program against.
//!
//! [`GravelCtx`] wraps a work-group context with one node's Gravel state
//! and exposes the paper's network operations (§6): `shmem_put`,
//! `shmem_inc`, and active messages. Calls are *per-lane*: every active
//! lane contributes one operation with its own destination/address/value,
//! and the whole work-group's messages are offloaded through a single
//! work-group-granularity queue reservation. This is what makes Gravel's
//! GUPS kernel one line (Fig. 4b) — lanes never coordinate explicitly.
//!
//! Routing policy, as evaluated in the paper:
//! * local PUT → executed directly by the GPU as a store;
//! * remote PUT → offloaded to the aggregator;
//! * INC and active messages → *always* offloaded (even local), because
//!   Gravel serializes atomics through the network thread
//!   (configurable: [`GravelConfig::serialize_atomics`](crate::GravelConfig)).

use std::sync::Arc;
use std::time::Instant;

use gravel_gq::{Message, ReplySink, RpcFailure};
use gravel_simt::{LaneVec, Mask, WgCtx};

use crate::node::NodeShared;

/// Per-work-group handle combining SIMT execution state with the node's
/// Gravel runtime state.
pub struct GravelCtx<'a> {
    /// The SIMT work-group context (masks, collectives, counters).
    pub wg: &'a mut WgCtx,
    node: &'a NodeShared,
    serialize_atomics: bool,
}

impl<'a> GravelCtx<'a> {
    /// Bind a work-group context to a node.
    pub fn new(wg: &'a mut WgCtx, node: &'a NodeShared, serialize_atomics: bool) -> Self {
        GravelCtx {
            wg,
            node,
            serialize_atomics,
        }
    }

    /// This node's id.
    pub fn my_node(&self) -> u32 {
        self.node.id
    }

    /// Cluster size.
    pub fn nodes(&self) -> usize {
        self.node.nodes
    }

    /// Read-only access to the local symmetric heap (PGAS loads of local
    /// data are plain GPU loads).
    pub fn heap(&self) -> &gravel_pgas::SymmetricHeap {
        &self.node.heap
    }

    /// Run `body` with the active mask restricted to `mask ∩ active` —
    /// the SIMT `if` for PGAS code (kernels use it to mask off
    /// out-of-range tail lanes and divergent branches).
    pub fn masked(&mut self, mask: &Mask, body: impl FnOnce(&mut Self)) {
        let m = self.wg.active().and(mask);
        if m.is_empty() {
            return;
        }
        self.wg.push_mask(m);
        body(self);
        self.wg.pop_mask();
    }

    fn local_mask(&self, dests: &LaneVec<u32>) -> Mask {
        let me = self.node.id;
        self.wg
            .active()
            .and(&Mask::from_fn(self.wg.wg_size(), |l| dests.get(l) == me))
    }

    fn offload(&mut self, mask: &Mask, dests: &LaneVec<u32>, make: impl Fn(usize) -> Message) {
        if mask.is_empty() {
            return;
        }
        let me = self.node.id;
        let count = mask.count() as u64;
        let mut local = 0u64;
        for lane in mask.iter() {
            if dests.get(lane) == me {
                local += 1;
            }
        }
        let node = self.node;
        let lanes = node.queue.lanes();
        if lanes == 1 {
            let mask = mask.clone();
            self.wg.with_mask(mask, |wg| {
                node.queue
                    .ring(0)
                    .wg_produce(wg, |lane, row| make(lane).encode()[row]);
            });
        } else {
            // Destination-sharded rings: split the work-group by shard so
            // each destination's traffic lands in its owning lane's ring.
            // One reservation per (work-group, shard) — still work-group
            // granularity within each shard. The routing mask is read
            // exactly once for the whole split: the lane governor may
            // move it concurrently, and re-reading it per shard pass
            // could route one lane into two shards (a duplicate send)
            // or into none (a lost message).
            //
            // SIMT producers drive the governor like host producers do
            // (see `NodeShared::host_send_batch`): on an oversubscribed
            // host the producer sees a saturated collapsed ring long
            // before the descheduled consumer would. Deciding *before*
            // reading the mask matters twice over — a full ring blocks
            // `wg_produce`, and a blocked producer can't expand the
            // mask it is blocked on; and deciding first lets this very
            // offload route across the widened mask. Cadence-gated, so
            // this is one relaxed load per offload in the common case.
            if let Some(gov) = &node.governor {
                gov.decide(&node.queue, Instant::now());
            }
            let active = node.queue.active_lanes();
            if active == 1 {
                // Collapsed mask: everything routes to lane 0, no
                // split to compute.
                let mask = mask.clone();
                self.wg.with_mask(mask, |wg| {
                    node.queue
                        .ring(0)
                        .wg_produce(wg, |lane, row| make(lane).encode()[row]);
                });
            } else {
                // `dest % active` never reaches a parked shard, so the
                // split only visits the active prefix.
                for shard in 0..active {
                    let m = mask.and(&Mask::from_fn(self.wg.wg_size(), |l| {
                        dests.get(l) as usize % active == shard
                    }));
                    if m.is_empty() {
                        continue;
                    }
                    self.wg.with_mask(m, |wg| {
                        node.queue
                            .ring(shard)
                            .wg_produce(wg, |lane, row| make(lane).encode()[row]);
                    });
                }
            }
        }
        node.note_offloaded(count);
        node.local_routed.add(local);
        node.remote_routed.add(count - local);
    }

    /// PGAS store: each active lane writes `vals[lane]` to
    /// `addrs[lane]` on node `dests[lane]`.
    pub fn shmem_put(&mut self, dests: &LaneVec<u32>, addrs: &LaneVec<u64>, vals: &LaneVec<u64>) {
        // Local lanes: the GPU stores directly ("A local PUT is executed
        // by the GPU directly as a store", §7.1).
        let local = self.local_mask(dests);
        if !local.is_empty() {
            let heap = &self.node.heap;
            let base = heap as *const _ as u64;
            let local2 = local.clone();
            self.wg.with_mask(local2, |wg| {
                let hw_addrs =
                    LaneVec::from_fn(wg.wg_size(), |l| base.wrapping_add(addrs.get(l) * 8));
                wg.mem_access(&hw_addrs, 8);
                for lane in wg.active().clone().iter() {
                    heap.store(addrs.get(lane), vals.get(lane));
                }
            });
            self.node.local_direct.add(local.count() as u64);
        }
        // Remote lanes: offload.
        let remote = self.wg.active().and_not(&local);
        self.offload(&remote, dests, |lane| {
            Message::put(dests.get(lane), addrs.get(lane), vals.get(lane))
        });
    }

    /// PGAS atomic increment: each active lane adds `vals[lane]` to
    /// `addrs[lane]` on node `dests[lane]`.
    pub fn shmem_inc(&mut self, dests: &LaneVec<u32>, addrs: &LaneVec<u64>, vals: &LaneVec<u64>) {
        if self.serialize_atomics {
            // Everything — local included — routes through the network
            // thread (§6).
            let mask = self.wg.active().clone();
            self.offload(&mask, dests, |lane| {
                Message::inc(dests.get(lane), addrs.get(lane), vals.get(lane))
            });
        } else {
            // Concurrent-RMW ablation: local lanes update the heap with
            // GPU atomics, remote lanes offload.
            let local = self.local_mask(dests);
            if !local.is_empty() {
                let heap = &self.node.heap;
                for lane in local.iter() {
                    heap.fetch_add(addrs.get(lane), vals.get(lane));
                }
                self.wg.counters.atomics += local.count() as u64;
                self.node.local_direct.add(local.count() as u64);
            }
            let remote = self.wg.active().and_not(&local);
            self.offload(&remote, dests, |lane| {
                Message::inc(dests.get(lane), addrs.get(lane), vals.get(lane))
            });
        }
    }

    /// PGAS fetch (request-reply): each active lane reads heap word
    /// `addrs[lane]` from node `dests[lane]`. Returns the work-group's
    /// completion sink — slot `lane` completes with the value once the
    /// reply frame arrives, or with a deterministic
    /// [`RpcFailure`] (timeout, restart, table full) otherwise. Issue
    /// the whole group's GETs, then `sink.wait_all(..)`: one park for
    /// the group, the WG-amortized analogue of the offload queue's
    /// single reservation.
    pub fn shmem_get(&mut self, dests: &LaneVec<u32>, addrs: &LaneVec<u64>) -> Arc<ReplySink> {
        self.rpc_offload(dests, |lane, token, dl| {
            Message::get(dests.get(lane), addrs.get(lane), token, dl)
        })
    }

    /// Value-returning active message: each active lane runs returning
    /// handler `handler` against `args[lane]` on node `dests[lane]` and
    /// receives the handler's result in its sink slot. Same completion
    /// contract as [`shmem_get`](Self::shmem_get).
    pub fn shmem_am_call(
        &mut self,
        handler: u32,
        dests: &LaneVec<u32>,
        args: &LaneVec<u64>,
    ) -> Arc<ReplySink> {
        self.rpc_offload(dests, |lane, token, dl| {
            Message::am_call(dests.get(lane), handler, args.get(lane), token, dl)
        })
    }

    fn rpc_offload(
        &mut self,
        dests: &LaneVec<u32>,
        make: impl Fn(usize, u64, u16) -> Message,
    ) -> Arc<ReplySink> {
        let mask = self.wg.active().clone();
        let sink = Arc::new(ReplySink::new(self.wg.wg_size()));
        if mask.is_empty() {
            return sink;
        }
        let deadline = Instant::now() + self.node.rpc_timeout;
        let deadline_ms = self.node.rpc_timeout.as_millis().min(u128::from(u16::MAX)) as u16;
        // Register every lane's token *before* offloading anything, so
        // no reply can ever race its own registration. A lane refused by
        // a full table fails its slot immediately and sends nothing.
        let mut tokens = vec![0u64; self.wg.wg_size()];
        let mut ok = vec![false; self.wg.wg_size()];
        for lane in mask.iter() {
            match self.node.rpc.register(sink.clone(), lane, deadline) {
                Ok(t) => {
                    tokens[lane] = t;
                    ok[lane] = true;
                }
                Err(_) => {
                    sink.arm();
                    sink.fail(lane, RpcFailure::TableFull);
                }
            }
        }
        let send = mask.and(&Mask::from_fn(self.wg.wg_size(), |l| ok[l]));
        self.offload(&send, dests, |lane| make(lane, tokens[lane], deadline_ms));
        sink
    }

    /// Active message: each active lane invokes handler `handler` on node
    /// `dests[lane]` with `(addrs[lane], vals[lane])`. Always serialized
    /// through the destination's network thread.
    pub fn shmem_am(
        &mut self,
        handler: u32,
        dests: &LaneVec<u32>,
        addrs: &LaneVec<u64>,
        vals: &LaneVec<u64>,
    ) {
        let mask = self.wg.active().clone();
        self.offload(&mask, dests, |lane| {
            Message::active(dests.get(lane), handler, addrs.get(lane), vals.get(lane))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GravelConfig;
    use gravel_gq::Consumed;
    use gravel_pgas::AmRegistry;
    use gravel_simt::Grid;
    use std::sync::Arc;

    fn node(nodes: usize) -> NodeShared {
        let cfg = GravelConfig::small(nodes, 32);
        NodeShared::new(0, &cfg, Arc::new(AmRegistry::new()))
    }

    fn wg() -> WgCtx {
        WgCtx::new(
            Grid {
                wg_count: 1,
                wg_size: 8,
                wf_width: 4,
            },
            0,
        )
    }

    #[test]
    fn local_puts_store_directly_without_offload() {
        let n = node(2);
        let mut w = wg();
        let mut ctx = GravelCtx::new(&mut w, &n, true);
        let dests = LaneVec::splat(8, 0u32); // all local
        let addrs = LaneVec::from_fn(8, |l| l as u64);
        let vals = LaneVec::from_fn(8, |l| 10 + l as u64);
        ctx.shmem_put(&dests, &addrs, &vals);
        assert_eq!(n.heap.load(3), 13);
        assert_eq!(n.queue.backlog(), 0, "no offload for local PUTs");
        assert_eq!(n.local_direct.get(), 8);
    }

    #[test]
    fn remote_puts_offload() {
        let n = node(2);
        let mut w = wg();
        let mut ctx = GravelCtx::new(&mut w, &n, true);
        let dests = LaneVec::from_fn(8, |l| (l % 2) as u32); // half remote
        let addrs = LaneVec::from_fn(8, |l| l as u64);
        let vals = LaneVec::splat(8, 5u64);
        ctx.shmem_put(&dests, &addrs, &vals);
        // 4 local applied, 4 remote queued.
        assert_eq!(n.local_direct.get(), 4);
        assert_eq!(n.remote_routed.get(), 4);
        let mut out = Vec::new();
        assert_eq!(n.queue.try_consume_into(&mut out), Consumed::Batch(4));
    }

    #[test]
    fn serialized_inc_routes_local_operations() {
        let n = node(2);
        let mut w = wg();
        let mut ctx = GravelCtx::new(&mut w, &n, true);
        let dests = LaneVec::splat(8, 0u32); // all local, but serialized
        let addrs = LaneVec::splat(8, 0u64);
        let vals = LaneVec::splat(8, 1u64);
        ctx.shmem_inc(&dests, &addrs, &vals);
        assert_eq!(n.heap.load(0), 0, "not applied yet — routed");
        assert_eq!(n.local_routed.get(), 8);
        assert_eq!(n.queue.backlog(), 1);
    }

    #[test]
    fn concurrent_rmw_ablation_applies_local_incs_directly() {
        let n = node(2);
        let mut w = wg();
        let mut ctx = GravelCtx::new(&mut w, &n, false);
        let dests = LaneVec::from_fn(8, |l| (l / 4) as u32); // 4 local, 4 remote
        let addrs = LaneVec::splat(8, 0u64);
        let vals = LaneVec::splat(8, 1u64);
        ctx.shmem_inc(&dests, &addrs, &vals);
        assert_eq!(n.heap.load(0), 4, "local lanes applied immediately");
        assert_eq!(n.remote_routed.get(), 4);
    }

    #[test]
    fn am_encodes_handler_id() {
        let n = node(2);
        let mut w = wg();
        let mut ctx = GravelCtx::new(&mut w, &n, true);
        let dests = LaneVec::splat(8, 1u32);
        let addrs = LaneVec::splat(8, 2u64);
        let vals = LaneVec::splat(8, 3u64);
        ctx.shmem_am(7, &dests, &addrs, &vals);
        let mut out = Vec::new();
        assert_eq!(n.queue.try_consume_into(&mut out), Consumed::Batch(8));
        let m = Message::decode([out[0], out[1], out[2], out[3]]).unwrap();
        assert_eq!(m, Message::active(1, 7, 2, 3));
    }

    #[test]
    fn masked_lanes_send_nothing() {
        let n = node(2);
        let mut w = wg();
        let only_two = Mask::from_fn(8, |l| l < 2);
        w.with_mask(only_two, |w| {
            let mut ctx = GravelCtx::new(w, &n, true);
            let dests = LaneVec::splat(8, 1u32);
            let addrs = LaneVec::from_fn(8, |l| l as u64);
            let vals = LaneVec::splat(8, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        let mut out = Vec::new();
        assert_eq!(n.queue.try_consume_into(&mut out), Consumed::Batch(2));
    }
}
