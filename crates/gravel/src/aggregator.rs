//! The aggregator thread (paper §3.4, §6).
//!
//! One CPU thread per node drains the producer/consumer queue and repacks
//! messages into per-destination queues, which are sent to the network
//! when full or after the 125 µs timeout. The paper found one aggregator
//! thread performs best on the four-thread APU, and that even at eight
//! nodes the thread spends ~65 % of its time polling — both observable
//! here through [`NodeShared`]'s poll counters.
//!
//! The aggregator *owns* the senders into every node's network thread;
//! when the queue closes and the loop exits, dropping the senders is what
//! lets the network threads observe cluster shutdown.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::Sender;
use gravel_gq::Consumed;
use gravel_pgas::{NodeQueues, Packet};

use crate::node::NodeShared;

/// Run the aggregation loop until the queue is closed and drained. This
/// is the body of each node's aggregator thread `slot` (of possibly
/// several; each owns private per-destination queues, which is safe
/// because PGAS operations commute). `net_tx[d]` sends into node `d`'s
/// network thread (including `d == node.id`, the loopback path that
/// serialized local atomics take).
pub fn run(
    node: Arc<NodeShared>,
    slot: usize,
    net_tx: Vec<Sender<Packet>>,
    queue_bytes: usize,
    timeout: std::time::Duration,
) {
    assert_eq!(net_tx.len(), node.nodes, "one network sender per node");
    let mut nodeq = NodeQueues::with_config(node.id, node.nodes, queue_bytes, timeout);
    let mut buf: Vec<u64> = Vec::with_capacity(node.queue.config().slot_bytes() / 8);
    let rows = node.queue.config().rows;
    loop {
        buf.clear();
        match node.queue.try_consume_into(&mut buf) {
            Consumed::Batch(_) => {
                node.agg_polls_hit.fetch_add(1, Ordering::Relaxed);
                let now = Instant::now();
                let mut sent = false;
                for msg in buf.chunks_exact(rows) {
                    let dest = msg[1] as usize;
                    debug_assert!(dest < node.nodes, "message to unknown node {dest}");
                    if let Some(pkt) = nodeq.push(dest, msg, now) {
                        send(&net_tx, pkt);
                        sent = true;
                    }
                }
                if sent {
                    node.agg_stats.lock()[slot] = nodeq.stats;
                }
            }
            Consumed::Empty => {
                node.agg_polls_empty.fetch_add(1, Ordering::Relaxed);
                let pkts = nodeq.poll_timeouts(Instant::now());
                if !pkts.is_empty() {
                    for pkt in pkts {
                        send(&net_tx, pkt);
                    }
                    node.agg_stats.lock()[slot] = nodeq.stats;
                }
                // Idle: let other threads (GPU, network) run. On the
                // paper's APU this is where 65 % of the core goes.
                std::thread::yield_now();
            }
            Consumed::Closed => {
                for pkt in nodeq.flush_all() {
                    send(&net_tx, pkt);
                }
                break;
            }
        }
    }
    node.agg_stats.lock()[slot] = nodeq.stats;
    // `net_tx` drops here, disconnecting this node's contribution to
    // every network thread.
}

fn send(net_tx: &[Sender<Packet>], pkt: Packet) {
    let dest = pkt.dest as usize;
    // The channel is unbounded; a closed receiver means the cluster is
    // shutting down and the packet can be dropped safely (shutdown waits
    // for quiescence first).
    let _ = net_tx[dest].send(pkt);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GravelConfig;
    use crossbeam::channel::unbounded;
    use gravel_gq::Message;
    use gravel_pgas::AmRegistry;

    fn spawn_node(
        nodes: usize,
    ) -> (Arc<NodeShared>, Vec<Sender<Packet>>, Vec<crossbeam::channel::Receiver<Packet>>) {
        let cfg = GravelConfig::small(nodes, 16);
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..nodes).map(|_| unbounded()).unzip();
        let node = Arc::new(NodeShared::new(0, &cfg, Arc::new(AmRegistry::new())));
        (node, txs, rxs)
    }

    #[test]
    fn aggregator_routes_by_destination_and_flushes_on_close() {
        let (node, txs, rxs) = spawn_node(3);
        for i in 0..5 {
            node.host_send(Message::inc(1, i, 1));
        }
        node.host_send(Message::put(2, 9, 9));
        node.queue.close();
        let handle = {
            let node = node.clone();
            std::thread::spawn(move || run(node, 0, txs, 1 << 20, std::time::Duration::from_millis(10)))
        };
        handle.join().unwrap();
        let p1 = rxs[1].try_recv().unwrap();
        assert_eq!(p1.words().len(), 5 * 4);
        let p2 = rxs[2].try_recv().unwrap();
        assert_eq!(p2.words().len(), 4);
        assert!(rxs[0].try_recv().is_err());
        let stats = node.agg_stats.lock()[0];
        assert_eq!(stats.packets, 2);
        assert_eq!(stats.messages, 6);
    }

    #[test]
    fn full_queue_flushes_before_close() {
        let (node, txs, rxs) = spawn_node(2);
        // node_queue of 64 bytes → 2 messages per packet.
        let agg = {
            let node = node.clone();
            std::thread::spawn(move || run(node, 0, txs, 64, std::time::Duration::from_secs(10)))
        };
        for i in 0..4 {
            node.host_send(Message::inc(1, i, 1));
        }
        // Two full packets must arrive even though the queue stays open.
        let a = rxs[1].recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        let b = rxs[1].recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert_eq!(a.len(), 64);
        assert_eq!(b.len(), 64);
        node.queue.close();
        agg.join().unwrap();
    }

    #[test]
    fn timeout_flushes_partial_packet() {
        let (node, txs, rxs) = spawn_node(2);
        let agg = {
            let node = node.clone();
            std::thread::spawn(move || run(node, 0, txs, 1 << 20, std::time::Duration::from_micros(100)))
        };
        node.host_send(Message::inc(1, 0, 1));
        // One lone message must arrive via the timeout path.
        let p = rxs[1].recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert_eq!(p.words().len(), 4);
        node.queue.close();
        agg.join().unwrap();
        assert_eq!(node.agg_stats.lock()[0].timeout_flushes, 1);
    }

    #[test]
    fn senders_disconnect_on_exit() {
        let (node, txs, rxs) = spawn_node(2);
        node.queue.close();
        let agg = {
            let node = node.clone();
            std::thread::spawn(move || run(node, 0, txs, 1 << 20, std::time::Duration::from_millis(1)))
        };
        agg.join().unwrap();
        // Receivers observe disconnect once the aggregator dropped its
        // senders.
        assert!(rxs[0].recv().is_err());
    }
}
