//! The aggregator thread (paper §3.4, §6) — now also the sender half of
//! the delivery protocol.
//!
//! One CPU thread per node (per configured slot) drains the
//! producer/consumer queue and repacks messages into per-destination
//! queues, which are flushed to the transport when full or after the
//! 125 µs timeout. On top of the original aggregation duties, each
//! aggregator lane runs go-back-N delivery per destination flow:
//! packets are stamped with `(lane, seq)`, kept in a retransmit buffer
//! until cumulatively acked by the receiving network thread, and
//! re-sent with exponential backoff when acks stop arriving. A flow
//! that makes no progress for `RetryConfig::max_retries` consecutive
//! rounds is declared dead and reported through the shared
//! [`ErrorSlot`], which unwinds the whole cluster instead of hanging
//! quiescence.
//!
//! Backpressure: the transport's data channels are bounded. A send that
//! cannot complete within its short timeout parks the packet in the
//! flow's staging queue and increments `net.chan_stalls` (a full
//! go-back-N window increments `net.window_stalls` instead — together
//! they are `NetStats::backpressure_stalls`); the loop keeps draining
//! the GPU ring and the ack mailbox meanwhile, so a stalled link can
//! never deadlock the reply path (netthread → ring → aggregator →
//! netthread).

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use gravel_gq::{Band, Consumed, TrafficClass, NUM_CLASSES};
use gravel_net::{ChaosPlan, RetryConfig, SendStatus, Transport};
use gravel_pgas::{DataFrame, FlushPolicy, FrameKind, NodeQueues, Packet};
use gravel_telemetry::Gauge;

use crate::backoff::Backoff;
use crate::error::{ErrorSlot, RuntimeError};
use crate::node::NodeShared;

/// How long one transport send attempt may block before the packet is
/// parked and the loop resumes servicing acks and the GPU ring.
const SEND_ATTEMPT_TIMEOUT: Duration = Duration::from_micros(200);

/// Park cap while waiting for in-flight packets to drain at shutdown.
const DRAIN_POLL: Duration = Duration::from_micros(200);

/// Park cap while flows still hold unacked packets (the ack mailbox has
/// no wakeup channel, so cap the nap to keep ack servicing snappy).
const UNACKED_POLL: Duration = Duration::from_micros(50);

/// Parks shorter than this aren't worth a condvar round-trip; spin
/// through them instead.
const MIN_PARK: Duration = Duration::from_micros(5);

/// Park duration for a lane the governor has routed out of the active
/// mask. Such a lane receives no traffic until the mask re-expands, and
/// re-expansion reaches it as a ring publish — which wakes the park
/// early — so once its residue is flushed and acked it can sleep far
/// past the normal idle cap without adding wakeup latency anywhere.
/// The periodic wake that remains is only a liveness backstop.
const PARKED_LANE_PARK: Duration = Duration::from_millis(20);

/// In-flight packet budget of one QoS band, derived from the go-back-N
/// window (no separate knob): the LATENCY band may fill the whole
/// window, NORMAL three quarters, BULK half. A bulk stream therefore
/// can never occupy the window so completely that a GET or reply has to
/// queue behind it — the credit head-room *is* the priority mechanism
/// (SNIPPETS.md Snippet 3's credit-gated sends). The cap is static on
/// purpose: a work-conserving variant (full window while no
/// higher-band traffic is active) was measured to cost nothing on pure
/// GUPS but to erase most of the GET-latency advantage — request
/// traffic is intermittent, so by the time a reply is queued the
/// window is already stuffed with bulk frames it must drain behind.
fn band_credit(band: Band, window: usize) -> usize {
    match band {
        Band::Latency => window,
        Band::Normal => (window * 3 / 4).max(1),
        Band::Bulk => (window / 2).max(1),
    }
}

/// Sender-side state of one destination flow (go-back-N + QoS bands).
struct Flow {
    /// Next sequence number to stamp.
    next_seq: u64,
    /// Lowest unacknowledged sequence number.
    base: u64,
    /// Flushed packets awaiting a sequence number, one queue per
    /// traffic class (drained in [`TrafficClass::PRIORITY`] order
    /// subject to band credits). Index 0 carries everything when QoS
    /// bands are disabled.
    classq: Vec<VecDeque<Packet>>,
    /// Stamped, sealed, but unsent frames (parked by backpressure).
    staged: VecDeque<DataFrame>,
    /// Sent, unacknowledged frames: `base .. base + unacked.len()`.
    /// Sealed exactly once at stamp time; retransmissions are
    /// refcounted clones of the same frame bytes (no re-CRC).
    unacked: VecDeque<DataFrame>,
    /// QoS band of every stamped-but-unacked frame, in stamp order
    /// (parallels `unacked` then `staged`); popped at ack time to
    /// refund the band's credit.
    stamped_bands: VecDeque<Band>,
    /// Last time this flow made ack progress or (re)transmitted.
    last_activity: Instant,
    /// Current retransmission backoff.
    backoff: Duration,
    /// Consecutive retransmission rounds without ack progress.
    retries: u32,
}

impl Flow {
    fn new(retry: &RetryConfig) -> Self {
        Flow {
            next_seq: 0,
            base: 0,
            classq: (0..NUM_CLASSES).map(|_| VecDeque::new()).collect(),
            staged: VecDeque::new(),
            unacked: VecDeque::new(),
            stamped_bands: VecDeque::new(),
            last_activity: Instant::now(),
            backoff: retry.backoff,
            retries: 0,
        }
    }

    fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Stamped frames currently charged against `band`'s credit.
    fn band_in_flight(&self, band: Band) -> usize {
        self.stamped_bands.iter().filter(|b| **b == band).count()
    }

    fn has_queued(&self) -> bool {
        self.classq.iter().any(|q| !q.is_empty())
    }

    fn is_drained(&self) -> bool {
        !self.has_queued() && self.staged.is_empty() && self.unacked.is_empty()
    }
}

/// Restartable state of one aggregator lane, hoisted out of the thread
/// so a supervised restart resumes exactly where the predecessor died:
/// the per-destination aggregation queues, the go-back-N flows, and the
/// cursor into a partially processed GPU batch. Only the owning lane
/// thread locks it (per loop iteration), so the lock is uncontended; a
/// panic mid-iteration leaves it poisoned, which the restarted thread
/// recovers from — injected chaos only panics at message boundaries,
/// where the state is consistent by construction.
pub struct LaneState {
    /// Per-destination aggregation queues, one set per traffic class
    /// (index = [`TrafficClass::index`]) when QoS bands are on, a
    /// single shared set otherwise. Empty until the lane first runs.
    nodeqs: Vec<NodeQueues>,
    flows: Vec<Flow>,
    /// Words drained from the GPU queue but not yet aggregated.
    pending: Vec<u64>,
    /// Word offset of the next unprocessed message in `pending`.
    pos: usize,
    /// Reusable flush scratch: packets travel queue → sender through
    /// this one vector, so the steady-state drain loop allocates
    /// nothing per batch.
    scratch: Vec<Packet>,
}

impl LaneState {
    pub fn new() -> Self {
        LaneState {
            nodeqs: Vec::new(),
            flows: Vec::new(),
            pending: Vec::new(),
            pos: 0,
            scratch: Vec::new(),
        }
    }
}

impl Default for LaneState {
    fn default() -> Self {
        LaneState::new()
    }
}

fn lock_state(state: &Mutex<LaneState>) -> MutexGuard<'_, LaneState> {
    state.lock().unwrap_or_else(|p| p.into_inner())
}

/// The sender half of the delivery protocol for one aggregator lane.
/// Borrows its flows from the lane's [`LaneState`] so sequence numbers
/// and unacked windows survive a worker restart.
struct Sender<'a> {
    node: &'a NodeShared,
    lane: u32,
    transport: &'a dyn Transport,
    retry: RetryConfig,
    flows: &'a mut Vec<Flow>,
    /// Live unacked-packet total across this lane's flows
    /// (`node{N}.agg.in_flight` in the registry).
    in_flight: &'a Gauge,
}

impl<'a> Sender<'a> {
    fn new(
        node: &'a NodeShared,
        lane: u32,
        transport: &'a dyn Transport,
        flows: &'a mut Vec<Flow>,
        in_flight: &'a Gauge,
    ) -> Self {
        let retry = node.retry.clone();
        if flows.len() != node.nodes {
            *flows = (0..node.nodes).map(|_| Flow::new(&retry)).collect();
        }
        Sender {
            lane,
            transport,
            retry,
            flows,
            in_flight,
            node,
        }
    }

    fn note_in_flight(&self) {
        self.in_flight
            .set(self.flows.iter().map(Flow::in_flight).sum::<usize>() as i64);
    }

    /// Queue a freshly flushed packet for its flow by traffic class and
    /// pump the flow. With QoS bands off everything shares one FIFO
    /// class (the ablation: strict pre-PR-7 ordering).
    fn submit(&mut self, pkt: Packet) {
        let dest = pkt.dest as usize;
        let ci = if self.node.qos_bands { pkt.class().index() } else { 0 };
        self.flows[dest].classq[ci].push_back(pkt);
        self.pump(dest);
    }

    /// Move queued packets onto the wire while the go-back-N window has
    /// room: first re-try frames already stamped but parked by
    /// backpressure (sequence order is sacred), then stamp fresh
    /// packets in priority order, each subject to its band's in-flight
    /// credit. A class blocked *only* by exhausted credits counts
    /// `rpc.credits_stalled`.
    fn pump(&mut self, dest: usize) {
        let window = self.retry.window;
        let qos = self.node.qos_bands;
        let epoch = self.node.wire_epoch.load(Ordering::Relaxed);
        let flow = &mut self.flows[dest];
        while flow.in_flight() < window {
            if let Some(pkt) = flow.staged.pop_front() {
                match self.transport.send_data(pkt.clone(), SEND_ATTEMPT_TIMEOUT) {
                    SendStatus::Sent => {
                        flow.last_activity = Instant::now();
                        flow.unacked.push_back(pkt);
                        continue;
                    }
                    SendStatus::TimedOut => {
                        flow.staged.push_front(pkt);
                        self.node.net_chan_stalls.add(1);
                        self.note_in_flight();
                        return;
                    }
                    SendStatus::Closed => return, // cluster is winding down
                }
            }
            // Stamp the highest-priority queued packet whose band still
            // has credit.
            let mut next = None;
            let mut credit_blocked = false;
            for class in TrafficClass::PRIORITY {
                let ci = if qos { class.index() } else { 0 };
                if flow.classq[ci].is_empty() {
                    continue;
                }
                let band = class.band();
                if qos && flow.band_in_flight(band) >= band_credit(band, window) {
                    credit_blocked = true;
                    continue;
                }
                next = Some((ci, band));
                break;
            }
            let Some((ci, band)) = next else {
                if credit_blocked {
                    self.node.rpc_credits_stalled.add(1);
                }
                self.note_in_flight();
                return;
            };
            let mut pkt = flow.classq[ci].pop_front().expect("class queue non-empty");
            pkt.lane = self.lane;
            pkt.seq = flow.next_seq;
            flow.next_seq += 1;
            // With bands off every frame travels as plain DATA (packets
            // may mix classes when aggregation didn't split them).
            let frame = if qos {
                pkt.seal_in(epoch, self.node.wire_integrity, self.node.pool.as_ref())
            } else {
                pkt.seal_kind_in(
                    epoch,
                    self.node.wire_integrity,
                    FrameKind::Data,
                    self.node.pool.as_ref(),
                )
            };
            flow.stamped_bands.push_back(band);
            flow.staged.push_back(frame);
        }
        if !flow.staged.is_empty() || flow.has_queued() {
            // Window full: also a form of backpressure (the receiver or
            // the ack path is behind).
            self.node.net_window_stalls.add(1);
        }
        self.note_in_flight();
    }

    /// Drain this lane's ack mailbox, verify each ack frame, and
    /// release acknowledged packets. Unverifiable acks are dropped
    /// (counted in `net.ack_corrupt_dropped`) — a lost ack just means
    /// the next cumulative ack or a retransmission round covers it.
    fn drain_acks(&mut self) {
        while let Some(frame) = self.transport.try_recv_ack(self.node.id, self.lane) {
            let ack = match frame.open(self.node.wire_integrity) {
                Ok(ack) => ack,
                Err(_) => {
                    self.node.net_ack_corrupt_dropped.add(1);
                    continue;
                }
            };
            // With integrity off a mangled src can still verify; never
            // index out of the flow table on a corrupt peer id.
            let Some(flow) = self.flows.get_mut(ack.src as usize) else {
                self.node.net_ack_corrupt_dropped.add(1);
                continue;
            };
            self.node.net_acks_received.add(1);
            let mut progressed = false;
            while flow.base <= ack.cum_seq && !flow.unacked.is_empty() {
                flow.unacked.pop_front();
                // Refund the acked frame's band credit (stamp order ==
                // ack order under go-back-N).
                flow.stamped_bands.pop_front();
                flow.base += 1;
                progressed = true;
            }
            if progressed {
                flow.last_activity = Instant::now();
                flow.backoff = self.retry.backoff;
                flow.retries = 0;
                let dest = ack.src as usize;
                self.pump(dest);
            }
        }
    }

    /// Retransmit timed-out windows (go-back-N: resend everything
    /// unacked). Returns an error when a flow exhausts its retries.
    fn poll_retransmits(&mut self) -> Result<(), RuntimeError> {
        let now = Instant::now();
        for dest in 0..self.flows.len() {
            let flow = &mut self.flows[dest];
            if flow.unacked.is_empty() || now.duration_since(flow.last_activity) < flow.backoff {
                continue;
            }
            if flow.retries >= self.retry.max_retries {
                return Err(RuntimeError::RetryExhausted {
                    src: self.node.id,
                    dest: dest as u32,
                    lane: self.lane,
                    seq: flow.base,
                    retries: flow.retries,
                });
            }
            flow.retries += 1;
            flow.backoff = (flow.backoff * 2).min(self.retry.backoff_max);
            flow.last_activity = now;
            let resend: Vec<DataFrame> = flow.unacked.iter().cloned().collect();
            self.node.net_retransmits.add(resend.len() as u64);
            let _span = self
                .node
                .tracer
                .span("agg.retransmit", "aggregate", self.node.id);
            for pkt in resend {
                // Best-effort: a full channel just means the next round
                // retries again — the window bound keeps this finite.
                if self.transport.send_data(pkt, SEND_ATTEMPT_TIMEOUT) == SendStatus::Closed {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Are all flows fully acknowledged?
    fn is_drained(&self) -> bool {
        self.flows.iter().all(Flow::is_drained)
    }
}

/// Run the aggregation loop until the queue is closed and every flow is
/// drained (or the cluster failed). This is the body of each node's
/// aggregator thread `slot`; each slot owns private per-destination
/// queues and a private sequence space, which is safe because PGAS
/// operations commute.
pub fn run(
    node: Arc<NodeShared>,
    slot: usize,
    transport: Arc<dyn Transport>,
    queue_bytes: usize,
    policy: FlushPolicy,
    errors: Arc<ErrorSlot>,
) {
    let state = Arc::new(Mutex::new(LaneState::new()));
    run_supervised(
        node,
        slot,
        transport,
        queue_bytes,
        policy,
        errors,
        state,
        None,
    );
}

/// [`run`] with lane state hoisted into `state` (so a supervised
/// restart resumes the predecessor's flows and batch cursor exactly)
/// and optional process-fault injection from `chaos`. Chaos panics fire
/// at the drain-step boundary *before* the message at the cursor is
/// aggregated, which is what makes restart-resume exact: the restarted
/// lane re-processes precisely that message.
#[allow(clippy::too_many_arguments)]
pub fn run_supervised(
    node: Arc<NodeShared>,
    slot: usize,
    transport: Arc<dyn Transport>,
    queue_bytes: usize,
    policy: FlushPolicy,
    errors: Arc<ErrorSlot>,
    state: Arc<Mutex<LaneState>>,
    chaos: Option<Arc<ChaosPlan>>,
) {
    let lane = slot as u32;
    let in_flight = node
        .registry
        .gauge(&format!("node{}.agg.in_flight", node.id));
    let rows = node.queue.config().rows;
    // This lane exclusively drains its own shard ring: destinations hash
    // to lanes at produce time, so per-destination ordering holds without
    // any consumer-side coordination.
    let ring = node.queue.ring(slot % node.queue.lanes());
    let mut idle = Backoff::new(Duration::from_millis(1));
    loop {
        // One short uncontended lock per iteration; the only other
        // holder this lane's state can ever have is a successor after
        // this thread dies.
        let mut st = lock_state(&state);
        if st.nodeqs.is_empty() {
            // One queue set per traffic class (QoS on) or a single
            // shared set (QoS off). RPC classes get tiny buffers and a
            // 25 µs flush so a lone GET or reply never marinates behind
            // the bulk flush policy. Every queue set shares the node's
            // `AggCounters`: one increment per flush event, so per-slot
            // snapshots can never drift.
            let classes = if node.qos_bands { NUM_CLASSES } else { 1 };
            for ci in 0..classes {
                let rpc_class = node.qos_bands && ci != TrafficClass::Bulk.index();
                let (bytes, pol) = if rpc_class {
                    (
                        queue_bytes.min(2048),
                        FlushPolicy::Fixed(Duration::from_micros(25)),
                    )
                } else {
                    (queue_bytes, policy)
                };
                let mut nq =
                    NodeQueues::with_policy(node.id, node.nodes, bytes, pol, node.agg.clone());
                if let Some(pool) = &node.pool {
                    nq = nq.with_pool(pool.clone());
                }
                st.nodeqs.push(nq);
            }
        }
        let LaneState {
            nodeqs,
            flows,
            pending,
            pos,
            scratch,
        } = &mut *st;
        let mut sender = Sender::new(&node, lane, transport.as_ref(), flows, &in_flight);
        sender.drain_acks();
        if let Err(e) = sender.poll_retransmits() {
            errors.set(e);
            return;
        }
        if errors.is_set() {
            return;
        }
        if *pos < pending.len() {
            // Aggregate the current batch (fresh, or inherited mid-way
            // from a predecessor that panicked at the cursor).
            let _span = node.tracer.span("agg.drain", "aggregate", node.id);
            let now = Instant::now();
            while *pos < pending.len() {
                // Scan the run of consecutive messages bound for the
                // same destination and hand it to the node queue in one
                // call. Destination sharding makes runs long (with one
                // dest per lane a whole batch is a single run), so the
                // per-message dispatch cost amortizes away. The chaos
                // schedule still ticks once per message so an injected
                // kill lands on its exact message boundary: the run is
                // cut short, everything before the boundary is pushed
                // and submitted, and only then does the lane die.
                let dest = pending[*pos + 1] as usize;
                debug_assert!(dest < node.nodes, "message to unknown node {dest}");
                // Runs split on class as well as destination so packets
                // stay class-pure (the wire kind advertises the class
                // and the sender schedules whole packets by band).
                let qi = if node.qos_bands {
                    TrafficClass::of_command_word(pending[*pos]).index()
                } else {
                    0
                };
                let mut end = *pos;
                let mut killed = false;
                while end < pending.len()
                    && pending[end + 1] as usize == dest
                    && (!node.qos_bands
                        || TrafficClass::of_command_word(pending[end]).index() == qi)
                {
                    if let Some(c) = chaos.as_deref() {
                        if c.agg_tick(node.id, lane) {
                            killed = true;
                            break;
                        }
                    }
                    end += rows;
                }
                if end > *pos {
                    scratch.clear();
                    nodeqs[qi].push_run(dest, &pending[*pos..end], rows, now, scratch);
                    for pkt in scratch.drain(..) {
                        sender.submit(pkt);
                    }
                    *pos = end;
                }
                if killed {
                    panic!(
                        "chaos: aggregator {}/{} killed at injected drain step",
                        node.id, lane
                    );
                }
            }
            // Busy lane: publish its load signal (max fill EWMA across
            // this lane's queue sets) and, on lane 0, run the governor's
            // rate-limited mask decision.
            if let Some(gov) = &node.governor {
                let fill = nodeqs.iter().map(|q| q.max_fill_ewma()).fold(0.0, f64::max);
                gov.publish_fill(lane as usize, fill);
                if lane == 0 {
                    gov.decide(&node.queue, Instant::now());
                }
            }
            continue;
        }
        pending.clear();
        *pos = 0;
        match ring.try_consume_batch(pending, node.drain_batch) {
            Consumed::Batch(_) => {
                // Processed by the cursor branch on the next iteration.
                node.agg_polls_hit.add(1);
                idle.reset();
            }
            Consumed::Empty => {
                node.agg_polls_empty.add(1);
                let now = Instant::now();
                for nodeq in nodeqs.iter_mut() {
                    scratch.clear();
                    nodeq.poll_timeouts_into(now, scratch);
                    if !scratch.is_empty() {
                        let _span = node.tracer.span("agg.flush", "aggregate", node.id);
                        for pkt in scratch.drain(..) {
                            sender.submit(pkt);
                        }
                    }
                }
                // Idle: spin briefly (work usually arrives within
                // microseconds on the hot path), then park on the ring's
                // wait cell instead of burning the core — the paper's
                // APU spent 65 % of it polling here. The park is bounded
                // by the earliest pending flush deadline, and kept short
                // while acks are outstanding (no wakeup channel there).
                let deadline = nodeqs
                    .iter()
                    .filter_map(|q| q.next_deadline(now))
                    .min();
                // Idle lane: publish the real fill while flushes are
                // still pending, zero once fully empty — a stale EWMA
                // from a dest that went quiet must not pin the mask
                // open (or hold it shut) forever.
                if let Some(gov) = &node.governor {
                    let fill = if deadline.is_some() {
                        nodeqs.iter().map(|q| q.max_fill_ewma()).fold(0.0, f64::max)
                    } else {
                        0.0
                    };
                    gov.publish_fill(lane as usize, fill);
                    if lane == 0 {
                        gov.decide(&node.queue, now);
                    }
                }
                let drained = sender.is_drained();
                drop(st);
                // A governed lane outside the active mask, fully
                // drained with no flush pending, parks long and skips
                // the spin window entirely: it cannot receive work
                // until the mask re-expands, and that arrives as a
                // ring publish which wakes the park. Spinning here
                // would only steal cycles from the lanes that are in
                // the mask.
                let parked_out = node.governor.is_some()
                    && (lane as usize) >= node.queue.active_lanes()
                    && drained
                    && deadline.is_none();
                if !parked_out && idle.should_spin() {
                    node.net_spin_spins.add(1);
                    std::thread::yield_now();
                } else {
                    let mut park = idle.next_park();
                    if parked_out {
                        park = PARKED_LANE_PARK;
                    }
                    if let Some(d) = deadline {
                        park = park.min(d);
                    }
                    if !drained {
                        park = park.min(UNACKED_POLL);
                    }
                    if park < MIN_PARK {
                        node.net_spin_spins.add(1);
                        std::thread::yield_now();
                    } else {
                        node.net_spin_parks.add(1);
                        ring.park_for_ready(park);
                    }
                }
            }
            Consumed::Closed => {
                for nodeq in nodeqs.iter_mut() {
                    scratch.clear();
                    nodeq.flush_all_into(scratch);
                    if !scratch.is_empty() {
                        let _span = node.tracer.span("agg.flush", "aggregate", node.id);
                        for pkt in scratch.drain(..) {
                            sender.submit(pkt);
                        }
                    }
                }
                // Drain phase: hold the thread until every flow is
                // acknowledged, so shutdown cannot lose in-flight
                // packets. Bounded by the retry budget per flow.
                let mut bo = Backoff::new(DRAIN_POLL);
                while !sender.is_drained() && !errors.is_set() && !transport.is_closed() {
                    sender.drain_acks();
                    if let Err(e) = sender.poll_retransmits() {
                        errors.set(e);
                        break;
                    }
                    for dest in 0..node.nodes {
                        sender.pump(dest);
                    }
                    if bo.should_spin() {
                        node.net_spin_spins.add(1);
                    } else {
                        node.net_spin_parks.add(1);
                        bo.park_sleep();
                    }
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GravelConfig;
    use gravel_gq::Message;
    use gravel_net::{ChannelTransport, RecvStatus};
    use gravel_pgas::{AmRegistry, WireIntegrity};

    fn spawn_node(nodes: usize) -> (Arc<NodeShared>, Arc<ChannelTransport>, Arc<ErrorSlot>) {
        let mut cfg = GravelConfig::small(nodes, 16);
        // Fast retry budget so the retransmission tests finish quickly.
        cfg.retry = RetryConfig {
            window: 64,
            backoff: Duration::from_micros(500),
            backoff_max: Duration::from_millis(5),
            max_retries: 10,
        };
        let transport = Arc::new(ChannelTransport::new(nodes, 1, 64));
        let node = Arc::new(NodeShared::new(0, &cfg, Arc::new(AmRegistry::new())));
        (node, transport, Arc::new(ErrorSlot::default()))
    }

    fn recv(t: &ChannelTransport, node: u32) -> Packet {
        match t.recv_data(node, Duration::from_secs(5)) {
            RecvStatus::Msg(f) => f.open(WireIntegrity::Crc32c).expect("frame verifies"),
            other => panic!("expected packet, got {other:?}"),
        }
    }

    fn send_ack(t: &ChannelTransport, src: u32, dest: u32, lane: u32, cum_seq: u64) {
        t.send_ack(
            gravel_net::Ack {
                src,
                dest,
                lane,
                cum_seq,
            }
            .seal(0, WireIntegrity::Crc32c),
        );
    }

    /// Ack every packet queued for `node`, returning them.
    fn ack_all(t: &ChannelTransport, node: u32) -> Vec<Packet> {
        let mut pkts = Vec::new();
        loop {
            match t.recv_data(node, Duration::from_millis(50)) {
                RecvStatus::Msg(f) => {
                    let p = f.open(WireIntegrity::Crc32c).expect("frame verifies");
                    send_ack(t, p.dest, p.src, p.lane, p.seq);
                    pkts.push(p);
                }
                _ => return pkts,
            }
        }
    }

    #[test]
    fn aggregator_routes_by_destination_and_flushes_on_close() {
        let (node, transport, errors) = spawn_node(3);
        for i in 0..5 {
            node.host_send(Message::inc(1, i, 1));
        }
        node.host_send(Message::put(2, 9, 9));
        node.queue.close();
        let handle = {
            let (node, transport, errors) = (node.clone(), transport.clone(), errors.clone());
            std::thread::spawn(move || {
                run(
                    node,
                    0,
                    transport,
                    1 << 20,
                    FlushPolicy::Fixed(Duration::from_millis(10)),
                    errors,
                )
            })
        };
        let p1 = recv(&transport, 1);
        assert_eq!(p1.words().len(), 5 * 4);
        assert_eq!((p1.lane, p1.seq), (0, 0));
        send_ack(&transport, 1, 0, 0, 0);
        let p2 = recv(&transport, 2);
        assert_eq!(p2.words().len(), 4);
        send_ack(&transport, 2, 0, 0, 0);
        handle.join().unwrap();
        assert!(!errors.is_set());
        let stats = node.stats().agg;
        assert_eq!(stats.packets, 2);
        assert_eq!(stats.messages, 6);
        assert_eq!(node.net_acks_received.get(), 2);
    }

    #[test]
    fn full_queue_flushes_before_close() {
        let (node, transport, errors) = spawn_node(2);
        // node_queue of 64 bytes → 2 messages per packet.
        let agg = {
            let (node, transport, errors) = (node.clone(), transport.clone(), errors.clone());
            std::thread::spawn(move || {
                run(
                    node,
                    0,
                    transport,
                    64,
                    FlushPolicy::Fixed(Duration::from_secs(10)),
                    errors,
                )
            })
        };
        for i in 0..4 {
            node.host_send(Message::inc(1, i, 1));
        }
        // Two full packets must arrive even though the queue stays open,
        // with consecutive sequence numbers.
        let a = recv(&transport, 1);
        let b = recv(&transport, 1);
        assert_eq!((a.len(), a.seq), (64, 0));
        assert_eq!((b.len(), b.seq), (64, 1));
        send_ack(&transport, 1, 0, 0, 1);
        node.queue.close();
        agg.join().unwrap();
    }

    #[test]
    fn timeout_flushes_partial_packet() {
        let (node, transport, errors) = spawn_node(2);
        let agg = {
            let (node, transport, errors) = (node.clone(), transport.clone(), errors.clone());
            std::thread::spawn(move || {
                run(
                    node,
                    0,
                    transport,
                    1 << 20,
                    FlushPolicy::Fixed(Duration::from_micros(100)),
                    errors,
                )
            })
        };
        node.host_send(Message::inc(1, 0, 1));
        // One lone message must arrive via the timeout path.
        let p = recv(&transport, 1);
        assert_eq!(p.words().len(), 4);
        send_ack(&transport, 1, 0, 0, p.seq);
        node.queue.close();
        agg.join().unwrap();
        assert_eq!(node.stats().agg.timeout_flushes, 1);
    }

    #[test]
    fn unacked_packets_are_retransmitted() {
        let (node, transport, errors) = spawn_node(2);
        node.host_send(Message::inc(1, 0, 1));
        node.queue.close();
        let agg = {
            let (node, transport, errors) = (node.clone(), transport.clone(), errors.clone());
            std::thread::spawn(move || {
                run(
                    node,
                    0,
                    transport,
                    1 << 20,
                    FlushPolicy::Fixed(Duration::from_millis(1)),
                    errors,
                )
            })
        };
        // Swallow the first copy without acking; a retransmit must come.
        let first = recv(&transport, 1);
        let second = recv(&transport, 1);
        assert_eq!(first.seq, second.seq);
        assert_eq!(first.words(), second.words());
        assert!(node.net_retransmits.get() >= 1);
        // Ack it so the drain phase can finish.
        send_ack(&transport, 1, 0, 0, second.seq);
        agg.join().unwrap();
        assert!(!errors.is_set());
    }

    #[test]
    fn retry_exhaustion_surfaces_as_error_not_hang() {
        let (node, transport, errors) = spawn_node(2);
        node.host_send(Message::inc(1, 0, 1));
        node.queue.close();
        let agg = {
            let (node, transport, errors) = (node.clone(), transport.clone(), errors.clone());
            std::thread::spawn(move || {
                run(
                    node,
                    0,
                    transport,
                    1 << 20,
                    FlushPolicy::Fixed(Duration::from_millis(1)),
                    errors,
                )
            })
        };
        // Never ack. The flow must exhaust its retries and die.
        agg.join().unwrap();
        assert!(errors.is_set());
        match errors.take() {
            Some(RuntimeError::RetryExhausted {
                src, dest, lane, ..
            }) => {
                assert_eq!((src, dest, lane), (0, 1, 0));
            }
            other => panic!("expected RetryExhausted, got {other:?}"),
        }
    }

    #[test]
    fn acked_flows_drain_cleanly_under_load() {
        let (node, transport, errors) = spawn_node(2);
        let acker = {
            let transport = transport.clone();
            std::thread::spawn(move || ack_all(&transport, 1))
        };
        // Aggregator first: 500 messages overflow the producer queue, so
        // the sends below need a live consumer.
        let agg = {
            let (node, transport, errors) = (node.clone(), transport.clone(), errors.clone());
            std::thread::spawn(move || {
                run(
                    node,
                    0,
                    transport,
                    64,
                    FlushPolicy::Fixed(Duration::from_millis(1)),
                    errors,
                )
            })
        };
        for i in 0..500 {
            node.host_send(Message::inc(1, i % 16, 1));
        }
        node.queue.close();
        agg.join().unwrap();
        let pkts = acker.join().unwrap();
        assert!(!errors.is_set());
        // A slow acker can trigger legitimate retransmissions; dedupe by
        // sequence number before checking delivery.
        let uniq: std::collections::BTreeMap<u64, usize> = pkts
            .iter()
            .map(|p| (p.seq, p.words().len() / 4))
            .collect();
        let msgs: usize = uniq.values().sum();
        assert_eq!(msgs, 500);
        // Sequence numbers are consecutive from 0.
        let seqs: Vec<u64> = uniq.keys().copied().collect();
        assert_eq!(seqs, (0..uniq.len() as u64).collect::<Vec<_>>());
    }
}
