//! Runtime statistics.
//!
//! Table 5 of the paper reports, per workload at eight nodes, the remote
//! access frequency and the average (aggregated) network message size;
//! §8.1 reports the aggregator's polling fraction. All three are derived
//! here from the per-node counters.

use gravel_gq::StatsSnapshot;
use gravel_net::FaultStats;
use gravel_pgas::AggStats;
use gravel_telemetry::RegistrySnapshot;

/// Delivery-protocol counters of one node (sender + receiver side).
///
/// On a reliable transport every field except `acks_*` stays zero; under
/// injected faults the retransmit/duplicate counters are the visible
/// evidence that the protocol actually did work (the fault-matrix tests
/// assert on exactly that).
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Packets retransmitted by this node's sender flows (go-back-N
    /// rounds × window occupancy).
    pub retransmits: u64,
    /// Duplicate packets this node's receiver suppressed (injected
    /// duplicates plus retransmissions of already-applied packets).
    pub dups_suppressed: u64,
    /// Acks sent by this node's network thread.
    pub acks_sent: u64,
    /// Acks received by this node's aggregator lanes.
    pub acks_received: u64,
    /// Sends that stalled because the bounded data channel stayed full
    /// for a whole attempt timeout.
    pub chan_stalls: u64,
    /// Sends parked because the go-back-N in-flight window was full.
    pub window_stalls: u64,
    /// Total backpressure signal: `chan_stalls + window_stalls`. Kept as
    /// a field (not a method) so existing struct literals and reports
    /// stay source-compatible.
    pub backpressure_stalls: u64,
    /// Out-of-order packets dropped because the reorder buffer was full;
    /// recovered by retransmission.
    pub ooo_dropped: u64,
    /// Busy-spin iterations in the runtime's idle loops before parking.
    pub spin_spins: u64,
    /// Times an idle runtime thread actually parked instead of spinning.
    pub spin_parks: u64,
    /// Inbound data frames dropped for failed verification (bad magic,
    /// version, kind, length, or CRC mismatch). Healed by go-back-N
    /// retransmission — corrupted ≡ lost.
    pub corrupt_dropped: u64,
    /// Inbound data frames dropped because they ended early.
    pub truncated: u64,
    /// Frames that verified but were addressed to someone else (fabric
    /// misrouting caught by the header's dest/src check).
    pub misrouted: u64,
    /// Ack frames discarded by this node's aggregators for failed
    /// verification.
    pub ack_corrupt_dropped: u64,
    /// CRC-clean messages diverted to the poison quarantine (semantic
    /// validation failures: unknown handler, out-of-range address, bad
    /// command word).
    pub quarantined: u64,
    /// Quarantined messages evicted to bound the buffer.
    pub quarantine_evicted: u64,
}

impl NetStats {
    /// All frames this node's receive path refused for integrity
    /// reasons (excludes quarantine, which is semantic, not integrity).
    pub fn total_integrity_drops(&self) -> u64 {
        self.corrupt_dropped + self.truncated + self.misrouted
    }
}

/// Request-reply counters of one node (the rpc ledger: see DESIGN.md
/// §15). The invariant the chaos acceptance reconciles is
/// `issued == completed + timeouts` after every sink resolves, with the
/// pending-reply table empty.
#[derive(Clone, Copy, Debug, Default)]
pub struct RpcStats {
    /// GETs + value-returning AM calls this node issued.
    pub issued: u64,
    /// Requests completed with a reply value.
    pub completed: u64,
    /// Requests evicted as timed out (surfaced to the caller as a
    /// deterministic completion error).
    pub timeouts: u64,
    /// Replies rejected by the post-restart generation guard.
    pub stale_rejected: u64,
    /// Replies whose token named no pending entry.
    pub orphan_replies: u64,
    /// Registrations refused because the pending-reply table was full.
    pub table_full: u64,
    /// Packets held back by exhausted per-band in-flight credits while
    /// go-back-N window room remained.
    pub credits_stalled: u64,
    /// Replies this node generated serving GETs and AM calls.
    pub replies_sent: u64,
}

/// Statistics of one node at shutdown (or snapshot time).
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    /// Node id.
    pub node: u32,
    /// Messages the GPU/host offloaded into the producer/consumer queue.
    pub offloaded: u64,
    /// Messages this node's network thread applied.
    pub applied: u64,
    /// Local PUTs executed directly by the GPU (never routed).
    pub local_direct: u64,
    /// Routed messages whose destination was this node (serialized
    /// atomics on local data).
    pub local_routed: u64,
    /// Routed messages destined for other nodes.
    pub remote_routed: u64,
    /// Aggregator per-destination queue statistics.
    pub agg: AggStats,
    /// Producer/consumer queue statistics.
    pub queue: StatsSnapshot,
    /// Aggregator polls that found the queue empty.
    pub agg_polls_empty: u64,
    /// Aggregator polls that found work.
    pub agg_polls_hit: u64,
    /// Delivery-protocol counters.
    pub net: NetStats,
    /// Request-reply counters.
    pub rpc: RpcStats,
}

impl NodeStats {
    /// Reconstruct node `node`'s statistics from a telemetry
    /// [`RegistrySnapshot`], reading the `node{N}.*` metric names that
    /// [`NodeShared::with_telemetry`](crate::node::NodeShared::with_telemetry)
    /// registers. This is the "typed view" direction of the migration:
    /// `NodeShared::stats()` and this function agree on a quiesced
    /// cluster (asserted by the migration-agreement test).
    pub fn from_snapshot(node: u32, snap: &RegistrySnapshot) -> Self {
        let c = |suffix: &str| snap.counter(&format!("node{node}.{suffix}"));
        let chan_stalls = c("net.chan_stalls");
        let window_stalls = c("net.window_stalls");
        NodeStats {
            node,
            offloaded: c("offloaded"),
            applied: c("applied"),
            local_direct: c("route.local_direct"),
            local_routed: c("route.local_routed"),
            remote_routed: c("route.remote_routed"),
            agg: AggStats {
                packets: c("agg.packets"),
                bytes: c("agg.bytes"),
                messages: c("agg.messages"),
                full_flushes: c("agg.full_flushes"),
                timeout_flushes: c("agg.timeout_flushes"),
            },
            queue: StatsSnapshot {
                producer_rmws: c("queue.producer_rmws"),
                producer_spins: c("queue.producer_spins"),
                consumer_rmws: c("queue.consumer_rmws"),
                consumer_empty_polls: c("queue.consumer_empty_polls"),
                consumer_hits: c("queue.consumer_hits"),
                messages_produced: c("queue.messages_produced"),
                messages_consumed: c("queue.messages_consumed"),
                slots_produced: c("queue.slots_produced"),
            },
            agg_polls_empty: c("agg.polls_empty"),
            agg_polls_hit: c("agg.polls_hit"),
            net: NetStats {
                retransmits: c("net.retransmits"),
                dups_suppressed: c("net.dups_suppressed"),
                acks_sent: c("net.acks_sent"),
                acks_received: c("net.acks_received"),
                chan_stalls,
                window_stalls,
                backpressure_stalls: chan_stalls + window_stalls,
                ooo_dropped: c("net.ooo_dropped"),
                spin_spins: c("net.spin_spins"),
                spin_parks: c("net.spin_parks"),
                corrupt_dropped: c("net.corrupt_dropped"),
                truncated: c("net.truncated"),
                misrouted: c("net.misrouted"),
                ack_corrupt_dropped: c("net.ack_corrupt_dropped"),
                quarantined: c("net.quarantined"),
                quarantine_evicted: c("net.quarantine_evicted"),
            },
            rpc: RpcStats {
                issued: c("rpc.issued"),
                completed: c("rpc.completed"),
                timeouts: c("rpc.timeouts"),
                stale_rejected: c("rpc.stale_rejected"),
                orphan_replies: c("rpc.orphan_replies"),
                table_full: c("rpc.table_full"),
                credits_stalled: c("rpc.credits_stalled"),
                replies_sent: c("rpc.replies_sent"),
            },
        }
    }

    /// Fraction of PGAS operations that touched a remote node —
    /// Table 5's "remote access frequency".
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_direct + self.local_routed + self.remote_routed;
        if total == 0 {
            return 0.0;
        }
        self.remote_routed as f64 / total as f64
    }

    /// Fraction of aggregator polls that found nothing — §8.1's
    /// "time spent polling" proxy.
    pub fn poll_fraction(&self) -> f64 {
        let total = self.agg_polls_empty + self.agg_polls_hit;
        if total == 0 {
            return 0.0;
        }
        self.agg_polls_empty as f64 / total as f64
    }
}

/// Fault-tolerance counters of the whole cluster (see DESIGN.md §11).
/// All zero on an undisturbed run.
#[derive(Clone, Copy, Debug, Default)]
pub struct HaStats {
    /// Worker threads restarted by the supervisor after a panic.
    pub restarts: u64,
    /// Nodes restored from an epoch checkpoint.
    pub recoveries: u64,
    /// Peers declared dead by phi-accrual failure detectors (counted per
    /// observer, so one dead node in an N-node cluster counts N-1 times).
    pub deaths_declared: u64,
    /// Epoch cuts taken.
    pub epochs: u64,
    /// Stuck-pipeline warnings emitted by a spinning `quiesce()`.
    pub quiesce_warnings: u64,
}

impl HaStats {
    /// Read the `ha.*` counters out of a telemetry snapshot.
    pub fn from_snapshot(snap: &RegistrySnapshot) -> Self {
        HaStats {
            restarts: snap.counter("ha.restarts"),
            recoveries: snap.counter("ha.recoveries"),
            deaths_declared: snap.counter("ha.deaths_declared"),
            epochs: snap.counter("ha.epochs"),
            quiesce_warnings: snap.counter("ha.quiesce_warnings"),
        }
    }
}

/// Whole-cluster statistics.
#[derive(Clone, Debug, Default)]
pub struct RuntimeStats {
    /// One entry per node.
    pub nodes: Vec<NodeStats>,
    /// Faults the transport injected (all zero on a reliable transport).
    pub faults: FaultStats,
    /// Fault-tolerance activity (restarts, recoveries, declared deaths).
    pub ha: HaStats,
}

impl RuntimeStats {
    /// Cluster-wide remote access frequency.
    pub fn remote_fraction(&self) -> f64 {
        let (remote, total) = self.nodes.iter().fold((0u64, 0u64), |(r, t), n| {
            (
                r + n.remote_routed,
                t + n.local_direct + n.local_routed + n.remote_routed,
            )
        });
        if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        }
    }

    /// Cluster-wide average network packet size in bytes (Table 5).
    pub fn avg_packet_bytes(&self) -> f64 {
        let (bytes, packets) = self.nodes.iter().fold((0u64, 0u64), |(b, p), n| {
            (b + n.agg.bytes, p + n.agg.packets)
        });
        if packets == 0 {
            0.0
        } else {
            bytes as f64 / packets as f64
        }
    }

    /// Total messages offloaded across the cluster.
    pub fn total_offloaded(&self) -> u64 {
        self.nodes.iter().map(|n| n.offloaded).sum()
    }

    /// Total messages applied across the cluster.
    pub fn total_applied(&self) -> u64 {
        self.nodes.iter().map(|n| n.applied).sum()
    }

    /// Total packets retransmitted across the cluster.
    pub fn total_retransmits(&self) -> u64 {
        self.nodes.iter().map(|n| n.net.retransmits).sum()
    }

    /// Total duplicate packets suppressed across the cluster.
    pub fn total_dups_suppressed(&self) -> u64 {
        self.nodes.iter().map(|n| n.net.dups_suppressed).sum()
    }

    /// Total backpressure stalls across the cluster.
    pub fn total_backpressure_stalls(&self) -> u64 {
        self.nodes.iter().map(|n| n.net.backpressure_stalls).sum()
    }

    /// Total data frames refused for integrity reasons across the
    /// cluster (corrupt + truncated + misrouted).
    pub fn total_integrity_drops(&self) -> u64 {
        self.nodes.iter().map(|n| n.net.total_integrity_drops()).sum()
    }

    /// Total frames dropped for CRC/structure failures.
    pub fn total_corrupt_dropped(&self) -> u64 {
        self.nodes.iter().map(|n| n.net.corrupt_dropped).sum()
    }

    /// Total messages quarantined across the cluster.
    pub fn total_quarantined(&self) -> u64 {
        self.nodes.iter().map(|n| n.net.quarantined).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_fraction_single_node() {
        let n = NodeStats {
            local_direct: 10,
            local_routed: 10,
            remote_routed: 60,
            ..Default::default()
        };
        assert!((n.remote_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(NodeStats::default().remote_fraction(), 0.0);
    }

    #[test]
    fn cluster_aggregation() {
        let mut s = RuntimeStats::default();
        s.nodes.push(NodeStats {
            remote_routed: 7,
            local_direct: 1,
            offloaded: 8,
            ..Default::default()
        });
        s.nodes.push(NodeStats {
            remote_routed: 0,
            local_routed: 2,
            applied: 5,
            ..Default::default()
        });
        assert!((s.remote_fraction() - 0.7).abs() < 1e-12);
        assert_eq!(s.total_offloaded(), 8);
        assert_eq!(s.total_applied(), 5);
    }

    #[test]
    fn poll_fraction() {
        let n = NodeStats {
            agg_polls_empty: 65,
            agg_polls_hit: 35,
            ..Default::default()
        };
        assert!((n.poll_fraction() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn avg_packet_bytes_handles_empty() {
        assert_eq!(RuntimeStats::default().avg_packet_bytes(), 0.0);
    }

    #[test]
    fn net_counters_aggregate() {
        let mut s = RuntimeStats::default();
        s.nodes.push(NodeStats {
            net: NetStats {
                retransmits: 3,
                dups_suppressed: 1,
                ..Default::default()
            },
            ..Default::default()
        });
        s.nodes.push(NodeStats {
            net: NetStats {
                retransmits: 2,
                backpressure_stalls: 9,
                ..Default::default()
            },
            ..Default::default()
        });
        assert_eq!(s.total_retransmits(), 5);
        assert_eq!(s.total_dups_suppressed(), 1);
        assert_eq!(s.total_backpressure_stalls(), 9);
        assert!(s.faults.is_clean());
    }
}
