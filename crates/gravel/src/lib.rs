//! # gravel-core — the Gravel runtime
//!
//! A Rust reproduction of **Gravel** (Orr et al., SC'17): fine-grain
//! GPU-initiated network messages with CPU-side aggregation.
//!
//! GPU work-items call PGAS operations (`shmem_put`, `shmem_inc`, active
//! messages) from arbitrary — even divergent — kernel code. Messages flow
//! through a GPU-efficient producer/consumer queue (one atomic reservation
//! per work-group, coalesced payload writes) to a per-node **aggregator**
//! CPU thread, which repacks them into 64 kB per-destination queues sent
//! when full or after 125 µs. A **network thread** at each destination
//! applies arriving messages as local memory operations and serializes
//! all atomics.
//!
//! The crate hosts the whole cluster in one process (nodes are thread
//! groups, links are channels), which exercises the paper's exact code
//! path — queue → aggregator → network thread → remote symmetric heap —
//! with real shared-memory synchronization between the (software) GPU and
//! the CPU threads. Multi-node *timing* is the business of the
//! `gravel-cluster` simulator; this runtime is for correctness, API, and
//! the queue-level microbenchmarks.
//!
//! Start at [`GravelRuntime`] and [`GravelCtx`].

pub mod aggregator;
pub mod backoff;
pub mod config;
pub mod ctx;
pub mod error;
pub mod governor;
pub mod ha;
pub mod netthread;
pub mod node;
pub mod rings;
pub mod rpc;
pub mod runtime;
pub mod stats;

pub use config::GravelConfig;
pub use ctx::GravelCtx;
pub use error::{ErrorSlot, RuntimeError};
pub use governor::{GovernorConfig, LaneGovernor};
pub use ha::{
    Checkpoint, EpochSnapshot, FailureDetector, HaConfig, HeartbeatConfig, LeaseState, PeerStatus,
    ReplayLog, Supervisor, SupervisorConfig, VoteLedger, WorkerKind,
};
pub use node::NodeShared;
pub use rings::ShardedRings;
pub use rpc::{PendingReplies, RpcConfig, RpcError};
pub use runtime::GravelRuntime;
pub use stats::{HaStats, NetStats, NodeStats, RpcStats, RuntimeStats};

// Re-export the layers callers routinely need alongside the runtime.
pub use gravel_gq as gq;
pub use gravel_gq::{Band, ReplySink, ReplyState, RpcFailure, TrafficClass};
pub use gravel_net as net;
pub use gravel_net::{
    ChaosPlan, FaultConfig, FaultStats, ProcessFault, RetryConfig, TransportKind,
};
pub use gravel_pgas as pgas;
pub use gravel_pgas::{
    AdaptiveFlush, FlushPolicy, FrameError, Quarantine, QuarantineReason, QuarantinedMessage,
    WireIntegrity,
};
pub use gravel_simt as simt;
pub use gravel_telemetry as telemetry;
pub use gravel_telemetry::{Registry, RegistrySnapshot, Sampler, TelemetryConfig, Tracer};
