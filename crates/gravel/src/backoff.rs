//! Spin-then-park backoff for the runtime's wait loops.
//!
//! The aggregator idle path, quiesce polling, and test wait loops used to
//! burn cores in `yield_now()` spins. [`Backoff`] centralizes the
//! escalation policy: a short busy-spin window (cheap when work arrives
//! within microseconds, which is the common case on the hot path), then
//! exponentially growing sleeps bounded by a cap so wakeup latency stays
//! predictable. Callers with a real wakeup channel (the GPU ring's
//! [`WaitCell`](gravel_gq::WaitCell)) park there instead and use
//! [`Backoff`] only to decide *when* to stop spinning.

use std::time::{Duration, Instant};

/// How long to busy-spin before the first park.
const SPIN_LIMIT: u32 = 64;
/// First park duration; doubles per park up to the caller's cap.
const PARK_BASE: Duration = Duration::from_micros(10);

/// Escalating spin-then-park state. Create one per wait; call
/// [`reset`](Self::reset) whenever work is found.
pub struct Backoff {
    spins: u32,
    park: Duration,
    cap: Duration,
}

impl Backoff {
    /// A backoff whose park durations never exceed `cap`.
    pub fn new(cap: Duration) -> Self {
        Backoff {
            spins: 0,
            park: PARK_BASE,
            cap: cap.max(PARK_BASE),
        }
    }

    /// Work was found — return to the cheap spinning regime.
    pub fn reset(&mut self) {
        self.spins = 0;
        self.park = PARK_BASE;
    }

    /// Still spinning (true) or time to park (false)?
    pub fn should_spin(&mut self) -> bool {
        if self.spins < SPIN_LIMIT {
            self.spins += 1;
            std::hint::spin_loop();
            true
        } else {
            false
        }
    }

    /// The next park duration, escalating 10 µs → 20 µs → ... → cap.
    /// Callers park on their wakeup channel for this long (or plain
    /// `sleep` when no channel exists).
    pub fn next_park(&mut self) -> Duration {
        let d = self.park;
        self.park = (self.park * 2).min(self.cap);
        d
    }

    /// Park by sleeping (no wakeup channel). Returns the duration slept.
    pub fn park_sleep(&mut self) -> Duration {
        let d = self.next_park();
        std::thread::sleep(d);
        d
    }
}

/// Wait until `ready()` holds or `deadline` passes, spinning briefly and
/// then sleeping in escalating steps (bounded by `cap`). Returns whether
/// `ready()` held. The runtime's replacement for `while !ready() {
/// yield_now() }` test loops.
pub fn wait_until(deadline: Instant, cap: Duration, mut ready: impl FnMut() -> bool) -> bool {
    let mut bo = Backoff::new(cap);
    loop {
        if ready() {
            return true;
        }
        if Instant::now() >= deadline {
            return ready();
        }
        if !bo.should_spin() {
            bo.park_sleep();
        }
    }
}

/// [`wait_until`] with a timeout from now and a 200 µs park cap — the
/// common shape for test assertions ("the ack arrives within 2 s").
pub fn wait_for(timeout: Duration, ready: impl FnMut() -> bool) -> bool {
    wait_until(Instant::now() + timeout, Duration::from_micros(200), ready)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn parks_escalate_to_the_cap_and_reset() {
        let mut bo = Backoff::new(Duration::from_micros(100));
        while bo.should_spin() {}
        assert_eq!(bo.next_park(), Duration::from_micros(10));
        assert_eq!(bo.next_park(), Duration::from_micros(20));
        for _ in 0..10 {
            bo.next_park();
        }
        assert_eq!(bo.next_park(), Duration::from_micros(100), "capped");
        bo.reset();
        assert_eq!(bo.next_park(), Duration::from_micros(10));
        assert!(bo.should_spin(), "reset restores the spin window");
    }

    #[test]
    fn wait_for_sees_a_flag_flipped_by_another_thread() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            f2.store(true, Ordering::Release);
        });
        assert!(wait_for(Duration::from_secs(5), || flag.load(Ordering::Acquire)));
        t.join().unwrap();
    }

    #[test]
    fn wait_for_gives_up_at_the_deadline() {
        let start = Instant::now();
        assert!(!wait_for(Duration::from_millis(10), || false));
        assert!(start.elapsed() >= Duration::from_millis(10));
    }
}
