//! The network thread (paper §6).
//!
//! "All network requests are funneled through a dedicated network thread.
//! Upon receiving a per-node queue, the network thread iterates through
//! each message and resolves it as a local memory operation." Because
//! *every* atomic — including local ones — routes through this thread,
//! atomics are serialized per node, which both simplifies active messages
//! and (on the paper's hardware) beats concurrent read-modify-writes.

use std::sync::Arc;

use crossbeam::channel::Receiver;
use gravel_pgas::{apply_words, Packet};

use crate::node::NodeShared;

/// Run the receive-and-apply loop until every sender disconnects. This is
/// the body of each node's network thread.
pub fn run(node: Arc<NodeShared>, rx: Receiver<Packet>) {
    // Blocking receive: the thread sleeps when no packets are in flight,
    // modelling an interrupt-driven MPI progress thread.
    while let Ok(pkt) = rx.recv() {
        let words = pkt.words();
        // Replying handlers re-enter the node's own Gravel path: the
        // reply is enqueued like any GPU-initiated message (and counted
        // for quiescence *before* this packet counts as applied, so
        // `quiesce` cannot return with replies still in flight).
        let node_ref = &node;
        let (applied, _shutdown) = apply_words(&words, &node.heap, &node.ams, &mut |m| {
            node_ref.host_send(m);
        });
        node.note_applied(applied as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GravelConfig;
    use crossbeam::channel::unbounded;
    use gravel_gq::Message;
    use gravel_pgas::AmRegistry;

    #[test]
    fn applies_packets_in_arrival_order() {
        let cfg = GravelConfig::small(1, 8);
        let (tx, rx) = unbounded();
        let node = Arc::new(NodeShared::new(0, &cfg, Arc::new(AmRegistry::new())));
        let handle = {
            let node = node.clone();
            std::thread::spawn(move || run(node, rx))
        };
        let mut words = Vec::new();
        words.extend(Message::put(0, 2, 7).encode());
        words.extend(Message::inc(0, 2, 3).encode());
        tx.send(Packet::from_words(0, 0, &words)).unwrap();
        drop(tx);
        handle.join().unwrap();
        assert_eq!(node.heap.load(2), 10);
        assert_eq!(node.applied.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn serialized_active_messages_run_exclusively() {
        // Two packets of active messages from different "senders" are
        // applied by the single network thread; a non-atomic
        // read-modify-write handler still produces an exact total because
        // application is serialized.
        let cfg = GravelConfig::small(1, 2);
        let mut ams = AmRegistry::new();
        let id = ams.register(Box::new(|h, a, v| {
            let old = h.load(a); // deliberately non-atomic RMW
            h.store(a, old + v);
        }));
        let (tx, rx) = unbounded();
        let node = Arc::new(NodeShared::new(0, &cfg, Arc::new(ams)));
        let handle = {
            let node = node.clone();
            std::thread::spawn(move || run(node, rx))
        };
        for _ in 0..10 {
            let mut words = Vec::new();
            for _ in 0..50 {
                words.extend(Message::active(0, id, 0, 1).encode());
            }
            tx.send(Packet::from_words(0, 0, &words)).unwrap();
        }
        drop(tx);
        handle.join().unwrap();
        assert_eq!(node.heap.load(0), 500);
    }

    #[test]
    fn exits_when_all_senders_drop() {
        let cfg = GravelConfig::small(1, 2);
        let (tx, rx) = unbounded();
        let node = Arc::new(NodeShared::new(0, &cfg, Arc::new(AmRegistry::new())));
        let handle = std::thread::spawn(move || run(node, rx));
        drop(tx);
        handle.join().unwrap();
    }
}
