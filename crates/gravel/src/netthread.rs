//! The network thread (paper §6) — now also the receiver half of the
//! delivery protocol.
//!
//! "All network requests are funneled through a dedicated network thread.
//! Upon receiving a per-node queue, the network thread iterates through
//! each message and resolves it as a local memory operation." Because
//! *every* atomic — including local ones — routes through this thread,
//! atomics are serialized per node, which both simplifies active messages
//! and (on the paper's hardware) beats concurrent read-modify-writes.
//!
//! On top of applying packets, the thread enforces exactly-once in-order
//! delivery per flow `(src, lane)`: packets below the expected sequence
//! number are duplicates (counted and re-acked, which heals lost acks);
//! packets above it are parked in a bounded reorder buffer until the gap
//! fills (go-back-N retransmission fills it if the missing packet was
//! dropped). Every accepted or duplicate packet triggers a cumulative
//! ack back to the sending lane.
//!
//! Before any of that, every inbound frame is *verified* (DESIGN.md
//! §13): magic, version, kind, length, and CRC32C are checked before a
//! single payload byte is decoded. A frame that fails verification is
//! counted (`net.corrupt_dropped` / `net.truncated`) and dropped — to
//! the delivery protocol a corrupted frame is indistinguishable from a
//! lost one, so go-back-N retransmission heals it. A frame that
//! verifies but names the wrong destination is counted
//! (`net.misrouted`) and dropped the same way. Messages that pass the
//! CRC but fail *semantic* validation (unknown handler, out-of-range
//! address, undecodable command word) divert to the node's bounded
//! quarantine instead of panicking; the rest of their packet still
//! applies.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use gravel_gq::{Command, Message};
use gravel_net::{Ack, ChaosPlan, RecvStatus, Transport};
use gravel_pgas::{apply, Applied, Packet, QuarantineReason, QuarantinedMessage};

use crate::error::ErrorSlot;
use crate::node::NodeShared;

/// Receive poll interval; bounds how quickly the thread notices shutdown
/// or a cluster-wide error.
const RECV_TIMEOUT: Duration = Duration::from_millis(1);

/// Maximum out-of-order packets buffered per flow. Packets beyond this
/// are dropped (and recovered by the sender's retransmission), bounding
/// receiver memory under pathological reordering.
const OOO_BUFFER_CAP: usize = 256;

/// Receiver-side state of one flow.
#[derive(Default)]
struct FlowState {
    /// Next sequence number to apply.
    expected: u64,
    /// Out-of-order packets keyed by sequence number.
    ooo: BTreeMap<u64, Packet>,
    /// Message index inside the in-sequence packet currently being
    /// applied. Nonzero only while a restarted thread still owes the
    /// tail of a packet whose predecessor died mid-apply; the go-back-N
    /// retransmission of that packet (seq == `expected`) resumes here.
    resume_at: usize,
}

/// Restartable receiver state of one node's network thread, hoisted out
/// of the thread (like the aggregator's `LaneState`) so a supervised
/// restart keeps exactly-once delivery: sequence expectations, reorder
/// buffers, and mid-packet resume cursors all survive the thread.
pub struct RecvState {
    flows: HashMap<(u32, u32), FlowState>,
}

impl RecvState {
    pub fn new() -> Self {
        RecvState {
            flows: HashMap::new(),
        }
    }

    /// Forget mid-packet progress (epoch recovery: the heap was just
    /// rewritten wholesale, so any partially applied packet must
    /// re-apply from its first message when retransmitted). Sequence
    /// expectations and reorder buffers are deliberately preserved —
    /// resetting those would turn retransmissions into duplicates or
    /// wedge the flow.
    pub fn reset_resume_cursors(&mut self) {
        for flow in self.flows.values_mut() {
            flow.resume_at = 0;
        }
    }

    /// Snapshot every flow's next-expected sequence number as
    /// `(src, lane, expected)` triples — the receiver half of an epoch
    /// checkpoint. Taken under the state lock, so it is consistent
    /// with the heap (no packet is mid-apply).
    pub fn flow_cursors(&self) -> Vec<(u32, u32, u64)> {
        self.flows
            .iter()
            .map(|(&(src, lane), f)| (src, lane, f.expected))
            .collect()
    }

    /// Restore a flow's next-expected sequence number (process
    /// recovery: a restarted node replays its checkpoint + forwarded
    /// log, then seeds the cursors so retransmissions of
    /// already-applied packets dup-suppress instead of re-applying).
    /// Must be called before the network thread starts consuming.
    pub fn seed_flow(&mut self, src: u32, lane: u32, expected: u64) {
        let flow = self.flows.entry((src, lane)).or_default();
        flow.expected = expected;
        flow.resume_at = 0;
        flow.ooo.clear();
    }
}

/// Receiver-side hook invoked for every fully applied packet, *while
/// the receive-state lock is still held and before the cumulative ack
/// is sent*. That ordering is what makes crash-consistent replay
/// forwarding possible: a node that forwards the packet to its buddy
/// inside the tap knows the forward was written before the sender
/// could ever see the ack, so an acked packet is never missing from
/// the buddy's log (forward-before-ack).
pub trait PacketTap: Send + Sync {
    fn on_packet_applied(&self, pkt: &Packet);
}

/// Receiver-side hook consulted for every accepted in-sequence packet
/// *before* it applies, while the receive-state lock is held. Returning
/// `None` applies the packet unchanged (the hot-path common case, no
/// copy); returning `Some(replacement)` applies the replacement
/// instead — same flow identity (src, lane, seq), possibly fewer
/// messages. Messages the gate removed are the gate's responsibility:
/// the elastic reshard layer bounces them back to their sender with the
/// current shard map rather than dropping them. The packet's sequence
/// number is consumed and acked either way, and the [`PacketTap`]
/// observes the *replacement*, so a buddy forward log only ever holds
/// words that actually applied here.
///
/// The gate runs again if a supervised thread restart re-presents the
/// same sequence number mid-apply, so its decision must be
/// deterministic for a given (packet, installed map) pair; the
/// multi-process runtime only changes maps at epoch boundaries and
/// resets resume cursors on process recovery, which keeps the pair
/// stable across every replay path.
pub trait ApplyGate: Send + Sync {
    fn filter(&self, pkt: &Packet) -> Option<Packet>;
}

impl Default for RecvState {
    fn default() -> Self {
        RecvState::new()
    }
}

fn lock_recv(state: &Mutex<RecvState>) -> MutexGuard<'_, RecvState> {
    state.lock().unwrap_or_else(|p| p.into_inner())
}

/// Flushes a batch of applied-message counts on drop — including the
/// unwind of a chaos panic, so the quiescence counters stay exact at
/// every message boundary without paying one fenced counter add per
/// message on the hot path.
struct ApplyGuard<'a> {
    node: &'a NodeShared,
    done: u64,
}

impl Drop for ApplyGuard<'_> {
    fn drop(&mut self) {
        if self.done > 0 {
            self.node.note_applied(self.done);
        }
    }
}

/// Apply one in-sequence packet to the node's heap, one message at a
/// time, starting at `*resume_at` (0 for a fresh packet). Messages are
/// decoded straight out of the packet's byte payload (no intermediate
/// `Vec` — this loop is the receive hot path, see
/// `crates/pgas/tests/zero_alloc.rs`). Disposed messages count toward
/// quiescence in one batch when the packet finishes *or* the thread
/// unwinds, and the cursor advances per message, so a panic at any
/// message boundary — the only place injected chaos fires — loses and
/// double-counts nothing: the retransmitted packet resumes at the
/// cursor. Batching never fakes quiescence: replies a handler enqueues
/// inflate `offloaded` before the batch lands in `applied`, so the
/// counters cannot balance mid-packet. On completion the whole packet
/// is appended to the node's replay log (if checkpointing) and the
/// cursor returns to 0; an interrupted packet is *not* logged — its
/// completed retransmission will be.
fn apply_packet(node: &NodeShared, pkt: &Packet, resume_at: &mut usize, chaos: Option<&ChaosPlan>) {
    let _span = node.tracer.span("net.apply", "apply", node.id);
    if *resume_at == 0 {
        node.packet_latency
            .record(pkt.born.elapsed().as_nanos() as u64);
    }
    #[cfg(debug_assertions)]
    {
        // The borrowing decode and the allocating decode must agree —
        // `words()` stays the reference semantics (tests, replay).
        let words = pkt.words();
        for i in 0..pkt.msg_count() {
            debug_assert_eq!(
                pkt.msg_words(i).as_slice(),
                &words[i * gravel_gq::MSG_ROWS..(i + 1) * gravel_gq::MSG_ROWS],
                "zero-copy packet decode diverged from Packet::words()"
            );
        }
    }
    let total = pkt.msg_count();
    if *resume_at == 0 && !pkt.len().is_multiple_of(gravel_gq::MSG_BYTES) {
        // A partial trailing message can only arrive with integrity off
        // (a CRC'd frame with a short tail fails verification first).
        // Quarantine the fragment as evidence; it was never a counted
        // message, so it does not dispose toward quiescence.
        let mut words = [0u64; gravel_gq::MSG_ROWS];
        let tail = &pkt.payload[total * gravel_gq::MSG_BYTES..];
        for (row, chunk) in tail.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            words[row] = u64::from_le_bytes(b);
        }
        node.quarantine.push(QuarantinedMessage {
            src: pkt.src,
            lane: pkt.lane,
            seq: pkt.seq,
            index: total,
            words,
            reason: QuarantineReason::PartialPayload,
        });
    }
    let mut batch = ApplyGuard { node, done: 0 };
    while *resume_at < total {
        if let Some(c) = chaos {
            if c.net_tick(node.id) {
                panic!(
                    "chaos: net thread {} killed at injected apply step",
                    node.id
                );
            }
        }
        // Unlike `apply_words` (the replay path, where undecodable words
        // are skipped uncounted because the log predates validation),
        // the live path quarantines every poison message — undecodable
        // command words and semantic rejections alike — and counts it
        // disposed: it was offloaded as a message, so quiescence must
        // see it retired exactly once.
        let words = pkt.msg_words(*resume_at);
        if let Some(msg) = Message::decode(words) {
            // Replies consume their pending-table entry instead of
            // touching the heap; the table itself counts stale and
            // orphan tokens, so a replayed reply is harmless here.
            if matches!(msg.command, Command::Reply) {
                node.rpc.complete(msg.addr, msg.value);
                batch.done += 1;
                *resume_at += 1;
                continue;
            }
            // Replying handlers re-enter the node's own Gravel path: the
            // reply is enqueued like any GPU-initiated message (and
            // counted for quiescence before this message's batch lands,
            // so `quiesce` cannot return with replies in flight).
            match apply(&msg, pkt.src, &node.heap, &node.ams, &mut |m| {
                if matches!(m.command, Command::Reply) {
                    node.rpc_replies_sent.add(1);
                }
                node.host_send(m)
            }) {
                Applied::Done => batch.done += 1,
                Applied::Rejected(reason) => {
                    batch.done += 1;
                    node.quarantine.push(QuarantinedMessage {
                        src: pkt.src,
                        lane: pkt.lane,
                        seq: pkt.seq,
                        index: *resume_at,
                        words,
                        reason,
                    });
                }
                Applied::Shutdown => break,
            }
        } else {
            batch.done += 1;
            node.quarantine.push(QuarantinedMessage {
                src: pkt.src,
                lane: pkt.lane,
                seq: pkt.seq,
                index: *resume_at,
                words,
                reason: QuarantineReason::BadCommand,
            });
        }
        *resume_at += 1;
    }
    drop(batch);
    if let Some(log) = &node.replay {
        log.append(&pkt.words());
    }
    *resume_at = 0;
}

/// Run the receive-and-apply loop until the transport closes (or the
/// cluster fails). This is the body of each node's network thread.
pub fn run(node: Arc<NodeShared>, transport: Arc<dyn Transport>, errors: Arc<ErrorSlot>) {
    let state = Arc::new(Mutex::new(RecvState::new()));
    run_supervised(node, transport, errors, state, None);
}

/// [`run`] with receiver state hoisted into `state` for supervised
/// restart, and optional process-fault injection from `chaos`. The
/// receive wait happens *without* the state lock (recovery and
/// diagnostics may inspect the state while the thread idles); the lock
/// is taken per delivered packet.
pub fn run_supervised(
    node: Arc<NodeShared>,
    transport: Arc<dyn Transport>,
    errors: Arc<ErrorSlot>,
    state: Arc<Mutex<RecvState>>,
    chaos: Option<Arc<ChaosPlan>>,
) {
    run_with_tap(node, transport, errors, state, chaos, None)
}

/// [`run_supervised`] plus an optional [`PacketTap`] observing every
/// fully applied packet before its ack leaves (the multi-process
/// runtime forwards packets to a buddy node here).
pub fn run_with_tap(
    node: Arc<NodeShared>,
    transport: Arc<dyn Transport>,
    errors: Arc<ErrorSlot>,
    state: Arc<Mutex<RecvState>>,
    chaos: Option<Arc<ChaosPlan>>,
    tap: Option<Arc<dyn PacketTap>>,
) {
    run_with_gate(node, transport, errors, state, chaos, tap, None)
}

/// Gate (if any), apply, then tap (if any) — one accepted in-sequence
/// packet, receive-state lock held by the caller. The tap sees exactly
/// what applied: the gate's replacement when it filtered, the original
/// otherwise.
#[allow(clippy::too_many_arguments)]
fn gate_apply_tap(
    node: &NodeShared,
    pkt: &Packet,
    resume_at: &mut usize,
    chaos: Option<&ChaosPlan>,
    gate: Option<&Arc<dyn ApplyGate>>,
    tap: Option<&Arc<dyn PacketTap>>,
) {
    match gate.and_then(|g| g.filter(pkt)) {
        Some(repl) => {
            apply_packet(node, &repl, resume_at, chaos);
            if let Some(t) = tap {
                t.on_packet_applied(&repl);
            }
        }
        None => {
            apply_packet(node, pkt, resume_at, chaos);
            if let Some(t) = tap {
                t.on_packet_applied(pkt);
            }
        }
    }
}

/// [`run_with_tap`] plus an optional [`ApplyGate`] filtering every
/// accepted packet before it applies (the elastic reshard layer
/// bounces no-longer-owned messages here).
pub fn run_with_gate(
    node: Arc<NodeShared>,
    transport: Arc<dyn Transport>,
    errors: Arc<ErrorSlot>,
    state: Arc<Mutex<RecvState>>,
    chaos: Option<Arc<ChaosPlan>>,
    tap: Option<Arc<dyn PacketTap>>,
    gate: Option<Arc<dyn ApplyGate>>,
) {
    let mut last_sweep = Instant::now();
    loop {
        // Evict overdue pending-reply entries so a GET whose reply was
        // lost (or whose server died) fails deterministically instead
        // of parking its waiter forever. Throttled to the receive poll
        // interval so the table lock stays off the apply hot path.
        let now = Instant::now();
        if now.duration_since(last_sweep) >= RECV_TIMEOUT {
            node.rpc.sweep(now);
            last_sweep = now;
        }
        let frame = match transport.recv_data(node.id, RECV_TIMEOUT) {
            RecvStatus::Msg(frame) => frame,
            RecvStatus::TimedOut => {
                if errors.is_set() {
                    return;
                }
                continue;
            }
            RecvStatus::Closed => return,
        };
        // Verify before decoding a single byte. A frame that fails is
        // dropped: corrupted ≡ lost, and the sender's go-back-N window
        // retransmits it. Truncations are classified separately so the
        // fault sweep can tell a cut cable from a scrambled one.
        let pkt = match frame.open(node.wire_integrity) {
            Ok(pkt) => pkt,
            Err(e) => {
                if e.is_truncation() {
                    node.net_truncated.add(1);
                } else {
                    node.net_corrupt_dropped.add(1);
                }
                continue;
            }
        };
        // The header's verified (src, dest) outranks the fabric's
        // routing stamp: a frame delivered to the wrong node — or one
        // naming an impossible peer, which only a CRC-off mangle can
        // produce — is dropped before it can index any per-peer state.
        if pkt.dest != node.id || pkt.src as usize >= node.nodes {
            node.net_misrouted.add(1);
            continue;
        }
        let mut st = lock_recv(&state);
        let flow = st.flows.entry((pkt.src, pkt.lane)).or_default();
        if pkt.seq < flow.expected {
            // Duplicate (injected, or a retransmission of an applied
            // packet whose ack was lost). Re-ack so the sender advances.
            node.net_dups_suppressed.add(1);
        } else if pkt.seq > flow.expected {
            // Out of order: park it if the buffer has room (go-back-N
            // retransmission recovers it otherwise), then ack what we
            // actually have.
            if flow.ooo.len() < OOO_BUFFER_CAP {
                flow.ooo.entry(pkt.seq).or_insert(pkt.clone());
            } else {
                node.net_ooo_dropped.add(1);
            }
        } else {
            gate_apply_tap(
                &node,
                &pkt,
                &mut flow.resume_at,
                chaos.as_deref(),
                gate.as_ref(),
                tap.as_ref(),
            );
            flow.expected += 1;
            // Drain any buffered successors the gap was hiding. A panic
            // mid-drain loses the popped packet but not its messages:
            // `expected` was not yet advanced past it, so the sender's
            // go-back-N retransmission redelivers it in sequence.
            while let Some(next) = flow.ooo.remove(&flow.expected) {
                gate_apply_tap(
                    &node,
                    &next,
                    &mut flow.resume_at,
                    chaos.as_deref(),
                    gate.as_ref(),
                    tap.as_ref(),
                );
                flow.expected += 1;
            }
        }
        // Cumulative ack: everything below `expected` is applied. Acks
        // are best-effort (the mailbox may be full, the link may drop
        // them) — retransmission plus re-acking makes that safe.
        if flow.expected > 0 {
            transport.send_ack(
                Ack {
                    src: node.id,
                    dest: pkt.src,
                    lane: pkt.lane,
                    cum_seq: flow.expected - 1,
                }
                .seal(node.wire_epoch.load(Ordering::Relaxed), node.wire_integrity),
            );
            node.net_acks_sent.add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GravelConfig;
    use gravel_gq::Message;
    use gravel_net::ChannelTransport;
    use gravel_pgas::{AmRegistry, DataFrame, WireIntegrity};

    fn setup(registry: AmRegistry) -> (Arc<NodeShared>, Arc<ChannelTransport>, Arc<ErrorSlot>) {
        let cfg = GravelConfig::small(1, 8);
        let node = Arc::new(NodeShared::new(0, &cfg, Arc::new(registry)));
        let transport = Arc::new(ChannelTransport::new(1, 1, 64));
        (node, transport, Arc::new(ErrorSlot::default()))
    }

    fn spawn(
        node: &Arc<NodeShared>,
        transport: &Arc<ChannelTransport>,
        errors: &Arc<ErrorSlot>,
    ) -> std::thread::JoinHandle<()> {
        let (node, transport, errors) = (node.clone(), transport.clone(), errors.clone());
        std::thread::spawn(move || run(node, transport, errors))
    }

    fn frame(lane: u32, seq: u64, words: &[u64]) -> DataFrame {
        let mut p = Packet::from_words(0, 0, words);
        p.lane = lane;
        p.seq = seq;
        p.seal(0, WireIntegrity::Crc32c)
    }

    fn packet(seq: u64, words: &[u64]) -> DataFrame {
        frame(0, seq, words)
    }

    #[test]
    fn applies_packets_and_acks_cumulatively() {
        let (node, transport, errors) = setup(AmRegistry::new());
        let handle = spawn(&node, &transport, &errors);
        let mut words = Vec::new();
        words.extend(Message::put(0, 2, 7).encode());
        words.extend(Message::inc(0, 2, 3).encode());
        transport.send_data(packet(0, &words), Duration::from_secs(1));
        // Wait for the cumulative ack instead of sleeping.
        let mut ack = None;
        assert!(crate::backoff::wait_for(Duration::from_secs(5), || {
            ack = transport.try_recv_ack(0, 0);
            ack.is_some()
        }));
        let ack = ack.unwrap().open(WireIntegrity::Crc32c).unwrap();
        assert_eq!((ack.src, ack.dest, ack.cum_seq), (0, 0, 0));
        transport.close();
        handle.join().unwrap();
        assert_eq!(node.heap.load(2), 10);
        assert_eq!(node.applied.get(), 2);
        assert_eq!(node.net_acks_sent.get(), 1);
    }

    #[test]
    fn duplicates_are_suppressed_and_reacked() {
        let (node, transport, errors) = setup(AmRegistry::new());
        let handle = spawn(&node, &transport, &errors);
        let words = Message::inc(0, 1, 5).encode();
        transport.send_data(packet(0, &words), Duration::from_secs(1));
        transport.send_data(packet(0, &words), Duration::from_secs(1));
        transport.send_data(packet(0, &words), Duration::from_secs(1));
        assert!(crate::backoff::wait_for(Duration::from_secs(5), || {
            node.net_dups_suppressed.get() >= 2
        }));
        transport.close();
        handle.join().unwrap();
        // Applied exactly once despite three copies.
        assert_eq!(node.heap.load(1), 5);
        assert_eq!(node.applied.get(), 1);
        // Every copy (original + both dups) triggered a cumulative ack.
        assert_eq!(node.net_acks_sent.get(), 3);
    }

    #[test]
    fn out_of_order_packets_apply_in_sequence() {
        let ams = AmRegistry::new();
        let (node, transport, errors) = setup(ams);
        let handle = spawn(&node, &transport, &errors);
        // seq 1 (put 111) then seq 0 (put 222): in-order application
        // means slot 0 ends at 111, not 222.
        transport.send_data(
            packet(1, &Message::put(0, 0, 111).encode()),
            Duration::from_secs(1),
        );
        transport.send_data(
            packet(0, &Message::put(0, 0, 222).encode()),
            Duration::from_secs(1),
        );
        assert!(crate::backoff::wait_for(Duration::from_secs(5), || node
            .applied
            .get()
            >= 2));
        transport.close();
        handle.join().unwrap();
        assert_eq!(node.heap.load(0), 111);
    }

    #[test]
    fn independent_lanes_have_independent_sequences() {
        let (node, _, errors) = setup(AmRegistry::new());
        // Two ack mailboxes: this test exercises two sender lanes.
        let transport = Arc::new(ChannelTransport::new(1, 2, 64));
        let handle = spawn(&node, &transport, &errors);
        // Two flows, both starting at seq 0 — not duplicates of each other.
        let a = frame(0, 0, &Message::inc(0, 4, 1).encode());
        let b = frame(1, 0, &Message::inc(0, 4, 1).encode());
        transport.send_data(a, Duration::from_secs(1));
        transport.send_data(b, Duration::from_secs(1));
        assert!(crate::backoff::wait_for(Duration::from_secs(5), || node
            .applied
            .get()
            >= 2));
        transport.close();
        handle.join().unwrap();
        assert_eq!(node.heap.load(4), 2);
        assert_eq!(node.net_dups_suppressed.get(), 0);
    }

    #[test]
    fn corrupt_and_truncated_frames_are_classified_and_dropped() {
        let (node, transport, errors) = setup(AmRegistry::new());
        let handle = spawn(&node, &transport, &errors);
        let good = packet(0, &Message::put(0, 3, 42).encode());
        // Cut short mid-header: classified as truncation.
        let cut = DataFrame {
            bytes: good.bytes.slice(0..10),
            ..good.clone()
        };
        transport.send_data(cut, Duration::from_secs(1));
        // One flipped payload bit: fails the CRC.
        let mut mangled = good.bytes.to_vec();
        let at = mangled.len() - 6;
        mangled[at] ^= 0x40;
        let bad = DataFrame {
            bytes: bytes::Bytes::from(mangled),
            ..good.clone()
        };
        transport.send_data(bad, Duration::from_secs(1));
        // The pristine frame finally applies — exactly what a go-back-N
        // retransmission of the dropped original looks like.
        transport.send_data(good, Duration::from_secs(1));
        assert!(crate::backoff::wait_for(Duration::from_secs(5), || node
            .applied
            .get()
            >= 1));
        transport.close();
        handle.join().unwrap();
        assert_eq!(node.heap.load(3), 42);
        assert_eq!(node.net_truncated.get(), 1);
        assert_eq!(node.net_corrupt_dropped.get(), 1);
        assert_eq!(node.quarantine.total(), 0);
    }

    #[test]
    fn misrouted_frames_are_dropped_before_flow_state() {
        let (node, transport, errors) = setup(AmRegistry::new());
        let handle = spawn(&node, &transport, &errors);
        // Verified header names src 7 on a 1-node cluster: an impossible
        // peer. The routing stamp still delivers it here; the receiver
        // must refuse it before touching any per-peer state.
        let mut p = Packet::from_words(7, 0, &Message::put(0, 1, 5).encode());
        p.seq = 0;
        transport.send_data(p.seal(0, WireIntegrity::Crc32c), Duration::from_secs(1));
        assert!(crate::backoff::wait_for(Duration::from_secs(5), || node
            .net_misrouted
            .get()
            >= 1));
        transport.close();
        handle.join().unwrap();
        assert_eq!(node.heap.load(1), 0);
        assert_eq!(node.applied.get(), 0);
    }

    #[test]
    fn poison_messages_quarantine_and_the_rest_applies() {
        let (node, transport, errors) = setup(AmRegistry::new());
        let handle = spawn(&node, &transport, &errors);
        let mut words = Vec::new();
        words.extend(Message::put(0, 2, 7).encode()); // fine
        words.extend(Message::active(0, 99, 0, 0).encode()); // unknown handler
        words.extend([u64::MAX, 0, 0, 0]); // undecodable command word
        words.extend(Message::put(0, 999, 1).encode()); // past the 8-slot heap
        words.extend(Message::inc(0, 2, 3).encode()); // fine
        transport.send_data(packet(0, &words), Duration::from_secs(1));
        assert!(crate::backoff::wait_for(Duration::from_secs(5), || node
            .applied
            .get()
            >= 5));
        transport.close();
        handle.join().unwrap();
        // The healthy messages applied around the poison ones.
        assert_eq!(node.heap.load(2), 10);
        // Every poison message was disposed for quiescence AND kept as
        // evidence with its provenance.
        assert_eq!(node.applied.get(), 5);
        let q = node.quarantine.drain();
        assert_eq!(q.len(), 3);
        assert_eq!(
            (q[0].reason, q[0].index),
            (QuarantineReason::UnknownHandler, 1)
        );
        assert_eq!((q[1].reason, q[1].index), (QuarantineReason::BadCommand, 2));
        assert_eq!((q[2].reason, q[2].index), (QuarantineReason::OutOfRange, 3));
        assert!(q.iter().all(|m| (m.src, m.lane, m.seq) == (0, 0, 0)));
        assert_eq!(node.quarantine.total(), 3);
    }

    #[test]
    fn exits_on_close() {
        let (node, transport, errors) = setup(AmRegistry::new());
        let handle = spawn(&node, &transport, &errors);
        transport.close();
        handle.join().unwrap();
    }

    #[test]
    fn exits_on_cluster_error() {
        let (node, transport, errors) = setup(AmRegistry::new());
        let handle = spawn(&node, &transport, &errors);
        errors.set(crate::error::RuntimeError::WorkerPanic {
            thread: "t".into(),
            message: "m".into(),
        });
        handle.join().unwrap();
        assert!(!transport.is_closed());
    }
}
