//! The network thread (paper §6) — now also the receiver half of the
//! delivery protocol.
//!
//! "All network requests are funneled through a dedicated network thread.
//! Upon receiving a per-node queue, the network thread iterates through
//! each message and resolves it as a local memory operation." Because
//! *every* atomic — including local ones — routes through this thread,
//! atomics are serialized per node, which both simplifies active messages
//! and (on the paper's hardware) beats concurrent read-modify-writes.
//!
//! On top of applying packets, the thread enforces exactly-once in-order
//! delivery per flow `(src, lane)`: packets below the expected sequence
//! number are duplicates (counted and re-acked, which heals lost acks);
//! packets above it are parked in a bounded reorder buffer until the gap
//! fills (go-back-N retransmission fills it if the missing packet was
//! dropped). Every accepted or duplicate packet triggers a cumulative
//! ack back to the sending lane.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use gravel_gq::Message;
use gravel_net::{Ack, ChaosPlan, RecvStatus, Transport};
use gravel_pgas::{apply, Applied, Packet};

use crate::error::ErrorSlot;
use crate::node::NodeShared;

/// Receive poll interval; bounds how quickly the thread notices shutdown
/// or a cluster-wide error.
const RECV_TIMEOUT: Duration = Duration::from_millis(1);

/// Maximum out-of-order packets buffered per flow. Packets beyond this
/// are dropped (and recovered by the sender's retransmission), bounding
/// receiver memory under pathological reordering.
const OOO_BUFFER_CAP: usize = 256;

/// Receiver-side state of one flow.
#[derive(Default)]
struct FlowState {
    /// Next sequence number to apply.
    expected: u64,
    /// Out-of-order packets keyed by sequence number.
    ooo: BTreeMap<u64, Packet>,
    /// Message index inside the in-sequence packet currently being
    /// applied. Nonzero only while a restarted thread still owes the
    /// tail of a packet whose predecessor died mid-apply; the go-back-N
    /// retransmission of that packet (seq == `expected`) resumes here.
    resume_at: usize,
}

/// Restartable receiver state of one node's network thread, hoisted out
/// of the thread (like the aggregator's `LaneState`) so a supervised
/// restart keeps exactly-once delivery: sequence expectations, reorder
/// buffers, and mid-packet resume cursors all survive the thread.
pub struct RecvState {
    flows: HashMap<(u32, u32), FlowState>,
}

impl RecvState {
    pub fn new() -> Self {
        RecvState {
            flows: HashMap::new(),
        }
    }

    /// Forget mid-packet progress (epoch recovery: the heap was just
    /// rewritten wholesale, so any partially applied packet must
    /// re-apply from its first message when retransmitted). Sequence
    /// expectations and reorder buffers are deliberately preserved —
    /// resetting those would turn retransmissions into duplicates or
    /// wedge the flow.
    pub fn reset_resume_cursors(&mut self) {
        for flow in self.flows.values_mut() {
            flow.resume_at = 0;
        }
    }
}

impl Default for RecvState {
    fn default() -> Self {
        RecvState::new()
    }
}

fn lock_recv(state: &Mutex<RecvState>) -> MutexGuard<'_, RecvState> {
    state.lock().unwrap_or_else(|p| p.into_inner())
}

/// Flushes a batch of applied-message counts on drop — including the
/// unwind of a chaos panic, so the quiescence counters stay exact at
/// every message boundary without paying one fenced counter add per
/// message on the hot path.
struct ApplyGuard<'a> {
    node: &'a NodeShared,
    done: u64,
}

impl Drop for ApplyGuard<'_> {
    fn drop(&mut self) {
        if self.done > 0 {
            self.node.note_applied(self.done);
        }
    }
}

/// Apply one in-sequence packet to the node's heap, one message at a
/// time, starting at `*resume_at` (0 for a fresh packet). Messages are
/// decoded straight out of the packet's byte payload (no intermediate
/// `Vec` — this loop is the receive hot path, see
/// `crates/pgas/tests/zero_alloc.rs`). Disposed messages count toward
/// quiescence in one batch when the packet finishes *or* the thread
/// unwinds, and the cursor advances per message, so a panic at any
/// message boundary — the only place injected chaos fires — loses and
/// double-counts nothing: the retransmitted packet resumes at the
/// cursor. Batching never fakes quiescence: replies a handler enqueues
/// inflate `offloaded` before the batch lands in `applied`, so the
/// counters cannot balance mid-packet. On completion the whole packet
/// is appended to the node's replay log (if checkpointing) and the
/// cursor returns to 0; an interrupted packet is *not* logged — its
/// completed retransmission will be.
fn apply_packet(node: &NodeShared, pkt: &Packet, resume_at: &mut usize, chaos: Option<&ChaosPlan>) {
    let _span = node.tracer.span("net.apply", "apply", node.id);
    if *resume_at == 0 {
        node.packet_latency
            .record(pkt.born.elapsed().as_nanos() as u64);
    }
    #[cfg(debug_assertions)]
    {
        // The borrowing decode and the allocating decode must agree —
        // `words()` stays the reference semantics (tests, replay).
        let words = pkt.words();
        for i in 0..pkt.msg_count() {
            debug_assert_eq!(
                pkt.msg_words(i).as_slice(),
                &words[i * gravel_gq::MSG_ROWS..(i + 1) * gravel_gq::MSG_ROWS],
                "zero-copy packet decode diverged from Packet::words()"
            );
        }
    }
    let total = pkt.msg_count();
    let mut batch = ApplyGuard { node, done: 0 };
    while *resume_at < total {
        if let Some(c) = chaos {
            if c.net_tick(node.id) {
                panic!(
                    "chaos: net thread {} killed at injected apply step",
                    node.id
                );
            }
        }
        // Same disposition rules as `apply_words`: undecodable words are
        // skipped uncounted, a shutdown sentinel stops the packet early,
        // everything else (applied or dropped) counts for quiescence.
        if let Some(msg) = Message::decode(pkt.msg_words(*resume_at)) {
            // Replying handlers re-enter the node's own Gravel path: the
            // reply is enqueued like any GPU-initiated message (and
            // counted for quiescence before this message's batch lands,
            // so `quiesce` cannot return with replies in flight).
            match apply(&msg, &node.heap, &node.ams, &mut |m| node.host_send(m)) {
                Applied::Done | Applied::Dropped => batch.done += 1,
                Applied::Shutdown => break,
            }
        }
        *resume_at += 1;
    }
    drop(batch);
    if let Some(log) = &node.replay {
        log.append(&pkt.words());
    }
    *resume_at = 0;
}

/// Run the receive-and-apply loop until the transport closes (or the
/// cluster fails). This is the body of each node's network thread.
pub fn run(node: Arc<NodeShared>, transport: Arc<dyn Transport>, errors: Arc<ErrorSlot>) {
    let state = Arc::new(Mutex::new(RecvState::new()));
    run_supervised(node, transport, errors, state, None);
}

/// [`run`] with receiver state hoisted into `state` for supervised
/// restart, and optional process-fault injection from `chaos`. The
/// receive wait happens *without* the state lock (recovery and
/// diagnostics may inspect the state while the thread idles); the lock
/// is taken per delivered packet.
pub fn run_supervised(
    node: Arc<NodeShared>,
    transport: Arc<dyn Transport>,
    errors: Arc<ErrorSlot>,
    state: Arc<Mutex<RecvState>>,
    chaos: Option<Arc<ChaosPlan>>,
) {
    loop {
        let pkt = match transport.recv_data(node.id, RECV_TIMEOUT) {
            RecvStatus::Msg(pkt) => pkt,
            RecvStatus::TimedOut => {
                if errors.is_set() {
                    return;
                }
                continue;
            }
            RecvStatus::Closed => return,
        };
        let mut st = lock_recv(&state);
        let flow = st.flows.entry((pkt.src, pkt.lane)).or_default();
        if pkt.seq < flow.expected {
            // Duplicate (injected, or a retransmission of an applied
            // packet whose ack was lost). Re-ack so the sender advances.
            node.net_dups_suppressed.add(1);
        } else if pkt.seq > flow.expected {
            // Out of order: park it if the buffer has room (go-back-N
            // retransmission recovers it otherwise), then ack what we
            // actually have.
            if flow.ooo.len() < OOO_BUFFER_CAP {
                flow.ooo.entry(pkt.seq).or_insert(pkt.clone());
            } else {
                node.net_ooo_dropped.add(1);
            }
        } else {
            apply_packet(&node, &pkt, &mut flow.resume_at, chaos.as_deref());
            flow.expected += 1;
            // Drain any buffered successors the gap was hiding. A panic
            // mid-drain loses the popped packet but not its messages:
            // `expected` was not yet advanced past it, so the sender's
            // go-back-N retransmission redelivers it in sequence.
            while let Some(next) = flow.ooo.remove(&flow.expected) {
                apply_packet(&node, &next, &mut flow.resume_at, chaos.as_deref());
                flow.expected += 1;
            }
        }
        // Cumulative ack: everything below `expected` is applied. Acks
        // are best-effort (the mailbox may be full, the link may drop
        // them) — retransmission plus re-acking makes that safe.
        if flow.expected > 0 {
            transport.send_ack(Ack {
                src: node.id,
                dest: pkt.src,
                lane: pkt.lane,
                cum_seq: flow.expected - 1,
            });
            node.net_acks_sent.add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GravelConfig;
    use gravel_gq::Message;
    use gravel_net::ChannelTransport;
    use gravel_pgas::AmRegistry;

    fn setup(registry: AmRegistry) -> (Arc<NodeShared>, Arc<ChannelTransport>, Arc<ErrorSlot>) {
        let cfg = GravelConfig::small(1, 8);
        let node = Arc::new(NodeShared::new(0, &cfg, Arc::new(registry)));
        let transport = Arc::new(ChannelTransport::new(1, 1, 64));
        (node, transport, Arc::new(ErrorSlot::default()))
    }

    fn spawn(
        node: &Arc<NodeShared>,
        transport: &Arc<ChannelTransport>,
        errors: &Arc<ErrorSlot>,
    ) -> std::thread::JoinHandle<()> {
        let (node, transport, errors) = (node.clone(), transport.clone(), errors.clone());
        std::thread::spawn(move || run(node, transport, errors))
    }

    fn packet(seq: u64, words: &[u64]) -> Packet {
        let mut p = Packet::from_words(0, 0, words);
        p.seq = seq;
        p
    }

    #[test]
    fn applies_packets_and_acks_cumulatively() {
        let (node, transport, errors) = setup(AmRegistry::new());
        let handle = spawn(&node, &transport, &errors);
        let mut words = Vec::new();
        words.extend(Message::put(0, 2, 7).encode());
        words.extend(Message::inc(0, 2, 3).encode());
        transport.send_data(packet(0, &words), Duration::from_secs(1));
        // Wait for the cumulative ack instead of sleeping.
        let mut ack = None;
        assert!(crate::backoff::wait_for(Duration::from_secs(5), || {
            ack = transport.try_recv_ack(0, 0);
            ack.is_some()
        }));
        let ack = ack.unwrap();
        assert_eq!((ack.src, ack.dest, ack.cum_seq), (0, 0, 0));
        transport.close();
        handle.join().unwrap();
        assert_eq!(node.heap.load(2), 10);
        assert_eq!(node.applied.get(), 2);
        assert_eq!(node.net_acks_sent.get(), 1);
    }

    #[test]
    fn duplicates_are_suppressed_and_reacked() {
        let (node, transport, errors) = setup(AmRegistry::new());
        let handle = spawn(&node, &transport, &errors);
        let words = Message::inc(0, 1, 5).encode();
        transport.send_data(packet(0, &words), Duration::from_secs(1));
        transport.send_data(packet(0, &words), Duration::from_secs(1));
        transport.send_data(packet(0, &words), Duration::from_secs(1));
        assert!(crate::backoff::wait_for(Duration::from_secs(5), || {
            node.net_dups_suppressed.get() >= 2
        }));
        transport.close();
        handle.join().unwrap();
        // Applied exactly once despite three copies.
        assert_eq!(node.heap.load(1), 5);
        assert_eq!(node.applied.get(), 1);
        // Every copy (original + both dups) triggered a cumulative ack.
        assert_eq!(node.net_acks_sent.get(), 3);
    }

    #[test]
    fn out_of_order_packets_apply_in_sequence() {
        let ams = AmRegistry::new();
        let (node, transport, errors) = setup(ams);
        let handle = spawn(&node, &transport, &errors);
        // seq 1 (put 111) then seq 0 (put 222): in-order application
        // means slot 0 ends at 111, not 222.
        transport.send_data(
            packet(1, &Message::put(0, 0, 111).encode()),
            Duration::from_secs(1),
        );
        transport.send_data(
            packet(0, &Message::put(0, 0, 222).encode()),
            Duration::from_secs(1),
        );
        assert!(crate::backoff::wait_for(Duration::from_secs(5), || node
            .applied
            .get()
            >= 2));
        transport.close();
        handle.join().unwrap();
        assert_eq!(node.heap.load(0), 111);
    }

    #[test]
    fn independent_lanes_have_independent_sequences() {
        let (node, _, errors) = setup(AmRegistry::new());
        // Two ack mailboxes: this test exercises two sender lanes.
        let transport = Arc::new(ChannelTransport::new(1, 2, 64));
        let handle = spawn(&node, &transport, &errors);
        // Two flows, both starting at seq 0 — not duplicates of each other.
        let mut a = packet(0, &Message::inc(0, 4, 1).encode());
        a.lane = 0;
        let mut b = packet(0, &Message::inc(0, 4, 1).encode());
        b.lane = 1;
        transport.send_data(a, Duration::from_secs(1));
        transport.send_data(b, Duration::from_secs(1));
        assert!(crate::backoff::wait_for(Duration::from_secs(5), || node
            .applied
            .get()
            >= 2));
        transport.close();
        handle.join().unwrap();
        assert_eq!(node.heap.load(4), 2);
        assert_eq!(node.net_dups_suppressed.get(), 0);
    }

    #[test]
    fn exits_on_close() {
        let (node, transport, errors) = setup(AmRegistry::new());
        let handle = spawn(&node, &transport, &errors);
        transport.close();
        handle.join().unwrap();
    }

    #[test]
    fn exits_on_cluster_error() {
        let (node, transport, errors) = setup(AmRegistry::new());
        let handle = spawn(&node, &transport, &errors);
        errors.set(crate::error::RuntimeError::WorkerPanic {
            thread: "t".into(),
            message: "m".into(),
        });
        handle.join().unwrap();
        assert!(!transport.is_closed());
    }
}
