//! Runtime configuration.
//!
//! Defaults mirror the paper's evaluated configuration (Table 3): a 1 MB
//! producer/consumer queue, 64 kB per-node queues with a 125 µs timeout,
//! one aggregator thread per node, 8 compute units, 256-work-item
//! work-groups of 64-wide wavefronts, and atomics serialized through the
//! network thread.

use std::sync::Arc;
use std::time::Duration;

use gravel_gq::QueueConfig;
use gravel_net::{ChaosPlan, RetryConfig, TransportKind};
use gravel_pgas::WireIntegrity;
use gravel_telemetry::TelemetryConfig;

use crate::ha::HaConfig;

/// Configuration of a [`GravelRuntime`](crate::GravelRuntime).
#[derive(Clone, Debug)]
pub struct GravelConfig {
    /// Number of (in-process) nodes.
    pub nodes: usize,
    /// Elements in each node's symmetric heap.
    pub heap_len: usize,
    /// Producer/consumer queue geometry per node.
    pub queue: QueueConfig,
    /// Per-destination aggregation queue size in bytes (Table 3: 64 kB).
    pub node_queue_bytes: usize,
    /// Aggregation flush timeout (Table 3: 125 µs). The fallback fixed
    /// timeout when [`adaptive_flush`](Self::adaptive_flush) is `None`.
    pub flush_timeout: Duration,
    /// Adaptive per-destination flush tuning: when `Some`, each
    /// destination's effective timeout floats within `[min, max]` driven
    /// by an EWMA of how full its queue was at recent flushes (busy
    /// destinations wait longer and ship fuller packets; sparse ones
    /// flush near `min` for latency). `None` keeps the paper's fixed
    /// [`flush_timeout`](Self::flush_timeout) everywhere.
    pub adaptive_flush: Option<gravel_pgas::AdaptiveFlush>,
    /// Maximum GPU-ring slots an aggregator lane claims per read-index
    /// CAS. Batching the claim amortizes the consumer's synchronization
    /// the same way work-group reservation amortizes the producer's.
    pub drain_batch_slots: usize,
    /// Compute units per node's GPU.
    pub num_cus: usize,
    /// Work-group size used by [`dispatch`](crate::GravelRuntime::dispatch)
    /// convenience launches.
    pub wg_size: usize,
    /// Wavefront width.
    pub wf_width: usize,
    /// Aggregator threads per node. The paper found one performs best on
    /// the 4-thread APU ("there are several background threads in the
    /// system", §6); more threads trade queue-drain parallelism for
    /// contention — the knob exists for that ablation.
    pub aggregator_threads: usize,
    /// Serialize atomic operations (increment, active messages) through
    /// the network thread even when local (§6: "some operations that can
    /// execute locally are still routed through the NI"). Setting this to
    /// `false` is the concurrent-RMW ablation.
    pub serialize_atomics: bool,
    /// Which transport carries aggregated packets between nodes.
    ///
    /// The paper's evaluation runs over reliable MPI/InfiniBand
    /// ([`TransportKind::Reliable`], the default), but Gravel's delivery
    /// protocol (per-flow sequence numbers, cumulative acks, go-back-N
    /// retransmission) does not depend on that: select
    /// [`TransportKind::Unreliable`] to inject seeded drops, duplication,
    /// reordering, jitter, and link outages and the runtime still
    /// delivers every message exactly once.
    pub transport: TransportKind,
    /// Delivery-protocol tuning: in-flight window per destination flow,
    /// retransmission backoff, and the retry budget after which a flow is
    /// declared dead (surfaced as
    /// [`RuntimeError::RetryExhausted`](crate::RuntimeError::RetryExhausted)
    /// rather than hanging quiescence).
    pub retry: RetryConfig,
    /// Capacity (in packets) of each node's bounded inbound data channel.
    ///
    /// Table 3 provisions three 64 kB per-node queues in flight per
    /// destination; the channel bound plays the same role as that
    /// in-flight credit — it is what makes aggregator backpressure real
    /// instead of letting a slow receiver buffer unbounded memory. A
    /// full channel parks packets at the sender (see
    /// `NodeStats::net.backpressure_stalls`).
    pub channel_capacity: usize,
    /// Optional ceiling on how long [`quiesce`](crate::GravelRuntime::quiesce)
    /// (and therefore `shutdown`) may wait for in-flight messages. When
    /// the deadline passes, the runtime gives up and reports
    /// [`RuntimeError::QuiesceTimeout`](crate::RuntimeError::QuiesceTimeout)
    /// with per-node queue/counter diagnostics instead of spinning
    /// forever. `None` waits indefinitely (the pre-fault-tolerance
    /// behavior, still the right choice for debuggers and very long
    /// kernels).
    pub quiesce_deadline: Option<Duration>,
    /// Observability level (see DESIGN.md §10):
    /// [`TelemetryConfig::Counters`] (the default) keeps the sharded
    /// metric registry live, [`TelemetryConfig::CountersAndTrace`] also
    /// records spans for chrome://tracing export, and
    /// [`TelemetryConfig::Off`] disables everything except the vital
    /// quiescence counters.
    pub telemetry: TelemetryConfig,
    /// Node-level fault tolerance: worker restart policy, optional
    /// heartbeat failure detection, and epoch checkpointing (see
    /// DESIGN.md §11).
    pub ha: HaConfig,
    /// Optional deterministic process-fault schedule (panic this
    /// aggregator at that drain step, blackhole those heartbeats). The
    /// chaos counterpart to [`TransportKind::Unreliable`]'s link faults;
    /// `None` (the default) injects nothing.
    pub chaos: Option<Arc<ChaosPlan>>,
    /// How often a still-spinning [`quiesce`](crate::GravelRuntime::quiesce)
    /// logs a stuck-pipeline warning (with per-node diagnostics) and
    /// bumps the `ha.quiesce_warnings` counter while it waits.
    pub quiesce_warn_interval: Duration,
    /// Wire integrity mode: [`WireIntegrity::Crc32c`] (the default)
    /// seals every data packet and ack in a checksummed frame verified
    /// before any decode; [`WireIntegrity::Off`] is the throughput
    /// ablation that skips the CRC (structural header checks still run).
    /// See DESIGN.md §13.
    pub wire_integrity: WireIntegrity,
    /// Capacity of each node's poison-message quarantine (dead-letter
    /// buffer for CRC-clean messages failing semantic validation). Past
    /// it the oldest entry is evicted, so a babbling peer cannot OOM the
    /// receiver.
    pub quarantine_capacity: usize,
    /// Request-reply traffic class: QoS band scheduling (with its
    /// ablation knob), pending-reply table capacity, and the request
    /// timeout. See DESIGN.md §15.
    pub rpc: crate::rpc::RpcConfig,
    /// Adaptive lane governor: when `Some`, a multi-lane node starts
    /// with one *active* lane and expands/collapses the dest-hash
    /// routing mask with measured per-lane fill (sparse workloads keep
    /// single-lane packing, dense ones get full drain parallelism —
    /// see DESIGN.md §17). `None` is the static-mask ablation: all
    /// lanes active forever, the pre-governor behavior, and the mode
    /// for workloads that need strict per-destination PUT ordering
    /// across the whole run. Irrelevant at `aggregator_threads == 1`.
    pub lane_governor: Option<crate::governor::GovernorConfig>,
    /// Recycle packet buffers through the node's lock-free arena
    /// (aggregator flushes, frame sealing, socket receive) instead of
    /// allocating per packet. `false` is the allocator ablation.
    pub buffer_pool: bool,
}

impl GravelConfig {
    /// The paper's configuration for `nodes` nodes with a `heap_len`-element
    /// symmetric heap per node.
    pub fn paper(nodes: usize, heap_len: usize) -> Self {
        GravelConfig {
            nodes,
            heap_len,
            queue: QueueConfig::gravel_default(),
            node_queue_bytes: gravel_pgas::DEFAULT_QUEUE_BYTES,
            flush_timeout: gravel_pgas::DEFAULT_TIMEOUT,
            adaptive_flush: Some(gravel_pgas::AdaptiveFlush::default()),
            drain_batch_slots: 8,
            num_cus: 8,
            wg_size: 256,
            wf_width: 64,
            aggregator_threads: 1,
            serialize_atomics: true,
            transport: TransportKind::Reliable,
            retry: RetryConfig::default(),
            channel_capacity: 1024,
            quiesce_deadline: Some(Duration::from_secs(60)),
            telemetry: TelemetryConfig::default(),
            ha: HaConfig::default(),
            chaos: None,
            quiesce_warn_interval: Duration::from_secs(5),
            wire_integrity: WireIntegrity::Crc32c,
            quarantine_capacity: 1024,
            rpc: crate::rpc::RpcConfig::default(),
            lane_governor: Some(crate::governor::GovernorConfig::default()),
            buffer_pool: true,
        }
    }

    /// A scaled-down configuration for unit tests and examples on small
    /// hosts: small queues, quick timeout, narrow work-groups, 2 CUs.
    pub fn small(nodes: usize, heap_len: usize) -> Self {
        GravelConfig {
            nodes,
            heap_len,
            queue: QueueConfig {
                slots: 16,
                lane_width: 64,
                rows: gravel_gq::MSG_ROWS,
            },
            node_queue_bytes: 1024,
            flush_timeout: Duration::from_micros(200),
            adaptive_flush: Some(gravel_pgas::AdaptiveFlush::default()),
            drain_batch_slots: 8,
            num_cus: 2,
            wg_size: 64,
            wf_width: 32,
            aggregator_threads: 1,
            serialize_atomics: true,
            transport: TransportKind::Reliable,
            retry: RetryConfig::default(),
            channel_capacity: 256,
            quiesce_deadline: Some(Duration::from_secs(30)),
            telemetry: TelemetryConfig::default(),
            ha: HaConfig::default(),
            chaos: None,
            quiesce_warn_interval: Duration::from_secs(5),
            wire_integrity: WireIntegrity::Crc32c,
            quarantine_capacity: 64,
            rpc: crate::rpc::RpcConfig {
                reply_table_cap: 256,
                timeout: Duration::from_millis(500),
                ..crate::rpc::RpcConfig::default()
            },
            lane_governor: Some(crate::governor::GovernorConfig::default()),
            buffer_pool: true,
        }
    }

    /// Validate invariants; called by the runtime constructor.
    pub fn validate(&self) {
        assert!(self.nodes > 0, "need at least one node");
        assert!(self.heap_len > 0, "empty symmetric heap");
        assert!(
            self.wg_size <= self.queue.lane_width,
            "work-group wider than queue slots"
        );
        assert_eq!(
            self.queue.rows,
            gravel_gq::MSG_ROWS,
            "runtime messages are 4 words"
        );
        assert!(self.node_queue_bytes >= 32, "node queue below one message");
        assert!(
            self.wf_width > 0 && self.wg_size.is_multiple_of(self.wf_width),
            "wg/wf mismatch"
        );
        assert!(
            self.channel_capacity > 0,
            "need at least one packet of channel credit"
        );
        assert!(
            self.aggregator_threads >= 1,
            "need at least one aggregator lane"
        );
        assert!(
            self.drain_batch_slots >= 1,
            "need at least one slot per drain claim"
        );
        if let Some(a) = &self.adaptive_flush {
            a.validate();
        }
        assert!(
            self.retry.window > 0,
            "delivery window must admit one packet"
        );
        assert!(self.retry.max_retries > 0, "need at least one retry");
        if let TransportKind::Unreliable(faults) = &self.transport {
            faults.validate();
        }
        assert!(
            !self.quiesce_warn_interval.is_zero(),
            "quiesce warn interval must be nonzero"
        );
        assert!(
            self.quarantine_capacity >= 1,
            "quarantine must hold at least one message"
        );
        assert!(
            self.rpc.reply_table_cap >= 1,
            "pending-reply table must hold at least one request"
        );
        assert!(!self.rpc.timeout.is_zero(), "rpc timeout must be nonzero");
        if let Some(g) = &self.lane_governor {
            g.validate();
        }
        if let Some(hb) = &self.ha.heartbeat {
            assert!(!hb.interval.is_zero(), "heartbeat interval must be nonzero");
            assert!(
                hb.suspect_phi > 0.0 && hb.dead_phi > hb.suspect_phi,
                "need 0 < suspect_phi < dead_phi"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table3() {
        let c = GravelConfig::paper(8, 1024);
        assert_eq!(c.queue.capacity_bytes(), 1024 * 1024);
        assert_eq!(c.node_queue_bytes, 64 * 1024);
        assert_eq!(c.flush_timeout, Duration::from_micros(125));
        assert_eq!(c.num_cus, 8);
        assert_eq!(c.wg_size, 256);
        assert_eq!(c.wf_width, 64);
        assert!(c.serialize_atomics);
        c.validate();
    }

    #[test]
    fn small_config_is_valid() {
        GravelConfig::small(4, 64).validate();
    }

    #[test]
    #[should_panic(expected = "work-group wider")]
    fn oversized_wg_rejected() {
        let mut c = GravelConfig::small(2, 8);
        c.wg_size = 1024;
        c.validate();
    }

    #[test]
    fn unreliable_transport_validates_faults() {
        let mut c = GravelConfig::small(2, 8);
        c.transport = TransportKind::Unreliable(gravel_net::FaultConfig::drop_only(7, 0.1));
        c.validate();
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_fault_probability_rejected() {
        let mut c = GravelConfig::small(2, 8);
        c.transport = TransportKind::Unreliable(gravel_net::FaultConfig::drop_only(7, 1.5));
        c.validate();
    }
}
