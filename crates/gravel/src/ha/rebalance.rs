//! The rebalancer — the coordinator-side topology-change state machine
//! (DESIGN.md §16).
//!
//! Elastic membership changes (JOIN, LEAVE, EVICT) are *proposals*:
//! they queue here and commit one at a time, each at an epoch boundary,
//! so there is never more than one shard migration in flight and every
//! node observes the same total order of map versions. The machine is
//! deliberately pure — no I/O, no clocks, no transport — which is what
//! makes its invariants unit-testable and lets the supervisor restart
//! the driver thread around it without losing protocol state:
//!
//! * **One in flight.** A committed plan must fully migrate (every
//!   [`ShardMove`] acked) before the next proposal commits. Competing
//!   proposals wait in FIFO order.
//! * **Moot proposals evaporate.** A JOIN of a current member, a LEAVE
//!   of a non-member, or a LEAVE that would empty the cluster is
//!   skipped at commit time (the map it was judged against is the live
//!   one, not the one it was proposed under).
//! * **Monotonic versions.** Every committed plan carries
//!   `map.version == current.version + 1`; the caller broadcasts and
//!   installs it, and [`Directory::install`](gravel_pgas::Directory::install)
//!   refuses regressions independently.
//!
//! The caller (gravel-node's coordinator loop) turns a committed
//! [`RebalancePlan`] into control frames: broadcast the new map, wait
//! for the `from` side of each move to stream its shard, collect
//! per-shard acks back into [`note_shard_ready`](Rebalancer::note_shard_ready),
//! and declare the topology change complete when the machine returns to
//! idle. For an EVICT the `from` nodes are dead; the plan's `change`
//! tells the caller to source those shards from the dead node's buddy
//! ward instead.

use gravel_pgas::{ShardMap, ShardMove};
use std::collections::VecDeque;

/// A proposed change to the active member set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyChange {
    /// Admit a new node (it has handshaken and holds an empty heap).
    Join(u32),
    /// Graceful exit: the node drains, donates its shards, then stops.
    Leave(u32),
    /// Forced exit: the phi-accrual detector declared the node dead;
    /// its shards are reconstructed from its buddy's ward (checkpoint
    /// + forwarded replay log), not streamed from the node itself.
    Evict(u32),
}

impl TopologyChange {
    /// The node whose membership changes.
    pub fn node(&self) -> u32 {
        match *self {
            TopologyChange::Join(n) | TopologyChange::Leave(n) | TopologyChange::Evict(n) => n,
        }
    }
}

/// A committed topology change: the next map plus the minimal set of
/// shard moves that realize it.
#[derive(Clone, Debug)]
pub struct RebalancePlan {
    pub change: TopologyChange,
    pub map: ShardMap,
    pub moves: Vec<ShardMove>,
}

struct InFlight {
    plan: RebalancePlan,
    /// Moves not yet acked by their new owner, by shard id.
    outstanding: Vec<u32>,
}

/// The coordinator's queue-and-commit machine. See the module docs for
/// the protocol it drives.
#[derive(Default)]
pub struct Rebalancer {
    pending: VecDeque<TopologyChange>,
    in_flight: Option<InFlight>,
    committed: u64,
}

impl Rebalancer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a proposal. Duplicates of a queued or in-flight change are
    /// refused (a flapping detector may propose the same EVICT many
    /// times before the boundary arrives). Returns whether it queued.
    pub fn propose(&mut self, change: TopologyChange) -> bool {
        if self.pending.contains(&change) {
            return false;
        }
        if let Some(f) = &self.in_flight {
            if f.plan.change == change {
                return false;
            }
        }
        self.pending.push_back(change);
        true
    }

    /// An epoch boundary arrived: commit the next viable proposal
    /// against `current` and return its plan, or `None` if a migration
    /// is still in flight or nothing viable is queued. A plan with no
    /// moves (a join into a cluster with fewer shards than members)
    /// completes immediately — the caller still broadcasts its map.
    pub fn boundary_tick(&mut self, current: &ShardMap) -> Option<RebalancePlan> {
        if self.in_flight.is_some() {
            return None;
        }
        while let Some(change) = self.pending.pop_front() {
            let edit = match change {
                TopologyChange::Join(n) => current.rebalance_join(n),
                TopologyChange::Leave(n) | TopologyChange::Evict(n) => {
                    current.rebalance_leave(n)
                }
            };
            let Some((map, moves)) = edit else {
                continue; // moot under the live map
            };
            let plan = RebalancePlan { change, map, moves };
            self.committed += 1;
            if !plan.moves.is_empty() {
                self.in_flight = Some(InFlight {
                    outstanding: plan.moves.iter().map(|m| m.shard).collect(),
                    plan: plan.clone(),
                });
            }
            return Some(plan);
        }
        None
    }

    /// Reconstruct in-flight state on a **takeover coordinator**: the
    /// previous lease holder broadcast this plan (it is the cached last
    /// TOPO frame, already installed cluster-wide) and died before the
    /// migration finished acking. The successor seeds the machine as if
    /// it had committed the plan itself, re-broadcasts it under the new
    /// term — destinations re-register their pulls idempotently and
    /// re-ack already-served shards to the sender — and then collects
    /// acks through [`note_shard_ready`](Self::note_shard_ready)
    /// exactly like an uninterrupted migration. Shards in `already_acked`
    /// (acks the successor happened to observe before the takeover) are
    /// pre-cleared. No-op if a migration is somehow already in flight.
    pub fn seed_in_flight(&mut self, plan: RebalancePlan, already_acked: &[u32]) {
        if self.in_flight.is_some() {
            return;
        }
        let outstanding: Vec<u32> = plan
            .moves
            .iter()
            .map(|m| m.shard)
            .filter(|s| !already_acked.contains(s))
            .collect();
        self.committed += 1;
        if !outstanding.is_empty() {
            self.in_flight = Some(InFlight { plan, outstanding });
        }
    }

    /// A shard's new owner acked its migration. Returns `true` when
    /// this ack completes the in-flight plan (the machine is idle
    /// again). Unknown or duplicate shard acks are ignored — migration
    /// re-requests make duplicates routine.
    pub fn note_shard_ready(&mut self, shard: u32) -> bool {
        let Some(f) = &mut self.in_flight else {
            return false;
        };
        f.outstanding.retain(|&s| s != shard);
        if f.outstanding.is_empty() {
            self.in_flight = None;
            return true;
        }
        false
    }

    /// The plan currently migrating, if any.
    pub fn migrating(&self) -> Option<&RebalancePlan> {
        self.in_flight.as_ref().map(|f| &f.plan)
    }

    /// Shards of the in-flight plan still awaiting their ack.
    pub fn outstanding(&self) -> &[u32] {
        self.in_flight.as_ref().map_or(&[], |f| &f.outstanding)
    }

    /// Idle and nothing queued.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight.is_none() && self.pending.is_empty()
    }

    /// Total proposals committed since construction (`reshard.moves`
    /// feeds from the plans themselves; this counts map flips).
    pub fn committed(&self) -> u64 {
        self.committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map4() -> ShardMap {
        ShardMap::initial(&[0, 1, 2, 3], 16)
    }

    #[test]
    fn commits_one_proposal_per_boundary_and_serializes_migrations() {
        let mut r = Rebalancer::new();
        assert!(r.propose(TopologyChange::Join(4)));
        assert!(r.propose(TopologyChange::Join(5)));
        assert!(!r.propose(TopologyChange::Join(4)), "duplicate refused");

        let m = map4();
        let plan = r.boundary_tick(&m).expect("first join commits");
        assert_eq!(plan.change, TopologyChange::Join(4));
        assert_eq!(plan.map.version, 2);
        assert!(!plan.moves.is_empty());
        assert!(
            r.boundary_tick(&plan.map).is_none(),
            "second join waits for the migration"
        );
        assert!(!r.propose(TopologyChange::Join(4)), "in-flight dup refused");

        // Ack every move (with a duplicate thrown in) — the last ack
        // reports completion.
        let mut done = false;
        for mv in &plan.moves {
            assert!(!done);
            r.note_shard_ready(mv.shard);
            done = r.outstanding().is_empty() && r.migrating().is_none();
            r.note_shard_ready(mv.shard); // duplicate: ignored
        }
        assert!(done);

        let plan2 = r.boundary_tick(&plan.map).expect("second join commits");
        assert_eq!(plan2.change, TopologyChange::Join(5));
        assert_eq!(plan2.map.version, 3);
        assert_eq!(r.committed(), 2);
    }

    #[test]
    fn moot_proposals_are_skipped_at_commit_time() {
        let mut r = Rebalancer::new();
        r.propose(TopologyChange::Join(2)); // already a member
        r.propose(TopologyChange::Leave(9)); // never a member
        r.propose(TopologyChange::Leave(3)); // viable
        let plan = r.boundary_tick(&map4()).expect("skips to the viable one");
        assert_eq!(plan.change, TopologyChange::Leave(3));
        assert!(plan.moves.iter().all(|m| m.from == 3));
    }

    #[test]
    fn evict_plans_like_leave_but_keeps_its_identity() {
        let mut r = Rebalancer::new();
        r.propose(TopologyChange::Evict(1));
        let plan = r.boundary_tick(&map4()).unwrap();
        assert_eq!(plan.change, TopologyChange::Evict(1));
        assert!(!plan.map.is_member(1));
        assert!(plan.moves.iter().all(|m| m.from == 1));
    }

    #[test]
    fn takeover_seeds_the_interrupted_migration() {
        // Old coordinator committed a join, broadcast the plan, died.
        let mut old = Rebalancer::new();
        old.propose(TopologyChange::Join(4));
        let plan = old.boundary_tick(&map4()).unwrap();
        assert!(plan.moves.len() >= 2, "want a multi-move plan to split acks over");

        // Successor observed one ack before the takeover, then seeds.
        let seen = plan.moves[0].shard;
        let mut next = Rebalancer::new();
        next.seed_in_flight(plan.clone(), &[seen]);
        assert_eq!(next.committed(), 1);
        assert_eq!(next.outstanding().len(), plan.moves.len() - 1);
        assert!(!next.outstanding().contains(&seen));
        assert!(
            next.boundary_tick(&plan.map).is_none(),
            "seeded migration blocks further commits like a native one"
        );

        // The remaining acks drain it to idle.
        for mv in &plan.moves[1..] {
            next.note_shard_ready(mv.shard);
        }
        assert!(next.migrating().is_none());
        assert!(next.is_quiescent());

        // Seeding with every shard already acked is an immediate no-op.
        let mut all_done = Rebalancer::new();
        let all: Vec<u32> = plan.moves.iter().map(|m| m.shard).collect();
        all_done.seed_in_flight(plan, &all);
        assert!(all_done.is_quiescent());
        assert_eq!(all_done.committed(), 1, "the map flip still counts");
    }

    #[test]
    fn quiescent_when_empty_and_unknown_acks_are_ignored() {
        let mut r = Rebalancer::new();
        assert!(r.is_quiescent());
        assert!(!r.note_shard_ready(3), "no migration in flight");
        assert!(r.boundary_tick(&map4()).is_none());
        r.propose(TopologyChange::Leave(0));
        assert!(!r.is_quiescent());
    }
}
