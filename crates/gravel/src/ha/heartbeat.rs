//! Heartbeat emission and phi-accrual failure detection.
//!
//! Every node runs one heartbeat thread ([`run`]) that (a) emits a
//! best-effort heartbeat to every peer each
//! [`HeartbeatConfig::interval`], and (b) drains its own heartbeat
//! mailbox into a per-node [`FailureDetector`].
//!
//! The detector is phi-accrual (Hayashibara et al.): instead of a
//! binary timeout it tracks an EWMA of each peer's inter-arrival times
//! and reports a continuous suspicion level
//!
//! ```text
//! phi(peer) = log10(e) · t_since_last_beat / mean_interval
//! ```
//!
//! — the negative log-probability of the current silence under an
//! exponential arrival model. Two thresholds split the scale:
//! `suspect_phi` (the peer is *slow*: e.g. a link-down window or a GC
//! pause) and `dead_phi` (the silence is so improbable the peer is
//! declared dead — and the verdict latches, because resurrecting a
//! declared-dead node would race recovery). Heartbeats ride the
//! transport's lossy heartbeat plane, so the EWMA naturally widens on
//! flaky links, which is exactly the adaptivity that makes phi-accrual
//! distinguish "slow network" from "dead process".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gravel_net::{ChaosPlan, Heartbeat, Transport};
use gravel_telemetry::Registry;

use crate::error::ErrorSlot;

/// log10(e): converts nats of improbability to phi's decimal scale.
const LOG10_E: f64 = std::f64::consts::LOG10_E;

/// Failure-detection tuning.
#[derive(Clone, Debug)]
pub struct HeartbeatConfig {
    /// Heartbeat emission period per peer.
    pub interval: Duration,
    /// Phi above which a peer is [`PeerStatus::Suspect`] (slow but not
    /// presumed dead). 3.0 ≈ "this silence had probability 10⁻³".
    pub suspect_phi: f64,
    /// Phi above which a peer is declared [`PeerStatus::Dead`]; latches.
    pub dead_phi: f64,
    /// Beats observed from a peer before its EWMA is trusted; until
    /// then the detector assumes a conservative mean of 4× `interval`.
    pub min_samples: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        // With a 5 ms beat and prior mean 20 ms, dead_phi = 8 needs
        // ~370 ms of total silence before declaring death — an order of
        // magnitude past worst-case scheduler noise, two orders past a
        // normal beat gap.
        HeartbeatConfig {
            interval: Duration::from_millis(5),
            suspect_phi: 3.0,
            dead_phi: 8.0,
            min_samples: 3,
        }
    }
}

/// A peer's health as judged by one observer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerStatus {
    /// Beats arriving at the expected rhythm.
    Alive,
    /// Silence improbable enough to notice (`phi >= suspect_phi`) but
    /// not to act on. Slow, partitioned, or pausing — still presumed
    /// recoverable.
    Suspect,
    /// Silence past `dead_phi`. Latched: the peer stays dead for this
    /// observer even if late beats arrive afterwards.
    Dead,
}

struct PeerState {
    last: Option<Instant>,
    /// EWMA of inter-arrival time, in nanoseconds.
    ewma_ns: f64,
    samples: u32,
    dead: bool,
}

/// One node's view of every peer's liveness.
///
/// Fed by the heartbeat thread but usable standalone (tests drive it
/// with explicit `Instant`s). All methods take `&self`; state is one
/// short mutex.
pub struct FailureDetector {
    cfg: HeartbeatConfig,
    /// When observation began — the baseline for peers that never beat,
    /// so a peer dead from birth is still detectable.
    started: Instant,
    peers: Mutex<HashMap<u32, PeerState>>,
}

impl FailureDetector {
    pub fn new(cfg: HeartbeatConfig) -> Self {
        FailureDetector { cfg, started: Instant::now(), peers: Mutex::new(HashMap::new()) }
    }

    pub fn config(&self) -> &HeartbeatConfig {
        &self.cfg
    }

    /// Record a heartbeat from `peer` observed at `now`.
    pub fn note_beat(&self, peer: u32, now: Instant) {
        let mut peers = self.peers.lock().unwrap_or_else(|p| p.into_inner());
        let st = peers.entry(peer).or_insert_with(|| self.fresh_peer());
        if let Some(last) = st.last {
            let gap = now.saturating_duration_since(last).as_nanos() as f64;
            st.ewma_ns = if st.samples == 0 { gap } else { 0.8 * st.ewma_ns + 0.2 * gap };
            st.samples = st.samples.saturating_add(1);
        }
        st.last = Some(now);
    }

    /// Current suspicion level for `peer` at `now`. 0 when a beat just
    /// arrived; grows linearly with silence. A latched-dead peer
    /// reports at least `dead_phi` forever.
    pub fn phi(&self, peer: u32, now: Instant) -> f64 {
        let mut peers = self.peers.lock().unwrap_or_else(|p| p.into_inner());
        let st = peers.entry(peer).or_insert_with(|| self.fresh_peer());
        if st.dead {
            return self.cfg.dead_phi.max(self.phi_of(st, now));
        }
        self.phi_of(st, now)
    }

    fn phi_of(&self, st: &PeerState, now: Instant) -> f64 {
        // Until the EWMA has enough samples, assume a conservative mean
        // of 4× the configured interval so startup jitter cannot kill a
        // healthy peer.
        let prior_ns = 4.0 * self.cfg.interval.as_nanos() as f64;
        let mean_ns = if st.samples >= self.cfg.min_samples {
            st.ewma_ns.max(1.0)
        } else {
            prior_ns
        };
        let last = st.last.unwrap_or(self.started);
        let silence_ns = now.saturating_duration_since(last).as_nanos() as f64;
        LOG10_E * silence_ns / mean_ns
    }

    /// Classify `peer` at `now`; crossing `dead_phi` latches.
    pub fn status(&self, peer: u32, now: Instant) -> PeerStatus {
        let mut peers = self.peers.lock().unwrap_or_else(|p| p.into_inner());
        let st = peers.entry(peer).or_insert_with(|| self.fresh_peer());
        if st.dead {
            return PeerStatus::Dead;
        }
        let phi = self.phi_of(st, now);
        if phi >= self.cfg.dead_phi {
            st.dead = true;
            PeerStatus::Dead
        } else if phi >= self.cfg.suspect_phi {
            PeerStatus::Suspect
        } else {
            PeerStatus::Alive
        }
    }

    /// Re-evaluate every known peer at `now`; returns peers that
    /// transitioned to dead *in this call* (each reported exactly once
    /// across the detector's lifetime).
    pub fn sweep(&self, now: Instant) -> Vec<u32> {
        let mut peers = self.peers.lock().unwrap_or_else(|p| p.into_inner());
        let cfg_dead = self.cfg.dead_phi;
        let mut newly_dead: Vec<u32> = Vec::new();
        let ids: Vec<u32> = peers.keys().copied().collect();
        for id in ids {
            let st = peers.get_mut(&id).expect("peer present");
            if !st.dead && self.phi_of(st, now) >= cfg_dead {
                st.dead = true;
                newly_dead.push(id);
            }
        }
        newly_dead.sort_unstable();
        newly_dead
    }

    /// Every peer currently latched dead.
    pub fn dead_peers(&self) -> Vec<u32> {
        let peers = self.peers.lock().unwrap_or_else(|p| p.into_inner());
        let mut dead: Vec<u32> =
            peers.iter().filter(|(_, s)| s.dead).map(|(id, _)| *id).collect();
        dead.sort_unstable();
        dead
    }

    /// How long `peer` has been silent at `now` (time since its last
    /// observed beat; since tracking began if it never beat). `None`
    /// for a peer the detector has never heard of. Beats keep updating
    /// `last` even on a latched-dead peer, so a small silence on a
    /// dead peer means its beats have *resumed* — the signal the
    /// membership layer's partition-heal revive sweep keys on.
    pub fn silence(&self, peer: u32, now: Instant) -> Option<Duration> {
        let peers = self.peers.lock().unwrap_or_else(|p| p.into_inner());
        let st = peers.get(&peer)?;
        Some(now.saturating_duration_since(st.last.unwrap_or(self.started)))
    }

    /// Forget `peer`'s latched verdict and restart its silence clock at
    /// `now`: the membership layer calls this when a declared-dead peer
    /// completes a fresh handshake (a *new* incarnation of the process,
    /// not a resurrection of the old one — the latch still protects
    /// against late beats from a zombie). The EWMA restarts from the
    /// conservative prior so the rejoined peer gets warmup slack.
    pub fn reset_peer(&self, peer: u32, now: Instant) {
        let mut peers = self.peers.lock().unwrap_or_else(|p| p.into_inner());
        peers.insert(
            peer,
            PeerState { last: Some(now), ewma_ns: 0.0, samples: 0, dead: false },
        );
    }

    /// Start observing `peer` from `now` (its silence clock starts
    /// here, not at detector construction). The heartbeat thread calls
    /// this for every peer at startup.
    pub fn track(&self, peer: u32, now: Instant) {
        let mut peers = self.peers.lock().unwrap_or_else(|p| p.into_inner());
        peers.entry(peer).or_insert(PeerState {
            last: Some(now),
            ewma_ns: 0.0,
            samples: 0,
            dead: false,
        });
    }

    fn fresh_peer(&self) -> PeerState {
        PeerState { last: None, ewma_ns: 0.0, samples: 0, dead: false }
    }
}

/// Heartbeat worker body for node `id` in an `n`-node cluster: emit a
/// beat to every peer each interval, drain the mailbox into `detector`,
/// sweep for deaths. Runs until the transport closes or the cluster
/// fails; restartable under the supervisor (the shared beat counter and
/// detector survive the thread).
#[allow(clippy::too_many_arguments)]
pub fn run(
    cfg: HeartbeatConfig,
    id: u32,
    nodes: u32,
    transport: Arc<dyn Transport>,
    detector: Arc<FailureDetector>,
    chaos: Option<Arc<ChaosPlan>>,
    errors: Arc<ErrorSlot>,
    registry: Arc<Registry>,
    beat_seq: Arc<AtomicU64>,
) {
    let beats_sent = registry.counter(&format!("node{id}.ha.beats_sent"));
    let deaths = registry.vital_counter("ha.deaths_declared");
    let phi_gauges: Vec<_> = (0..nodes)
        .map(|peer| registry.gauge(&format!("node{id}.ha.phi.node{peer}")))
        .collect();
    let start = Instant::now();
    for peer in 0..nodes {
        if peer != id {
            detector.track(peer, start);
        }
    }
    while !transport.is_closed() && !errors.is_set() {
        // Emit one beat per peer, unless a chaos blackhole suppresses
        // this node's outgoing beats right now.
        let beat = beat_seq.fetch_add(1, Ordering::Relaxed);
        let blackholed =
            chaos.as_deref().is_some_and(|c| c.heartbeat_blackholed(id, beat));
        if !blackholed {
            for peer in 0..nodes {
                if peer != id {
                    transport.send_heartbeat(Heartbeat { src: id, dest: peer, seq: beat });
                    beats_sent.inc();
                }
            }
        }
        // Drain everything that arrived since the last tick.
        let now = Instant::now();
        while let Some(hb) = transport.try_recv_heartbeat(id) {
            detector.note_beat(hb.src, now);
        }
        // Export suspicion and declare deaths.
        for peer in 0..nodes {
            if peer != id {
                let milli_phi = (detector.phi(peer, now) * 1000.0) as i64;
                phi_gauges[peer as usize].set(milli_phi);
            }
        }
        for _peer in detector.sweep(now) {
            deaths.inc();
        }
        std::thread::sleep(cfg.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HeartbeatConfig {
        HeartbeatConfig {
            interval: Duration::from_millis(5),
            suspect_phi: 3.0,
            dead_phi: 8.0,
            min_samples: 3,
        }
    }

    #[test]
    fn steady_beats_stay_alive() {
        let d = FailureDetector::new(cfg());
        let t0 = Instant::now();
        for i in 0..20 {
            d.note_beat(1, t0 + Duration::from_millis(5 * i));
        }
        let now = t0 + Duration::from_millis(5 * 20);
        assert_eq!(d.status(1, now), PeerStatus::Alive);
        assert!(d.phi(1, now) < 1.0, "phi = {}", d.phi(1, now));
    }

    #[test]
    fn phi_grows_linearly_with_silence() {
        let d = FailureDetector::new(cfg());
        let t0 = Instant::now();
        for i in 0..10 {
            d.note_beat(1, t0 + Duration::from_millis(5 * i));
        }
        let last = t0 + Duration::from_millis(45);
        let p1 = d.phi(1, last + Duration::from_millis(20));
        let p2 = d.phi(1, last + Duration::from_millis(40));
        assert!(p2 > 1.9 * p1 && p2 < 2.1 * p1, "p1 = {p1}, p2 = {p2}");
    }

    #[test]
    fn long_silence_is_suspect_then_dead_and_latches() {
        let d = FailureDetector::new(cfg());
        let t0 = Instant::now();
        for i in 0..10 {
            d.note_beat(1, t0 + Duration::from_millis(5 * i));
        }
        let last = t0 + Duration::from_millis(45);
        // EWMA mean ≈ 5 ms → suspect at ~34.5 ms silence, dead at ~92 ms.
        assert_eq!(d.status(1, last + Duration::from_millis(10)), PeerStatus::Alive);
        assert_eq!(d.status(1, last + Duration::from_millis(50)), PeerStatus::Suspect);
        assert_eq!(d.status(1, last + Duration::from_millis(200)), PeerStatus::Dead);
        // Latched: a late beat does not resurrect the peer.
        d.note_beat(1, last + Duration::from_millis(201));
        assert_eq!(d.status(1, last + Duration::from_millis(202)), PeerStatus::Dead);
        assert_eq!(d.dead_peers(), vec![1]);
    }

    #[test]
    fn reset_peer_clears_the_latch_for_a_rejoined_incarnation() {
        let d = FailureDetector::new(cfg());
        let t0 = Instant::now();
        d.track(1, t0);
        let dead_at = t0 + Duration::from_millis(500);
        assert_eq!(d.status(1, dead_at), PeerStatus::Dead);
        // Fresh handshake from the restarted process: latch clears and
        // the warmup prior applies again.
        let rejoin = dead_at + Duration::from_millis(10);
        d.reset_peer(1, rejoin);
        assert_eq!(d.status(1, rejoin + Duration::from_millis(20)), PeerStatus::Alive);
        assert_eq!(d.dead_peers(), Vec::<u32>::new());
        // And it can die again under renewed silence.
        assert_eq!(d.status(1, rejoin + Duration::from_millis(500)), PeerStatus::Dead);
    }

    #[test]
    fn silence_tracks_the_last_beat_even_after_the_latch() {
        let d = FailureDetector::new(cfg());
        let t0 = Instant::now();
        assert_eq!(d.silence(1, t0), None, "untracked peer has no silence");
        d.track(1, t0);
        assert_eq!(d.silence(1, t0 + Duration::from_millis(30)), Some(Duration::from_millis(30)));
        // Latch the death, then let beats resume: silence collapses to
        // near zero even though the verdict stays Dead — exactly what
        // the partition-heal revive sweep looks for.
        let dead_at = t0 + Duration::from_millis(500);
        assert_eq!(d.status(1, dead_at), PeerStatus::Dead);
        d.note_beat(1, dead_at + Duration::from_millis(5));
        assert_eq!(d.status(1, dead_at + Duration::from_millis(6)), PeerStatus::Dead);
        assert_eq!(
            d.silence(1, dead_at + Duration::from_millis(6)),
            Some(Duration::from_millis(1))
        );
    }

    #[test]
    fn dead_from_birth_is_detected_via_prior() {
        let d = FailureDetector::new(cfg());
        d.track(1, Instant::now());
        // Prior mean 20 ms → dead_phi = 8 needs ≈ 368 ms of silence.
        let now = Instant::now() + Duration::from_millis(500);
        assert_eq!(d.status(1, now), PeerStatus::Dead);
    }

    #[test]
    fn prior_mean_protects_during_warmup() {
        let d = FailureDetector::new(cfg());
        let t0 = Instant::now();
        // Two quick beats 1 ms apart: EWMA would say mean = 1 ms, but
        // with min_samples = 3 the 20 ms prior still applies, so a 30 ms
        // gap (phi ≈ 0.65 under the prior) is not even suspect.
        d.note_beat(1, t0);
        d.note_beat(1, t0 + Duration::from_millis(1));
        assert_eq!(
            d.status(1, t0 + Duration::from_millis(31)),
            PeerStatus::Alive
        );
    }

    #[test]
    fn sweep_reports_each_death_once() {
        let d = FailureDetector::new(cfg());
        let t0 = Instant::now();
        d.track(1, t0);
        d.track(2, t0);
        d.note_beat(2, t0 + Duration::from_millis(400));
        let later = t0 + Duration::from_millis(420);
        assert_eq!(d.sweep(later), vec![1], "only the silent peer dies");
        assert_eq!(d.sweep(later), Vec::<u32>::new(), "no double report");
        assert_eq!(d.dead_peers(), vec![1]);
    }

    #[test]
    fn jittery_but_live_peer_widens_ewma_instead_of_dying() {
        let d = FailureDetector::new(cfg());
        let t0 = Instant::now();
        // Irregular gaps between 5 and 40 ms — a flaky link. The EWMA
        // adapts upward, so a subsequent 40 ms gap stays below dead.
        let gaps = [5u64, 30, 10, 40, 15, 35, 8, 40];
        let mut t = t0;
        for g in gaps {
            t += Duration::from_millis(g);
            d.note_beat(1, t);
        }
        assert_ne!(d.status(1, t + Duration::from_millis(40)), PeerStatus::Dead);
    }
}
