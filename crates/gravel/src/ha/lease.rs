//! Coordinator lease, fencing terms, and quorum-gated death
//! corroboration.
//!
//! PR 8's elastic membership had one load-bearing caveat: node 0 was a
//! *fixed* coordinator. This module makes the role itself fault
//! tolerant with three small, separately testable pieces:
//!
//! - [`LeaseState`] — a monotonically increasing **term** (fencing
//!   token) paired with the node currently holding the coordinator
//!   lease for that term. Every TOPO/MAP control frame is stamped with
//!   the sender's term; receivers [`observe`](LeaseState::observe) the
//!   claim and **reject stale terms**, so a resurrected old coordinator
//!   cannot clobber a newer map no matter how fast it comes back.
//! - [`successor`] — the deterministic election rule: the next
//!   coordinator is the **lowest-id live member** of the last-committed
//!   membership. No randomized leader election, no extra round trips —
//!   every correct observer computes the same answer from the same map.
//! - [`VoteLedger`] + [`quorum`] — death corroboration. A node only
//!   acts on a phi-accrual death verdict (evicting the peer, or
//!   asserting a takeover term) once a **majority of the last-committed
//!   membership** has corroborated the death. A minority partition can
//!   therefore never evict the other side or fork the map: its vote
//!   rounds starve below quorum and the partition *freezes* (stale
//!   traffic keeps NACK-bouncing) until connectivity heals.
//!
//! Term collisions — two candidates asserting the same term — are
//! resolved deterministically to the **lower node id**; with the
//! all-lower-ranks-quorum-dead candidacy rule two live candidates can
//! only collide when a majority simultaneously misjudges one of them,
//! and the loser demotes itself on first contact with the winner's
//! beat.

use std::collections::{BTreeSet, HashMap};
use std::sync::Mutex;

/// The first term of a cluster's life, held by the lowest initial
/// member. Every node boots agreeing on this, so fencing works from
/// frame one without a handshake.
pub const INITIAL_TERM: u64 = 1;

/// One node's view of the coordinator lease: the highest term it has
/// accepted and who holds it.
pub struct LeaseState {
    me: u32,
    state: Mutex<(u64, u32)>,
}

impl LeaseState {
    /// Boot view: `initial_holder` holds [`INITIAL_TERM`].
    pub fn new(me: u32, initial_holder: u32) -> Self {
        LeaseState { me, state: Mutex::new((INITIAL_TERM, initial_holder)) }
    }

    /// `(term, holder)` as currently accepted.
    pub fn current(&self) -> (u64, u32) {
        *self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn term(&self) -> u64 {
        self.current().0
    }

    pub fn holder(&self) -> u32 {
        self.current().1
    }

    /// Does this node hold the lease right now?
    pub fn is_holder(&self) -> bool {
        let (_, holder) = self.current();
        holder == self.me
    }

    /// Observe a `(term, holder)` claim carried by a control frame.
    /// Returns `true` when the claim is current (accepted or already
    /// known), `false` when it is **stale** — the fencing verdict: a
    /// frame whose claim is rejected must not be applied.
    ///
    /// Rules: a higher term always wins; the known term with the known
    /// holder is fine; the known term with a *different* holder
    /// resolves to the lower node id (deterministic collision
    /// tie-break); a lower term is fenced off.
    pub fn observe(&self, term: u64, holder: u32) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        match term.cmp(&st.0) {
            std::cmp::Ordering::Greater => {
                *st = (term, holder);
                true
            }
            std::cmp::Ordering::Equal => {
                if holder == st.1 {
                    true
                } else if holder < st.1 {
                    st.1 = holder;
                    true
                } else {
                    false
                }
            }
            std::cmp::Ordering::Less => false,
        }
    }

    /// Take over: bump to a fresh term held by this node. Callers must
    /// have quorum-confirmed the previous holder's death first.
    /// Returns the asserted term.
    pub fn assert_takeover(&self) -> u64 {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *st = (st.0 + 1, self.me);
        st.0
    }

    /// Voluntary handoff (drain-leave of the holder): bump to a fresh
    /// term held by `successor`. Returns the new term.
    pub fn handoff(&self, successor: u32) -> u64 {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *st = (st.0 + 1, successor);
        st.0
    }
}

/// Deterministic successor election: the lowest-id member of
/// `members` not listed in `dead`. `None` when every member is dead.
pub fn successor(members: &[u32], dead: &[u32]) -> Option<u32> {
    members.iter().copied().filter(|m| !dead.contains(m)).min()
}

/// Majority quorum for a membership of `n`: more than half.
pub fn quorum(n: usize) -> usize {
    n / 2 + 1
}

#[derive(Default)]
struct Round {
    yes: BTreeSet<u32>,
    no: BTreeSet<u32>,
    vetoed: bool,
}

/// Per-suspect death-corroboration rounds. The initiator records its
/// own verdict plus every `DEATH_VOTE` reply; eviction (or takeover)
/// proceeds only once [`confirmed`](Self::confirmed) against the
/// last-committed membership.
#[derive(Default)]
pub struct VoteLedger {
    rounds: Mutex<HashMap<u32, Round>>,
}

impl VoteLedger {
    pub fn new() -> Self {
        VoteLedger::default()
    }

    /// Record `voter`'s verdict on `suspect`. A voter flipping its
    /// verdict (a revived peer's beats resumed mid-round) moves
    /// between the tallies rather than double counting.
    pub fn record(&self, suspect: u32, voter: u32, dead: bool) {
        let mut rounds = self.rounds.lock().unwrap_or_else(|p| p.into_inner());
        let r = rounds.entry(suspect).or_default();
        if dead {
            r.no.remove(&voter);
            r.yes.insert(voter);
        } else {
            r.yes.remove(&voter);
            r.no.insert(voter);
        }
    }

    /// Corroborating (dead) votes so far.
    pub fn yes_count(&self, suspect: u32) -> usize {
        let rounds = self.rounds.lock().unwrap_or_else(|p| p.into_inner());
        rounds.get(&suspect).map_or(0, |r| r.yes.len())
    }

    /// Has a majority of `members` corroborated the death? Only votes
    /// from current members count — a stale voter that was itself
    /// evicted cannot help form a quorum.
    pub fn confirmed(&self, suspect: u32, members: &[u32]) -> bool {
        let rounds = self.rounds.lock().unwrap_or_else(|p| p.into_inner());
        rounds.get(&suspect).is_some_and(|r| {
            r.yes.iter().filter(|v| members.contains(v)).count() >= quorum(members.len())
        })
    }

    /// Has the death been *denied* — so many live "not dead" replies
    /// that a confirming quorum can no longer form?
    pub fn denied(&self, suspect: u32, members: &[u32]) -> bool {
        let rounds = self.rounds.lock().unwrap_or_else(|p| p.into_inner());
        rounds.get(&suspect).is_some_and(|r| {
            let no = r.no.iter().filter(|v| members.contains(v)).count();
            members.len() - no < quorum(members.len())
        })
    }

    /// Latch the round as vetoed; true exactly once per round (for the
    /// `ha.evictions_vetoed` counter).
    pub fn note_veto(&self, suspect: u32) -> bool {
        let mut rounds = self.rounds.lock().unwrap_or_else(|p| p.into_inner());
        let r = rounds.entry(suspect).or_default();
        let first = !r.vetoed;
        r.vetoed = true;
        first
    }

    /// Forget the round (the suspect revived, was evicted, or the
    /// veto backoff expired and suspicion should restart clean).
    pub fn clear(&self, suspect: u32) {
        let mut rounds = self.rounds.lock().unwrap_or_else(|p| p.into_inner());
        rounds.remove(&suspect);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_state_agrees_everywhere() {
        for me in 0..4 {
            let l = LeaseState::new(me, 0);
            assert_eq!(l.current(), (INITIAL_TERM, 0));
            assert_eq!(l.is_holder(), me == 0);
        }
    }

    #[test]
    fn observe_fences_stale_terms() {
        let l = LeaseState::new(3, 0);
        assert!(l.observe(1, 0), "the known claim is fine");
        assert!(l.observe(2, 1), "a higher term wins");
        assert_eq!(l.current(), (2, 1));
        assert!(!l.observe(1, 0), "the resurrected old coordinator is fenced");
        assert_eq!(l.current(), (2, 1), "stale claims change nothing");
        assert!(l.observe(5, 2), "terms may skip forward");
        assert!(!l.observe(4, 3), "anything below the accepted term is stale");
    }

    #[test]
    fn equal_term_collisions_resolve_to_the_lower_id() {
        let l = LeaseState::new(5, 0);
        assert!(l.observe(2, 2), "first claim of term 2 accepted");
        assert!(!l.observe(2, 3), "higher-id twin rejected");
        assert_eq!(l.holder(), 2);
        assert!(l.observe(2, 1), "lower-id twin wins the collision");
        assert_eq!(l.current(), (2, 1));
    }

    #[test]
    fn takeover_and_handoff_bump_the_term() {
        let l = LeaseState::new(1, 0);
        assert!(!l.is_holder());
        assert_eq!(l.assert_takeover(), 2);
        assert!(l.is_holder());
        assert_eq!(l.current(), (2, 1));
        assert_eq!(l.handoff(3), 3);
        assert!(!l.is_holder());
        assert_eq!(l.current(), (3, 3));
        // The old holder's own frames are now stale by its own rules.
        assert!(!l.observe(2, 1));
    }

    #[test]
    fn successor_is_the_lowest_live_member() {
        assert_eq!(successor(&[0, 1, 2, 3], &[0]), Some(1));
        assert_eq!(successor(&[0, 1, 2, 3], &[0, 1]), Some(2));
        assert_eq!(successor(&[2, 4, 6], &[]), Some(2));
        assert_eq!(successor(&[2, 4, 6], &[2, 4, 6]), None);
        assert_eq!(successor(&[1, 3], &[5]), Some(1), "non-member deaths are irrelevant");
    }

    #[test]
    fn quorum_is_a_strict_majority() {
        assert_eq!(quorum(1), 1);
        assert_eq!(quorum(2), 2);
        assert_eq!(quorum(3), 2);
        assert_eq!(quorum(4), 3);
        assert_eq!(quorum(5), 3);
        assert_eq!(quorum(6), 4);
    }

    #[test]
    fn votes_accumulate_to_quorum() {
        let members = [0u32, 1, 2, 3, 4, 5];
        let v = VoteLedger::new();
        v.record(9, 0, true);
        v.record(9, 1, true);
        v.record(9, 2, true);
        assert!(!v.confirmed(9, &members), "3 of 6 is not a majority");
        v.record(9, 3, true);
        assert!(v.confirmed(9, &members), "4 of 6 confirms");
        assert_eq!(v.yes_count(9), 4);
    }

    #[test]
    fn minority_partition_starves_below_quorum() {
        // A 3/3 split: the island {0,1,2} can only gather its own three
        // votes on the deaths it perceives — never a majority of 6.
        let members = [0u32, 1, 2, 3, 4, 5];
        let v = VoteLedger::new();
        for voter in [0, 1, 2] {
            v.record(3, voter, true);
        }
        assert!(!v.confirmed(3, &members));
        assert!(!v.denied(3, &members), "absent votes are not denials");
    }

    #[test]
    fn live_replies_deny_the_death() {
        let members = [0u32, 1, 2, 3];
        let v = VoteLedger::new();
        v.record(2, 0, true);
        v.record(2, 1, false);
        v.record(2, 3, false);
        // Two live denials leave at most 2 possible yes votes < quorum 3.
        assert!(v.denied(2, &members));
        assert!(!v.confirmed(2, &members));
        // A flipped verdict moves between tallies instead of doubling.
        v.record(2, 1, true);
        assert_eq!(v.yes_count(2), 2);
    }

    #[test]
    fn veto_latches_once_and_clear_resets() {
        let v = VoteLedger::new();
        v.record(7, 0, false);
        assert!(v.note_veto(7), "first veto counts");
        assert!(!v.note_veto(7), "second does not");
        v.clear(7);
        assert!(v.note_veto(7), "a fresh round can veto again");
    }

    #[test]
    fn evicted_voters_do_not_count_towards_quorum() {
        let v = VoteLedger::new();
        for voter in [7, 8, 9] {
            v.record(1, voter, true);
        }
        assert!(!v.confirmed(1, &[0, 1, 2, 3]), "ghost votes are ignored");
        v.record(1, 0, true);
        v.record(1, 2, true);
        v.record(1, 3, true);
        assert!(v.confirmed(1, &[0, 1, 2, 3]));
    }
}
