//! Worker supervision: restart panicked workers instead of aborting.
//!
//! The runtime's worker threads (aggregator lanes, network threads,
//! heartbeat emitters) are spawned through a [`Supervisor`]. Each worker
//! is a restartable body (`Arc<dyn Fn()>` over state that outlives the
//! thread); when a worker panics, a monitor thread joins the corpse and
//! respawns the body with exponential backoff, up to
//! [`SupervisorConfig::max_restarts`] restarts per sliding
//! [`SupervisorConfig::restart_window`]. Budget exhaustion (or a restart
//! attempted after the cluster already failed) escalates the panic as a
//! [`RuntimeError::WorkerPanic`] carrying the worker's thread name and
//! the *last* panic message — exactly what an unsupervised runtime would
//! have reported on the first panic.
//!
//! Every worker thread is joined exactly once — on its exit event, or
//! at [`Supervisor::stop`] — regardless of how many workers failed, so
//! no thread can leak past `Runtime::drop` even when several workers
//! panic concurrently.

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use gravel_telemetry::Registry;

use crate::error::{panic_message, ErrorSlot, RuntimeError};

/// Restart policy for supervised workers.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Restarts allowed per worker within [`restart_window`](Self::restart_window);
    /// the next panic escalates. `0` disables restarts entirely (every
    /// panic is terminal, the pre-HA behaviour).
    pub max_restarts: u32,
    /// Sliding window the restart budget applies to.
    pub restart_window: Duration,
    /// Backoff before the first restart of a worker; doubles per restart
    /// in the window.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        // Five restarts in ten seconds absorbs a burst of transient
        // failures; a worker that keeps dying faster than that has a
        // deterministic bug and should escalate. Backoff stays small —
        // the go-back-N retransmission timer (25 ms+) dominates recovery
        // latency anyway.
        SupervisorConfig {
            max_restarts: 5,
            restart_window: Duration::from_secs(10),
            backoff: Duration::from_millis(2),
            backoff_max: Duration::from_millis(50),
        }
    }
}

/// What pipeline role a worker plays; shutdown joins roles in order
/// (aggregators before the transport closes, receivers after).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerKind {
    /// Aggregator lane (sender half of the delivery protocol).
    Aggregator,
    /// Network thread (receiver half).
    Net,
    /// Heartbeat emitter / failure-detector driver.
    Heartbeat,
    /// Elastic-topology coordinator driver (owns no protocol state —
    /// that lives in the supervisor's [`Rebalancer`], so a restarted
    /// driver resumes the in-flight migration exactly).
    Rebalance,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Running,
    Done,
    Failed,
}

struct Worker {
    name: String,
    kind: WorkerKind,
    node: u32,
    body: Arc<dyn Fn() + Send + Sync>,
    status: Status,
    handle: Option<JoinHandle<()>>,
    /// Timestamps of restarts inside the current window.
    restarts: Vec<Instant>,
}

enum Event {
    Exited { id: usize, panic: Option<String> },
    Stop,
}

struct Shared {
    workers: Mutex<Vec<Worker>>,
    changed: Condvar,
}

fn lock_workers(shared: &Shared) -> MutexGuard<'_, Vec<Worker>> {
    // A poisoned lock here means the monitor panicked mid-update; the
    // worker table itself is still consistent (all updates are
    // single-field writes).
    shared.workers.lock().unwrap_or_else(|p| p.into_inner())
}

/// Spawns and supervises the runtime's worker threads. One monitor
/// thread per runtime processes exit events; all bookkeeping lives in a
/// shared table so [`join_kind`](Self::join_kind) can block on worker
/// states without talking to the monitor.
pub struct Supervisor {
    cfg: SupervisorConfig,
    shared: Arc<Shared>,
    tx: Sender<Event>,
    monitor: Option<JoinHandle<()>>,
    /// Coordinator-side topology-change state (queued proposals, the
    /// in-flight migration). Owned here — outside any worker thread —
    /// for the same reason `LaneState`/`RecvState` are: a supervised
    /// restart of the [`WorkerKind::Rebalance`] driver must resume the
    /// protocol exactly where its predecessor died.
    rebalancer: Arc<Mutex<super::rebalance::Rebalancer>>,
}

impl Supervisor {
    /// Start a supervisor recording restarts/escalations into `errors`
    /// and `registry` (`ha.restarts`, `node{N}.ha.restarts`,
    /// `ha.recovery_ns`).
    pub fn new(cfg: SupervisorConfig, errors: Arc<ErrorSlot>, registry: Arc<Registry>) -> Self {
        let shared = Arc::new(Shared { workers: Mutex::new(Vec::new()), changed: Condvar::new() });
        let (tx, rx) = unbounded::<Event>();
        let monitor = {
            let (cfg, shared, tx) = (cfg.clone(), shared.clone(), tx.clone());
            std::thread::Builder::new()
                .name("gravel-supervisor".into())
                .spawn(move || monitor_loop(cfg, shared, tx, rx, errors, registry))
                .expect("spawn supervisor monitor")
        };
        Supervisor {
            cfg,
            shared,
            tx,
            monitor: Some(monitor),
            rebalancer: Arc::new(Mutex::new(super::rebalance::Rebalancer::new())),
        }
    }

    /// The supervisor-owned topology-change state machine; clone the
    /// handle into a [`WorkerKind::Rebalance`] driver body.
    pub fn rebalancer(&self) -> Arc<Mutex<super::rebalance::Rebalancer>> {
        self.rebalancer.clone()
    }

    /// Spawn a supervised worker. `body` must be re-runnable: all state
    /// that survives a restart lives behind the `Arc`s it captures.
    pub fn spawn(&self, name: String, kind: WorkerKind, node: u32, body: Arc<dyn Fn() + Send + Sync>) {
        let mut ws = lock_workers(&self.shared);
        let id = ws.len();
        let handle = spawn_worker_thread(&name, id, body.clone(), self.tx.clone());
        ws.push(Worker {
            name,
            kind,
            node,
            body,
            status: Status::Running,
            handle: Some(handle),
            restarts: Vec::new(),
        });
    }

    /// Block until every worker of `kind` has exited for good (`Done` or
    /// `Failed` — a worker mid-restart still counts as running).
    pub fn join_kind(&self, kind: WorkerKind) {
        let mut ws = lock_workers(&self.shared);
        while ws.iter().any(|w| w.kind == kind && w.status == Status::Running) {
            let (guard, _) = self
                .shared
                .changed
                .wait_timeout(ws, Duration::from_millis(100))
                .unwrap_or_else(|p| p.into_inner());
            ws = guard;
        }
    }

    /// Stop supervising: no further restarts, join every thread that is
    /// still alive, then join the monitor. Call only after the workers'
    /// exit conditions hold (queues closed, transport closed), or this
    /// blocks until they do.
    pub fn stop(mut self) {
        let _ = self.tx.send(Event::Stop);
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
    }

    /// The configured restart policy.
    pub fn config(&self) -> &SupervisorConfig {
        &self.cfg
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        if let Some(m) = self.monitor.take() {
            let _ = self.tx.send(Event::Stop);
            let _ = m.join();
        }
    }
}

/// Run `body` in a named thread; deliver the exit (clean or panicked)
/// to the monitor. The catch_unwind boundary means `join` never itself
/// propagates a panic.
fn spawn_worker_thread(
    name: &str,
    id: usize,
    body: Arc<dyn Fn() + Send + Sync>,
    tx: Sender<Event>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            let panic = std::panic::catch_unwind(AssertUnwindSafe(|| body()))
                .err()
                .map(|payload| panic_message(payload.as_ref()));
            let _ = tx.send(Event::Exited { id, panic });
        })
        .expect("spawn supervised worker")
}

fn monitor_loop(
    cfg: SupervisorConfig,
    shared: Arc<Shared>,
    tx: Sender<Event>,
    rx: Receiver<Event>,
    errors: Arc<ErrorSlot>,
    registry: Arc<Registry>,
) {
    // Restarts are robustness signal, not observability garnish: count
    // them even under TelemetryConfig::Off.
    let restarts_total = registry.vital_counter("ha.restarts");
    let recovery_ns = registry.histogram("ha.recovery_ns");
    while let Ok(event) = rx.recv() {
        match event {
            Event::Exited { id, panic } => {
                let observed = Instant::now();
                let mut ws = lock_workers(&shared);
                // The thread has sent its last message; join returns
                // promptly and can never unwind (panics were caught).
                if let Some(h) = ws[id].handle.take() {
                    let _ = h.join();
                }
                match panic {
                    None => ws[id].status = Status::Done,
                    Some(message) => {
                        let now = Instant::now();
                        let window = cfg.restart_window;
                        ws[id].restarts.retain(|t| now.duration_since(*t) < window);
                        let attempt = ws[id].restarts.len() as u32;
                        if attempt < cfg.max_restarts && !errors.is_set() {
                            ws[id].restarts.push(now);
                            let (name, node, body) =
                                (ws[id].name.clone(), ws[id].node, ws[id].body.clone());
                            drop(ws);
                            let backoff = (cfg.backoff * 2u32.saturating_pow(attempt))
                                .min(cfg.backoff_max);
                            std::thread::sleep(backoff);
                            let handle = spawn_worker_thread(&name, id, body, tx.clone());
                            restarts_total.add(1);
                            registry.vital_counter(&format!("node{node}.ha.restarts")).add(1);
                            recovery_ns.record(observed.elapsed().as_nanos() as u64);
                            let mut ws = lock_workers(&shared);
                            ws[id].handle = Some(handle);
                            // status stays Running
                        } else {
                            errors.set(RuntimeError::WorkerPanic {
                                thread: ws[id].name.clone(),
                                message,
                            });
                            ws[id].status = Status::Failed;
                        }
                    }
                }
                shared.changed.notify_all();
            }
            Event::Stop => break,
        }
    }
    // Final sweep: join anything still alive (blocks until the worker's
    // exit condition — closed queue/transport — lets it leave), and
    // absorb exit events that raced the Stop. No restarts from here on.
    loop {
        let pending: Vec<(usize, JoinHandle<()>)> = {
            let mut ws = lock_workers(&shared);
            ws.iter_mut()
                .enumerate()
                .filter_map(|(i, w)| w.handle.take().map(|h| (i, h)))
                .collect()
        };
        if pending.is_empty() {
            break;
        }
        for (id, h) in pending {
            let _ = h.join();
            let mut ws = lock_workers(&shared);
            if ws[id].status == Status::Running {
                ws[id].status = Status::Done;
            }
        }
    }
    // Drain the mailbox so late Exited events don't keep handles queued.
    while rx.try_recv().is_ok() {}
    shared.changed.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use gravel_telemetry::TelemetryConfig;

    fn sup(max_restarts: u32) -> (Supervisor, Arc<ErrorSlot>, Arc<Registry>) {
        let errors = Arc::new(ErrorSlot::default());
        let registry = Arc::new(Registry::new(TelemetryConfig::Counters));
        let cfg = SupervisorConfig {
            max_restarts,
            restart_window: Duration::from_secs(5),
            backoff: Duration::from_millis(1),
            backoff_max: Duration::from_millis(4),
        };
        (Supervisor::new(cfg, errors.clone(), registry.clone()), errors, registry)
    }

    #[test]
    fn clean_exit_is_not_restarted() {
        let (s, errors, registry) = sup(5);
        let runs = Arc::new(AtomicU32::new(0));
        let r = runs.clone();
        s.spawn("w".into(), WorkerKind::Net, 0, Arc::new(move || {
            r.fetch_add(1, Ordering::SeqCst);
        }));
        s.join_kind(WorkerKind::Net);
        s.stop();
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert!(!errors.is_set());
        assert_eq!(registry.snapshot().counter("ha.restarts"), 0);
    }

    #[test]
    fn panics_restart_until_success() {
        let (s, errors, registry) = sup(5);
        let runs = Arc::new(AtomicU32::new(0));
        let r = runs.clone();
        s.spawn("w".into(), WorkerKind::Aggregator, 3, Arc::new(move || {
            // Panic twice, then exit cleanly.
            if r.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
        }));
        s.join_kind(WorkerKind::Aggregator);
        s.stop();
        assert_eq!(runs.load(Ordering::SeqCst), 3);
        assert!(!errors.is_set(), "transient failures absorbed");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ha.restarts"), 2);
        assert_eq!(snap.counter("node3.ha.restarts"), 2);
        assert_eq!(snap.histogram("ha.recovery_ns").map(|h| h.count), Some(2));
    }

    #[test]
    fn budget_exhaustion_escalates_last_panic() {
        let (s, errors, registry) = sup(2);
        let runs = Arc::new(AtomicU32::new(0));
        let r = runs.clone();
        s.spawn("gravel-net-7".into(), WorkerKind::Net, 7, Arc::new(move || {
            let n = r.fetch_add(1, Ordering::SeqCst);
            panic!("persistent failure #{n}");
        }));
        s.join_kind(WorkerKind::Net);
        s.stop();
        assert_eq!(runs.load(Ordering::SeqCst), 3, "original + 2 restarts");
        match errors.take() {
            Some(RuntimeError::WorkerPanic { thread, message }) => {
                assert_eq!(thread, "gravel-net-7");
                assert!(message.contains("persistent failure #2"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        assert_eq!(registry.snapshot().counter("ha.restarts"), 2);
    }

    #[test]
    fn zero_budget_is_terminal_on_first_panic() {
        let (s, errors, _) = sup(0);
        s.spawn("w".into(), WorkerKind::Net, 0, Arc::new(|| panic!("boom")));
        s.join_kind(WorkerKind::Net);
        s.stop();
        assert!(errors.is_set());
    }

    #[test]
    fn all_workers_joined_even_after_multiple_failures() {
        let (s, errors, _) = sup(0);
        // Two workers panic, a third exits cleanly; stop() must join all
        // three without hanging and both panics must be observed (first
        // recorded, second dropped by first-failure-wins).
        s.spawn("a".into(), WorkerKind::Aggregator, 0, Arc::new(|| panic!("first")));
        s.spawn("b".into(), WorkerKind::Net, 1, Arc::new(|| panic!("second")));
        s.spawn("c".into(), WorkerKind::Net, 2, Arc::new(|| {}));
        s.join_kind(WorkerKind::Aggregator);
        s.join_kind(WorkerKind::Net);
        s.stop();
        assert!(errors.is_set());
    }

    #[test]
    fn no_restart_once_cluster_failed() {
        let (s, errors, registry) = sup(5);
        errors.set(RuntimeError::WorkerPanic { thread: "x".into(), message: "prior".into() });
        s.spawn("w".into(), WorkerKind::Net, 0, Arc::new(|| panic!("late")));
        s.join_kind(WorkerKind::Net);
        s.stop();
        assert_eq!(registry.snapshot().counter("ha.restarts"), 0);
    }
}
