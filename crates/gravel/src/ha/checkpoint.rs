//! Epoch checkpointing: consistent snapshots plus per-node replay logs.
//!
//! The runtime cuts an *epoch* at a quiescent point (no messages in
//! flight): it snapshots every node's PGAS heap, captures application
//! progress through the [`Checkpoint`] trait, and clears each node's
//! [`ReplayLog`]. From then on every message a node's network thread
//! fully applies is also appended (as raw packet words) to that node's
//! log. Recovering a dead node is then: restore the heap from the epoch
//! snapshot, re-apply the log. Because messages in this system are
//! commutative-by-construction within an epoch's delivery order (the
//! log preserves the *actual* apply order), the replay reproduces the
//! exact pre-death heap — bit-for-bit, which is what the chaos
//! acceptance test asserts.
//!
//! The epoch cut must not race active dispatch:
//! [`GravelRuntime::cut_epoch`](crate::GravelRuntime::cut_epoch) quiesces
//! first and documents that callers cut between supersteps.

use std::sync::Mutex;

/// Application-level progress that must survive a node death.
///
/// The runtime snapshots heaps itself; anything the *application*
/// tracks outside the heap (iteration counters, dispatch cursors,
/// accumulated results) goes through this trait. Encodings are flat
/// `u64` words to match the heap and message formats — apps own the
/// layout of their own words.
pub trait Checkpoint {
    /// Serialize progress into flat words.
    fn save(&self) -> Vec<u64>;
    /// Restore progress from words produced by [`save`](Self::save).
    fn restore(&mut self, words: &[u64]);
}

/// A consistent cluster snapshot taken at an epoch cut.
#[derive(Clone, Debug, Default)]
pub struct EpochSnapshot {
    /// Monotonic epoch number (first cut = 1).
    pub epoch: u64,
    /// Per-node heap images, indexed by node id.
    pub heaps: Vec<Vec<u64>>,
    /// Application progress words from the [`Checkpoint`] hook (empty
    /// when the cut was taken without one).
    pub app: Vec<u64>,
}

/// Words applied by one node since the last epoch cut, in apply order.
///
/// Appended by the network thread on *packet completion* (a packet
/// interrupted by a mid-apply panic is not logged — its retransmission
/// will be, once it completes), drained by recovery. Contention is one
/// uncontended lock per applied packet.
#[derive(Debug, Default)]
pub struct ReplayLog {
    words: Mutex<Vec<u64>>,
}

impl ReplayLog {
    pub fn new() -> Self {
        ReplayLog::default()
    }

    /// Append a fully-applied packet's message words.
    pub fn append(&self, words: &[u64]) {
        self.lock().extend_from_slice(words);
    }

    /// Forget everything (called at each epoch cut).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Copy of the logged words, in apply order.
    pub fn snapshot(&self) -> Vec<u64> {
        self.lock().clone()
    }

    /// Logged volume in words.
    pub fn len_words(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<u64>> {
        // Poison recovery: a panicking worker mid-append leaves at worst
        // a partially-extended Vec, which recovery treats as truncated —
        // the packet will be re-applied and re-logged after restart.
        self.words.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_log_appends_in_order_and_clears() {
        let log = ReplayLog::new();
        assert_eq!(log.len_words(), 0);
        log.append(&[1, 2, 3]);
        log.append(&[4]);
        assert_eq!(log.snapshot(), vec![1, 2, 3, 4]);
        assert_eq!(log.len_words(), 4);
        log.clear();
        assert_eq!(log.len_words(), 0);
        assert!(log.snapshot().is_empty());
    }

    struct Toy {
        iter: u64,
        acc: Vec<u64>,
    }

    impl Checkpoint for Toy {
        fn save(&self) -> Vec<u64> {
            let mut w = vec![self.iter, self.acc.len() as u64];
            w.extend_from_slice(&self.acc);
            w
        }
        fn restore(&mut self, words: &[u64]) {
            self.iter = words[0];
            let n = words[1] as usize;
            self.acc = words[2..2 + n].to_vec();
        }
    }

    #[test]
    fn checkpoint_trait_roundtrips() {
        let orig = Toy { iter: 7, acc: vec![10, 20, 30] };
        let words = orig.save();
        let mut fresh = Toy { iter: 0, acc: Vec::new() };
        fresh.restore(&words);
        assert_eq!(fresh.iter, 7);
        assert_eq!(fresh.acc, vec![10, 20, 30]);
    }

    #[test]
    fn epoch_snapshot_holds_per_node_heaps() {
        let snap = EpochSnapshot {
            epoch: 1,
            heaps: vec![vec![1, 2], vec![3, 4]],
            app: vec![9],
        };
        let copy = snap.clone();
        assert_eq!(copy.epoch, 1);
        assert_eq!(copy.heaps[1], vec![3, 4]);
        assert_eq!(copy.app, vec![9]);
    }
}
