//! gravel-ha — node-level fault tolerance for the live runtime.
//!
//! PR 1 made *links* survivable: the delivery protocol (sequence
//! numbers, cumulative acks, go-back-N retransmission) delivers every
//! message exactly once over a transport that drops, duplicates, and
//! reorders. This layer makes *nodes* survivable. Three mechanisms,
//! composable and individually switchable through [`HaConfig`]:
//!
//! 1. **Failure detection** ([`heartbeat`]) — every node emits
//!    best-effort heartbeats over the transport's heartbeat plane; a
//!    phi-accrual detector per observer turns inter-arrival statistics
//!    into a continuous suspicion level, distinguishing *slow* (phi
//!    above the suspect threshold, below dead) from *dead* (phi above
//!    the dead threshold). Suspicion is exported as per-peer gauges.
//!
//! 2. **Supervised restart** ([`supervisor`]) — worker threads
//!    (aggregators, network threads, heartbeat emitters) run under a
//!    supervisor that restarts a panicked worker with exponential
//!    backoff, bounded per restart window. Worker state (go-back-N
//!    windows, receive cursors) lives in shared `Mutex`es outside the
//!    threads, so a restarted worker resumes exactly where its
//!    predecessor died; the delivery protocol's sequence numbers and
//!    acks make the replay exact. Budget exhaustion escalates the
//!    original panic through the runtime's [`ErrorSlot`](crate::ErrorSlot).
//!
//! 3. **Epoch checkpointing** ([`checkpoint`]) — the runtime
//!    periodically cuts a consistent epoch (a quiesce-lite barrier),
//!    snapshots every node's PGAS heap plus app progress (via the
//!    [`Checkpoint`] trait), and keeps a per-node replay log of
//!    messages applied since. A node declared dead is restored from the
//!    epoch snapshot and the log is replayed, reproducing the exact
//!    pre-death heap.
//!
//! A fourth mechanism builds on the first three: **elastic
//! rebalancing** ([`rebalance`]) — the coordinator-side state machine
//! that commits JOIN/LEAVE/EVICT proposals one at a time at epoch
//! boundaries and tracks the resulting shard migration; the supervisor
//! owns it so the driver thread can be restarted around intact
//! protocol state (DESIGN.md §16).
//!
//! A fifth makes the coordinator *role* itself survivable: **lease +
//! fencing + quorum** ([`lease`]) — a monotonically increasing term
//! stamped into every topology frame fences off resurrected stale
//! coordinators, a deterministic lowest-live-member rule elects the
//! successor, and a death-vote quorum over the last-committed
//! membership prevents a minority partition from evicting anyone or
//! forking the map (DESIGN.md §18).
//!
//! The chaos side — *injecting* the process faults these mechanisms
//! absorb — lives in `gravel-net`'s [`ChaosPlan`](gravel_net::ChaosPlan),
//! next to the link-fault machinery it extends.
//!
//! What is **not** recovered (see DESIGN.md §11): messages still in the
//! GPU producer/consumer queue at the instant of a *node* death (a
//! worker restart preserves them), and panics at arbitrary instruction
//! boundaries — injected chaos fires only at message boundaries, which
//! is what makes restart exactness provable.

pub mod checkpoint;
pub mod heartbeat;
pub mod lease;
pub mod rebalance;
pub mod supervisor;

pub use checkpoint::{Checkpoint, EpochSnapshot, ReplayLog};
pub use heartbeat::{FailureDetector, HeartbeatConfig, PeerStatus};
pub use lease::{quorum, successor, LeaseState, VoteLedger, INITIAL_TERM};
pub use rebalance::{RebalancePlan, Rebalancer, TopologyChange};
pub use supervisor::{Supervisor, SupervisorConfig, WorkerKind};

/// Fault-tolerance configuration of a runtime.
#[derive(Clone, Debug, Default)]
pub struct HaConfig {
    /// Worker restart policy. Always present; set
    /// `supervisor.max_restarts = 0` for the pre-HA behaviour where the
    /// first worker panic is terminal.
    pub supervisor: SupervisorConfig,
    /// Heartbeat emission + phi-accrual failure detection. `None` (the
    /// default) spawns no heartbeat threads — detection costs one thread
    /// per node, which short-lived test clusters don't want.
    pub heartbeat: Option<HeartbeatConfig>,
    /// Keep per-node replay logs so [`cut_epoch`](crate::GravelRuntime::cut_epoch)
    /// / [`recover_node`](crate::GravelRuntime::recover_node) can restore
    /// a dead node exactly. Off by default: the log grows with traffic
    /// between epoch cuts.
    pub checkpoint: bool,
}
