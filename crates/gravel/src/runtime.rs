//! The Gravel runtime.
//!
//! [`GravelRuntime`] hosts an N-node Gravel cluster inside one process:
//! each node gets a symmetric heap, a producer/consumer queue, an
//! aggregator thread, and a network thread; "the network" is a pluggable
//! [`Transport`] — bounded in-memory channels by default, optionally
//! wrapped in a seeded fault injector
//! ([`TransportKind::Unreliable`](gravel_net::TransportKind)). GPU
//! kernels are dispatched onto the SIMT engine and offload PGAS
//! operations through their node's queue exactly as on the paper's APUs —
//! queue → aggregator → per-node queues → network thread → remote heap —
//! with the delivery protocol (sequence numbers, cumulative acks,
//! go-back-N retransmission) providing exactly-once semantics even when
//! the transport drops, duplicates, or reorders packets.
//!
//! ```
//! use gravel_core::{GravelConfig, GravelRuntime};
//! use gravel_simt::LaneVec;
//!
//! // 2 nodes, 16-element heaps; every work-item on node 0 increments a
//! // counter on node 1.
//! let rt = GravelRuntime::new(GravelConfig::small(2, 16));
//! rt.dispatch(0, 1, |ctx| {
//!     let dests = LaneVec::splat(ctx.wg.wg_size(), 1u32);
//!     let addrs = LaneVec::splat(ctx.wg.wg_size(), 0u64);
//!     let vals = LaneVec::splat(ctx.wg.wg_size(), 1u64);
//!     ctx.shmem_inc(&dests, &addrs, &vals);
//! });
//! rt.quiesce();
//! assert_eq!(rt.heap(1).load(0), 64); // one WG of 64 work-items
//! let _stats = rt.shutdown().expect("clean shutdown");
//! ```

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gravel_net::{ChannelTransport, Transport, TransportKind, UnreliableTransport};
use gravel_pgas::{AmRegistry, FlushPolicy, QuarantinedMessage, SymmetricHeap};
use gravel_simt::{DispatchResult, Grid, SimtEngine};
use gravel_telemetry::{Registry, RegistrySnapshot, Tracer};

use crate::aggregator::{self, LaneState};
use crate::config::GravelConfig;
use crate::ctx::GravelCtx;
use crate::error::{ErrorSlot, RuntimeError};
use crate::ha::{heartbeat, Checkpoint, EpochSnapshot, FailureDetector, Supervisor, WorkerKind};
use crate::netthread::{self, RecvState};
use crate::node::NodeShared;
use crate::stats::{HaStats, RuntimeStats};

/// Poll interval of the quiescence loop.
/// Park cap for quiescence polling (the wait escalates from a short
/// spin up to this).
const QUIESCE_POLL: Duration = Duration::from_micros(200);

/// An in-process Gravel cluster.
pub struct GravelRuntime {
    cfg: GravelConfig,
    nodes: Vec<Arc<NodeShared>>,
    engine: SimtEngine,
    transport: Arc<dyn Transport>,
    registry: Arc<Registry>,
    tracer: Tracer,
    errors: Arc<ErrorSlot>,
    /// All worker threads (aggregators, net threads, heartbeat emitters)
    /// run under the supervisor; `None` only after shutdown.
    supervisor: Option<Supervisor>,
    /// Per-node failure detectors; empty unless `cfg.ha.heartbeat`.
    detectors: Vec<Arc<FailureDetector>>,
    /// Per-node receiver state, shared with the (restartable) network
    /// threads so recovery can reset mid-packet cursors.
    recv_states: Vec<Arc<Mutex<RecvState>>>,
    /// The most recent epoch checkpoint (`cfg.ha.checkpoint` only).
    epoch: Mutex<Option<EpochSnapshot>>,
    shut_down: bool,
}

impl GravelRuntime {
    /// Start a cluster with no active-message handlers.
    pub fn new(cfg: GravelConfig) -> Self {
        Self::with_handlers(cfg, |_| {})
    }

    /// Start a cluster, registering active-message handlers first (the
    /// registry is replicated logically on every node, as in SPMD codes).
    pub fn with_handlers(cfg: GravelConfig, register: impl FnOnce(&mut AmRegistry)) -> Self {
        cfg.validate();
        let mut ams = AmRegistry::new();
        register(&mut ams);
        let ams = Arc::new(ams);

        let fabric = ChannelTransport::new(cfg.nodes, cfg.aggregator_threads, cfg.channel_capacity);
        let transport: Arc<dyn Transport> = match &cfg.transport {
            TransportKind::Reliable => Arc::new(fabric),
            TransportKind::Unreliable(faults) => {
                Arc::new(UnreliableTransport::new(fabric, faults.clone()))
            }
        };
        let errors = Arc::new(ErrorSlot::default());

        // One cluster-wide registry/tracer: node `i`'s metrics carry a
        // `node{i}.` prefix, so a single snapshot captures everything.
        let registry = Arc::new(Registry::new(cfg.telemetry));
        let tracer = cfg.telemetry.tracer();
        let nodes: Vec<Arc<NodeShared>> = (0..cfg.nodes)
            .map(|i| {
                Arc::new(NodeShared::with_telemetry(
                    i as u32,
                    &cfg,
                    ams.clone(),
                    registry.clone(),
                    tracer.clone(),
                ))
            })
            .collect();

        // Every worker runs under the supervisor: a panicked worker is
        // joined and respawned (resuming from shared state) until its
        // restart budget runs out, at which point the panic escalates
        // through `errors` exactly as an unsupervised worker's would.
        let supervisor =
            Supervisor::new(cfg.ha.supervisor.clone(), errors.clone(), registry.clone());
        let chaos = cfg.chaos.clone();

        // Network threads (receivers) first, then aggregators (senders).
        let recv_states: Vec<Arc<Mutex<RecvState>>> = (0..cfg.nodes)
            .map(|_| Arc::new(Mutex::new(RecvState::new())))
            .collect();
        for (node, state) in nodes.iter().zip(&recv_states) {
            let (node, transport, errors, state, chaos) = (
                node.clone(),
                transport.clone(),
                errors.clone(),
                state.clone(),
                chaos.clone(),
            );
            supervisor.spawn(
                format!("gravel-net-{}", node.id),
                WorkerKind::Net,
                node.id,
                Arc::new(move || {
                    netthread::run_supervised(
                        node.clone(),
                        transport.clone(),
                        errors.clone(),
                        state.clone(),
                        chaos.clone(),
                    )
                }),
            );
        }
        for node in &nodes {
            for slot in 0..cfg.aggregator_threads {
                let state = Arc::new(Mutex::new(LaneState::new()));
                let (node, transport, errors, chaos) = (
                    node.clone(),
                    transport.clone(),
                    errors.clone(),
                    chaos.clone(),
                );
                let qb = cfg.node_queue_bytes;
                // Adaptive flush when configured; the paper's fixed
                // timeout otherwise.
                let to = cfg
                    .adaptive_flush
                    .map_or(FlushPolicy::Fixed(cfg.flush_timeout), FlushPolicy::Adaptive);
                supervisor.spawn(
                    format!("gravel-agg-{}-{}", node.id, slot),
                    WorkerKind::Aggregator,
                    node.id,
                    Arc::new(move || {
                        aggregator::run_supervised(
                            node.clone(),
                            slot,
                            transport.clone(),
                            qb,
                            to,
                            errors.clone(),
                            state.clone(),
                            chaos.clone(),
                        )
                    }),
                );
            }
        }

        // Optional heartbeat plane: one emitter/detector thread per node.
        let mut detectors = Vec::new();
        if let Some(hb) = &cfg.ha.heartbeat {
            for i in 0..cfg.nodes as u32 {
                let detector = Arc::new(FailureDetector::new(hb.clone()));
                detectors.push(detector.clone());
                let beat_seq = Arc::new(AtomicU64::new(0));
                let (hb, transport, errors, registry, chaos) = (
                    hb.clone(),
                    transport.clone(),
                    errors.clone(),
                    registry.clone(),
                    chaos.clone(),
                );
                let nodes_total = cfg.nodes as u32;
                supervisor.spawn(
                    format!("gravel-hb-{i}"),
                    WorkerKind::Heartbeat,
                    i,
                    Arc::new(move || {
                        heartbeat::run(
                            hb.clone(),
                            i,
                            nodes_total,
                            transport.clone(),
                            detector.clone(),
                            chaos.clone(),
                            errors.clone(),
                            registry.clone(),
                            beat_seq.clone(),
                        )
                    }),
                );
            }
        }

        GravelRuntime {
            engine: SimtEngine::with_cus(cfg.num_cus),
            cfg,
            nodes,
            transport,
            registry,
            tracer,
            errors,
            supervisor: Some(supervisor),
            detectors,
            recv_states,
            epoch: Mutex::new(None),
            shut_down: false,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &GravelConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Node `id`'s shared state.
    pub fn node(&self, id: usize) -> &Arc<NodeShared> {
        &self.nodes[id]
    }

    /// Node `id`'s symmetric heap.
    pub fn heap(&self, id: usize) -> &SymmetricHeap {
        &self.nodes[id].heap
    }

    /// The cluster's metric registry (one per runtime; per-node metrics
    /// carry a `node{N}.` prefix). Hand it to a
    /// [`Sampler`](gravel_telemetry::Sampler) for periodic series, or
    /// snapshot it directly.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The cluster's span recorder (disabled unless the config selects
    /// [`TelemetryConfig::CountersAndTrace`](gravel_telemetry::TelemetryConfig)).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Point-in-time copy of every metric in the cluster.
    pub fn telemetry_snapshot(&self) -> RegistrySnapshot {
        self.registry.snapshot()
    }

    /// Export every span recorded so far as chrome://tracing JSON.
    /// `None` when tracing is disabled.
    pub fn export_chrome_trace(&self) -> Option<String> {
        self.tracer.export_chrome_json()
    }

    /// The fabric carrying packets between nodes (tests use it to audit
    /// in-flight ack mailbox depths against the counter ledger).
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Dispatch `kernel` on node `node_id`'s GPU over `wg_count`
    /// work-groups of the configured work-group size. Returns the SIMT
    /// dispatch counters. Synchronous: returns when the kernel finishes
    /// (messages may still be in flight — see [`quiesce`](Self::quiesce)).
    pub fn dispatch(
        &self,
        node_id: usize,
        wg_count: usize,
        kernel: impl Fn(&mut GravelCtx) + Sync,
    ) -> DispatchResult {
        let grid = Grid {
            wg_count,
            wg_size: self.cfg.wg_size,
            wf_width: self.cfg.wf_width,
        };
        self.dispatch_grid(node_id, grid, kernel)
    }

    /// Dispatch with an explicit grid.
    pub fn dispatch_grid(
        &self,
        node_id: usize,
        grid: Grid,
        kernel: impl Fn(&mut GravelCtx) + Sync,
    ) -> DispatchResult {
        let node = &self.nodes[node_id];
        let serialize = self.cfg.serialize_atomics;
        self.engine.dispatch(grid, |wg| {
            let mut ctx = GravelCtx::new(wg, node, serialize);
            kernel(&mut ctx);
        })
    }

    /// Dispatch the same kernel on every node (SPMD superstep). Kernels
    /// see their node through [`GravelCtx::my_node`]. Nodes run one after
    /// another — on a real cluster they run concurrently, but live-mode
    /// results here are about *correctness*; timing comes from the
    /// `gravel-cluster` simulator.
    pub fn dispatch_all(&self, wg_count: usize, kernel: impl Fn(&mut GravelCtx) + Sync) {
        for id in 0..self.cfg.nodes {
            self.dispatch(id, wg_count, &kernel);
        }
    }

    /// True once every offloaded message has been applied at its
    /// destination.
    fn is_quiescent(&self) -> bool {
        // The reads are not an atomic snapshot, so order matters: read
        // the *downstream* counter first. Every applied message was
        // offloaded-counted strictly earlier, and a handler's reply is
        // offloaded before the triggering message's apply is counted, so
        // `applied@t0 == offloaded@t1` (t0 < t1) proves the pipeline was
        // empty at t0 and nothing entered it since. Reading `applied`
        // last has a race: a reply offloaded between the two reads can
        // balance a stale `offloaded` against a fresh `applied` and
        // report quiescence with that reply still in flight.
        let applied: u64 = self.nodes.iter().map(|n| n.applied.get()).sum();
        let offloaded: u64 = self.nodes.iter().map(|n| n.offloaded.get()).sum();
        let backlog: u64 = self.nodes.iter().map(|n| n.queue.backlog()).sum();
        // Counter reads are relaxed; this pairs with the release fences
        // in note_offloaded/note_applied so heap effects of counted
        // messages are visible to whoever observes the balance.
        fence(Ordering::Acquire);
        backlog == 0 && offloaded == applied
    }

    /// Block until every offloaded message has been applied at its
    /// destination. Call between supersteps (after `dispatch*` returns)
    /// and before reading remote results.
    ///
    /// Bounded by `GravelConfig::quiesce_deadline` (when set) and bails
    /// early if a worker already failed; either way the failure is
    /// reported by [`shutdown`](Self::shutdown), so a kernel loop can
    /// keep calling `quiesce()` obliviously and still terminate.
    pub fn quiesce(&self) {
        match self.cfg.quiesce_deadline {
            Some(d) => {
                let _ = self.quiesce_deadline(d);
            }
            None => {
                let start = Instant::now();
                let mut last_warn = start;
                let mut bo = crate::backoff::Backoff::new(QUIESCE_POLL);
                while !self.is_quiescent() && !self.errors.is_set() {
                    self.warn_if_stuck(start, &mut last_warn);
                    if !bo.should_spin() {
                        bo.park_sleep();
                    }
                }
            }
        }
    }

    /// Emit a once-per-`quiesce_warn_interval` stuck-pipeline warning
    /// (stderr + the `ha.quiesce_warnings` vital counter) while a
    /// quiescence wait spins, so an operator watching a wedged run sees
    /// *where* messages are stuck instead of silence.
    fn warn_if_stuck(&self, start: Instant, last_warn: &mut Instant) {
        if last_warn.elapsed() < self.cfg.quiesce_warn_interval {
            return;
        }
        *last_warn = Instant::now();
        self.registry.vital_counter("ha.quiesce_warnings").inc();
        eprintln!(
            "gravel: quiesce still waiting after {:?}; pipeline diagnostics:\n{}",
            start.elapsed(),
            self.diagnostics()
        );
    }

    /// Like [`quiesce`](Self::quiesce) with an explicit deadline. On
    /// timeout, returns (and records, so `shutdown` also reports it) a
    /// [`RuntimeError::QuiesceTimeout`] carrying per-node diagnostics of
    /// where messages are stuck.
    pub fn quiesce_deadline(&self, deadline: Duration) -> Result<(), RuntimeError> {
        let start = Instant::now();
        let mut last_warn = start;
        let mut bo = crate::backoff::Backoff::new(QUIESCE_POLL);
        loop {
            if self.errors.is_set() {
                // The failure is the cluster's, not this wait's; the
                // caller learns the cause from shutdown().
                return Ok(());
            }
            if self.is_quiescent() {
                return Ok(());
            }
            if start.elapsed() >= deadline {
                let e = RuntimeError::QuiesceTimeout {
                    waited: start.elapsed(),
                    diagnostics: self.diagnostics(),
                };
                self.errors.set(e.clone());
                return Err(e);
            }
            self.warn_if_stuck(start, &mut last_warn);
            if !bo.should_spin() {
                bo.park_sleep();
            }
        }
    }

    /// Human-readable per-node dump of the counters that explain where
    /// in the pipeline messages are stuck (used by quiesce timeouts).
    pub fn diagnostics(&self) -> String {
        use std::fmt::Write;
        let depths = self.transport.data_depths();
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let s = n.stats();
            let _ = writeln!(
                out,
                "node {i}: backlog={} offloaded={} applied={} chan_depth={} \
                 retransmits={} dups={} acks_tx={} acks_rx={} stalls={} ooo_drop={}",
                n.queue.backlog(),
                s.offloaded,
                s.applied,
                depths.get(i).copied().unwrap_or(0),
                s.net.retransmits,
                s.net.dups_suppressed,
                s.net.acks_sent,
                s.net.acks_received,
                s.net.backpressure_stalls,
                s.net.ooo_dropped,
            );
            if s.net.total_integrity_drops() + s.net.quarantined > 0 {
                let _ = writeln!(
                    out,
                    "  integrity: corrupt={} trunc={} misroute={} ack_corrupt={} \
                     quarantined={} evicted={}",
                    s.net.corrupt_dropped,
                    s.net.truncated,
                    s.net.misrouted,
                    s.net.ack_corrupt_dropped,
                    s.net.quarantined,
                    s.net.quarantine_evicted,
                );
            }
        }
        let f = self.transport.fault_stats();
        let _ = writeln!(
            out,
            "faults: dropped={} dup={} delayed={} link_down={} acks_dropped={} \
             corrupted={} truncated={} garbage={} misrouted={} ack_corrupted={}",
            f.dropped_data,
            f.duplicated,
            f.delayed,
            f.link_down_drops,
            f.dropped_acks,
            f.corrupted_data,
            f.truncated_data,
            f.garbage_data,
            f.misrouted_data,
            f.corrupted_acks,
        );
        out
    }

    /// Drain node `id`'s poison-message quarantine: every CRC-clean
    /// message that failed semantic validation since the last drain,
    /// oldest first, with full provenance (peer, lane, seq, index, raw
    /// words, reason). The `net.quarantined` counter keeps its lifetime
    /// total — draining inspects, it does not un-count.
    pub fn drain_quarantine(&self, id: usize) -> Vec<QuarantinedMessage> {
        self.nodes[id].quarantine.drain()
    }

    /// Issue one blocking GET from node `src`: read word `addr` of node
    /// `dest`'s heap through the full request-reply pipeline (queue →
    /// aggregator → wire → remote apply → reply frame → pending table).
    /// Returns the value, or the failure the pending table assigned
    /// (timeout, restart, table full). Host-side convenience — kernels
    /// use [`GravelCtx::shmem_get`](crate::ctx::GravelCtx::shmem_get).
    pub fn host_get(&self, src: usize, dest: u32, addr: u64) -> Result<u64, gravel_gq::RpcFailure> {
        self.host_rpc(src, |token, dl| gravel_gq::Message::get(dest, addr, token, dl))
    }

    /// Issue one blocking value-returning active-message call from node
    /// `src`: run returning handler `handler` against `arg` on `dest`
    /// and return its result. See [`host_get`](Self::host_get).
    pub fn host_am_call(
        &self,
        src: usize,
        dest: u32,
        handler: u32,
        arg: u64,
    ) -> Result<u64, gravel_gq::RpcFailure> {
        self.host_rpc(src, |token, dl| {
            gravel_gq::Message::am_call(dest, handler, arg, token, dl)
        })
    }

    fn host_rpc(
        &self,
        src: usize,
        build: impl FnOnce(u64, u16) -> gravel_gq::Message,
    ) -> Result<u64, gravel_gq::RpcFailure> {
        use gravel_gq::{ReplySink, ReplyState, RpcFailure};
        let node = &self.nodes[src];
        let sink = Arc::new(ReplySink::new(1));
        let deadline = Instant::now() + node.rpc_timeout;
        let token = node
            .rpc
            .register(sink.clone(), 0, deadline)
            .map_err(|_| RpcFailure::TableFull)?;
        let deadline_ms = node.rpc_timeout.as_millis().min(u128::from(u16::MAX)) as u16;
        node.host_send(build(token, deadline_ms));
        // The pending-table sweep enforces the real deadline (it fails
        // the slot as TimedOut); the wait bound here is a generous
        // backstop so a wedged cluster cannot park the caller forever.
        sink.wait_all(node.rpc_timeout * 2 + Duration::from_secs(1));
        match sink.get(0) {
            ReplyState::Ok(v) => Ok(v),
            ReplyState::Failed(f) => Err(f),
            ReplyState::Pending => Err(RpcFailure::TimedOut),
        }
    }

    /// Snapshot cluster statistics.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            nodes: self.nodes.iter().map(|n| n.stats()).collect(),
            faults: self.transport.fault_stats(),
            ha: HaStats::from_snapshot(&self.registry.snapshot()),
        }
    }

    /// Node `id`'s phi-accrual failure detector (its view of every
    /// peer). `None` unless `cfg.ha.heartbeat` is set.
    pub fn detector(&self, id: usize) -> Option<&Arc<FailureDetector>> {
        self.detectors.get(id)
    }

    /// Cut an epoch checkpoint with no application progress attached.
    /// See [`cut_epoch_with`](Self::cut_epoch_with).
    pub fn cut_epoch(&self) -> u64 {
        self.cut_epoch_with(None)
    }

    /// Cut a consistent epoch: quiesce, snapshot every node's heap (plus
    /// `app`'s progress words, if given), and clear the per-node replay
    /// logs. Returns the new epoch number (first cut = 1).
    ///
    /// Must be called *between supersteps* — after the dispatching code
    /// has stopped issuing messages — because the quiesce-then-snapshot
    /// sequence is only a consistent cut when no new traffic races it.
    /// Requires `cfg.ha.checkpoint` (programmer error otherwise).
    pub fn cut_epoch_with(&self, app: Option<&dyn Checkpoint>) -> u64 {
        assert!(
            self.cfg.ha.checkpoint,
            "cut_epoch requires GravelConfig.ha.checkpoint = true"
        );
        self.quiesce();
        let mut guard = self.epoch.lock().unwrap_or_else(|p| p.into_inner());
        let epoch = guard.as_ref().map_or(0, |e| e.epoch) + 1;
        let snap = EpochSnapshot {
            epoch,
            heaps: self.nodes.iter().map(|n| n.heap.snapshot()).collect(),
            app: app.map_or_else(Vec::new, |a| a.save()),
        };
        for node in &self.nodes {
            if let Some(log) = &node.replay {
                log.clear();
            }
            // Stamp the new epoch into every frame sealed from here on;
            // the cluster is quiescent, so no in-flight frame still
            // carries the old number.
            node.wire_epoch.store(epoch as u32, Ordering::Release);
        }
        *guard = Some(snap);
        self.registry.vital_counter("ha.epochs").inc();
        epoch
    }

    /// Restore node `id` from the last epoch checkpoint: refill its heap
    /// from the epoch snapshot, then replay every message the node fully
    /// applied since the cut (in original apply order, with replies
    /// suppressed — they were already delivered and logged at their own
    /// destinations) and reset any mid-packet resume cursor. On a
    /// quiescent cluster this reproduces the pre-death heap exactly.
    pub fn recover_node(&self, id: usize) -> Result<(), RuntimeError> {
        let started = Instant::now();
        let fail = |reason: &str| RuntimeError::RecoveryFailed {
            node: id as u32,
            reason: reason.to_string(),
        };
        let node = self
            .nodes
            .get(id)
            .ok_or_else(|| fail("node id out of range"))?;
        let log = node
            .replay
            .as_ref()
            .ok_or_else(|| fail("checkpointing disabled"))?;
        let guard = self.epoch.lock().unwrap_or_else(|p| p.into_inner());
        let snap = guard
            .as_ref()
            .ok_or_else(|| fail("no epoch checkpoint taken"))?;
        node.heap.fill_from(&snap.heaps[id]);
        let words = log.snapshot();
        // Replayed messages were already counted toward quiescence when
        // first applied, so the replay itself must not touch the vital
        // counters — it only redoes heap effects.
        let _ = gravel_pgas::apply_words(&words, 0, &node.heap, &node.ams, &mut |_| {});
        drop(guard);
        // The node restarted: every reply token it issued before dying
        // is now unanswerable (the sink that would receive it is gone).
        // Bumping the generation fails the old waiters and rejects any
        // late reply carrying a stale token.
        node.rpc.bump_generation();
        if let Some(state) = self.recv_states.get(id) {
            state
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .reset_resume_cursors();
        }
        self.registry.vital_counter("ha.recoveries").inc();
        self.registry
            .vital_counter(&format!("node{id}.ha.recoveries"))
            .inc();
        self.registry
            .histogram("ha.recovery_ns")
            .record(started.elapsed().as_nanos() as u64);
        Ok(())
    }

    fn shutdown_impl(&mut self) -> Result<RuntimeStats, RuntimeError> {
        if !self.shut_down {
            self.shut_down = true;
            self.quiesce();
            // Closing the queues sends the aggregators into their drain
            // phase: flush partial packets, then hold until every flow
            // is acknowledged (the network threads are still alive to
            // re-ack retransmissions).
            for node in &self.nodes {
                node.queue.close();
            }
            if let Some(supervisor) = self.supervisor.take() {
                supervisor.join_kind(WorkerKind::Aggregator);
                // Only now stop the fabric and let the receivers (and
                // heartbeat emitters) exit.
                self.transport.close();
                supervisor.join_kind(WorkerKind::Net);
                supervisor.join_kind(WorkerKind::Heartbeat);
                // stop() joins any straggler exactly once — including
                // workers that failed after their restart budget — so no
                // thread outlives the runtime even with multiple errors.
                supervisor.stop();
            }
        }
        match self.errors.take() {
            Some(e) => Err(e),
            None => Ok(self.stats()),
        }
    }

    /// Quiesce, stop all threads, and return final statistics.
    ///
    /// Any failure during the run — a panicked worker thread, a delivery
    /// flow that exhausted its retries, a quiescence timeout — surfaces
    /// here as an `Err` (first failure wins) instead of a hang or an
    /// unwinding join.
    pub fn shutdown(mut self) -> Result<RuntimeStats, RuntimeError> {
        self.shutdown_impl()
    }
}

impl Drop for GravelRuntime {
    fn drop(&mut self) {
        // Errors were either already taken by shutdown() or are
        // deliberately discarded: panicking in drop would abort.
        let _ = self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gravel_net::FaultConfig;
    use gravel_simt::LaneVec;

    #[test]
    fn startup_and_clean_shutdown() {
        let rt = GravelRuntime::new(GravelConfig::small(3, 8));
        let stats = rt.shutdown().expect("clean shutdown");
        assert_eq!(stats.nodes.len(), 3);
        assert_eq!(stats.total_offloaded(), 0);
    }

    #[test]
    fn remote_increments_land_exactly_once() {
        let rt = GravelRuntime::new(GravelConfig::small(2, 4));
        // Node 0: 2 work-groups × 64 lanes increment node 1's counter.
        rt.dispatch(0, 2, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        rt.quiesce();
        assert_eq!(rt.heap(1).load(0), 128);
        let stats = rt.shutdown().expect("clean shutdown");
        assert_eq!(stats.total_offloaded(), 128);
        assert_eq!(stats.total_applied(), 128);
        assert!((stats.remote_fraction() - 1.0).abs() < 1e-12);
        // Reliable transport: protocol ran (acks flowed) but never
        // needed to repair anything.
        assert_eq!(stats.total_retransmits(), 0);
        assert_eq!(stats.total_dups_suppressed(), 0);
        assert!(stats.faults.is_clean());
    }

    #[test]
    fn all_to_all_scatter() {
        // 4 nodes; every node's work-items scatter increments across all
        // nodes by lane id.
        let nodes = 4;
        let rt = GravelRuntime::new(GravelConfig::small(nodes, 4));
        rt.dispatch_all(1, |ctx| {
            let n = ctx.wg.wg_size();
            let k = ctx.nodes() as u32;
            let dests = LaneVec::from_fn(n, |l| (l as u32) % k);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        rt.quiesce();
        // 64 lanes per node / 4 dests = 16 messages per (src, dest) pair;
        // each dest receives 16 × 4 sources = 64.
        for id in 0..nodes {
            assert_eq!(rt.heap(id).load(0), 64, "node {id}");
        }
        let stats = rt.shutdown().expect("clean shutdown");
        // 3/4 of scattered messages are remote.
        assert!(
            (stats.remote_fraction() - 0.75).abs() < 1e-9,
            "{}",
            stats.remote_fraction()
        );
    }

    #[test]
    fn puts_and_ams_roundtrip() {
        let rt = GravelRuntime::with_handlers(GravelConfig::small(2, 8), |reg| {
            reg.register(gravel_pgas::relax_min_handler());
        });
        rt.heap(1).store(5, 1000);
        rt.dispatch(0, 1, |ctx| {
            let n = ctx.wg.wg_size();
            // Every lane PUTs 77 into node 1 slot 3 (idempotent) and
            // relaxes node 1 slot 5 down to 42 via the min handler.
            let dests = LaneVec::splat(n, 1u32);
            let addr3 = LaneVec::splat(n, 3u64);
            let val77 = LaneVec::splat(n, 77u64);
            ctx.shmem_put(&dests, &addr3, &val77);
            let addr5 = LaneVec::splat(n, 5u64);
            let val42 = LaneVec::splat(n, 42u64);
            ctx.shmem_am(0, &dests, &addr5, &val42);
        });
        rt.quiesce();
        assert_eq!(rt.heap(1).load(3), 77);
        assert_eq!(rt.heap(1).load(5), 42);
        rt.shutdown().expect("clean shutdown");
    }

    #[test]
    fn drop_without_shutdown_is_clean() {
        let rt = GravelRuntime::new(GravelConfig::small(2, 4));
        rt.dispatch(0, 1, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        drop(rt); // Drop quiesces and joins
    }

    #[test]
    fn stats_capture_packet_sizes() {
        let mut cfg = GravelConfig::small(2, 4);
        cfg.node_queue_bytes = 128; // 4 messages per packet
        let rt = GravelRuntime::new(cfg);
        rt.dispatch(0, 1, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        rt.quiesce();
        let stats = rt.shutdown().expect("clean shutdown");
        let n0 = &stats.nodes[0];
        assert_eq!(n0.agg.messages, 64);
        assert!(n0.agg.packets >= 16, "64 msgs / 4 per packet");
        assert!(stats.avg_packet_bytes() <= 128.0);
    }

    #[test]
    fn faulty_transport_still_delivers_exactly_once() {
        let mut cfg = GravelConfig::small(2, 4);
        cfg.node_queue_bytes = 64; // many small packets → many fault rolls
        cfg.transport = TransportKind::Unreliable(FaultConfig::mixed(42, 0.10));
        let rt = GravelRuntime::new(cfg);
        rt.dispatch(0, 2, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        rt.quiesce();
        assert_eq!(rt.heap(1).load(0), 128, "exactly-once despite faults");
        let stats = rt.shutdown().expect("shutdown under faults");
        assert_eq!(stats.total_applied(), 128);
        assert!(
            !stats.faults.is_clean(),
            "10 % fault mix over ~32 packets should have fired at least once"
        );
    }

    #[test]
    fn worker_panic_surfaces_from_shutdown() {
        let rt = GravelRuntime::with_handlers(GravelConfig::small(2, 4), |reg| {
            reg.register(Box::new(|_h, _a, _v| panic!("handler exploded")));
        });
        rt.dispatch(0, 1, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_am(0, &dests, &addrs, &vals);
        });
        match rt.shutdown() {
            Err(RuntimeError::WorkerPanic { thread, message }) => {
                assert!(thread.starts_with("gravel-net-1"), "{thread}");
                assert!(message.contains("handler exploded"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_drains_poison_without_wedging_quiescence() {
        let rt = GravelRuntime::new(GravelConfig::small(2, 4));
        // An unknown active-message handler and an out-of-range put,
        // through the normal pipeline: both must still dispose for
        // quiescence and land in node 1's quarantine with provenance.
        rt.node(0).host_send(gravel_gq::Message::active(1, 7, 0, 0));
        rt.node(0).host_send(gravel_gq::Message::put(1, 999, 5));
        rt.quiesce();
        let q = rt.drain_quarantine(1);
        assert_eq!(q.len(), 2);
        use gravel_pgas::QuarantineReason;
        assert!(q
            .iter()
            .any(|m| m.reason == QuarantineReason::UnknownHandler));
        assert!(q.iter().any(|m| m.reason == QuarantineReason::OutOfRange));
        assert!(q.iter().all(|m| m.src == 0));
        // Draining empties the buffer but keeps the lifetime counter.
        assert!(rt.drain_quarantine(1).is_empty());
        let stats = rt.shutdown().expect("clean shutdown");
        assert_eq!(stats.nodes[1].net.quarantined, 2);
        assert_eq!(stats.total_quarantined(), 2);
        assert_eq!(stats.total_integrity_drops(), 0);
    }

    #[test]
    fn epoch_cuts_stamp_the_wire_epoch() {
        let mut cfg = GravelConfig::small(2, 4);
        cfg.ha.checkpoint = true;
        let rt = GravelRuntime::new(cfg);
        assert_eq!(rt.node(0).wire_epoch.load(Ordering::Relaxed), 0);
        assert_eq!(rt.cut_epoch(), 1);
        assert_eq!(rt.cut_epoch(), 2);
        for id in 0..2 {
            assert_eq!(rt.node(id).wire_epoch.load(Ordering::Relaxed), 2);
        }
        rt.shutdown().expect("clean shutdown");
    }

    #[test]
    fn quiesce_deadline_reports_diagnostics_instead_of_hanging() {
        let rt = GravelRuntime::new(GravelConfig::small(2, 4));
        // Fake a message that was counted as offloaded but will never be
        // applied: quiescence can then never converge.
        rt.node(0).note_offloaded(1);
        let start = Instant::now();
        match rt.quiesce_deadline(Duration::from_millis(50)) {
            Err(RuntimeError::QuiesceTimeout {
                waited,
                diagnostics,
            }) => {
                assert!(waited >= Duration::from_millis(50));
                assert!(diagnostics.contains("node 0"), "{diagnostics}");
                assert!(diagnostics.contains("offloaded=1"), "{diagnostics}");
            }
            other => panic!("expected QuiesceTimeout, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(10));
        // The recorded failure also surfaces from shutdown.
        match rt.shutdown() {
            Err(RuntimeError::QuiesceTimeout { .. }) => {}
            other => panic!("expected QuiesceTimeout from shutdown, got {other:?}"),
        }
    }
}
