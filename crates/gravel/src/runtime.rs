//! The Gravel runtime.
//!
//! [`GravelRuntime`] hosts an N-node Gravel cluster inside one process:
//! each node gets a symmetric heap, a producer/consumer queue, an
//! aggregator thread, and a network thread; "the network" is a set of
//! in-memory channels. GPU kernels are dispatched onto the SIMT engine and
//! offload PGAS operations through their node's queue exactly as on the
//! paper's APUs — queue → aggregator → per-node queues → network thread →
//! remote heap.
//!
//! ```
//! use gravel_core::{GravelConfig, GravelRuntime};
//! use gravel_simt::LaneVec;
//!
//! // 2 nodes, 16-element heaps; every work-item on node 0 increments a
//! // counter on node 1.
//! let rt = GravelRuntime::new(GravelConfig::small(2, 16));
//! rt.dispatch(0, 1, |ctx| {
//!     let dests = LaneVec::splat(ctx.wg.wg_size(), 1u32);
//!     let addrs = LaneVec::splat(ctx.wg.wg_size(), 0u64);
//!     let vals = LaneVec::splat(ctx.wg.wg_size(), 1u64);
//!     ctx.shmem_inc(&dests, &addrs, &vals);
//! });
//! rt.quiesce();
//! assert_eq!(rt.heap(1).load(0), 64); // one WG of 64 work-items
//! let _stats = rt.shutdown();
//! ```

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gravel_pgas::{AmRegistry, SymmetricHeap};
use gravel_simt::{DispatchResult, Grid, SimtEngine};

use crate::aggregator;
use crate::config::GravelConfig;
use crate::ctx::GravelCtx;
use crate::netthread;
use crate::node::NodeShared;
use crate::stats::RuntimeStats;

/// An in-process Gravel cluster.
pub struct GravelRuntime {
    cfg: GravelConfig,
    nodes: Vec<Arc<NodeShared>>,
    engine: SimtEngine,
    threads: Vec<JoinHandle<()>>,
    shut_down: bool,
}

impl GravelRuntime {
    /// Start a cluster with no active-message handlers.
    pub fn new(cfg: GravelConfig) -> Self {
        Self::with_handlers(cfg, |_| {})
    }

    /// Start a cluster, registering active-message handlers first (the
    /// registry is replicated logically on every node, as in SPMD codes).
    pub fn with_handlers(cfg: GravelConfig, register: impl FnOnce(&mut AmRegistry)) -> Self {
        cfg.validate();
        let mut ams = AmRegistry::new();
        register(&mut ams);
        let ams = Arc::new(ams);

        let (net_txs, net_rxs): (Vec<_>, Vec<_>) =
            (0..cfg.nodes).map(|_| crossbeam::channel::unbounded()).unzip();

        let nodes: Vec<Arc<NodeShared>> =
            (0..cfg.nodes).map(|i| Arc::new(NodeShared::new(i as u32, &cfg, ams.clone()))).collect();

        let mut threads = Vec::with_capacity(cfg.nodes * 2);
        // Network threads first (receivers), then aggregators (senders).
        for (i, rx) in net_rxs.into_iter().enumerate() {
            let node = nodes[i].clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("gravel-net-{i}"))
                    .spawn(move || netthread::run(node, rx))
                    .expect("spawn network thread"),
            );
        }
        for node in &nodes {
            for slot in 0..cfg.aggregator_threads {
                let node = node.clone();
                let txs = net_txs.clone();
                let (qb, to) = (cfg.node_queue_bytes, cfg.flush_timeout);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("gravel-agg-{}-{}", node.id, slot))
                        .spawn(move || aggregator::run(node, slot, txs, qb, to))
                        .expect("spawn aggregator thread"),
                );
            }
        }
        drop(net_txs); // only aggregators hold senders now

        GravelRuntime {
            engine: SimtEngine::with_cus(cfg.num_cus),
            cfg,
            nodes,
            threads,
            shut_down: false,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &GravelConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.cfg.nodes
    }

    /// Node `id`'s shared state.
    pub fn node(&self, id: usize) -> &Arc<NodeShared> {
        &self.nodes[id]
    }

    /// Node `id`'s symmetric heap.
    pub fn heap(&self, id: usize) -> &SymmetricHeap {
        &self.nodes[id].heap
    }

    /// Dispatch `kernel` on node `node_id`'s GPU over `wg_count`
    /// work-groups of the configured work-group size. Returns the SIMT
    /// dispatch counters. Synchronous: returns when the kernel finishes
    /// (messages may still be in flight — see [`quiesce`](Self::quiesce)).
    pub fn dispatch(
        &self,
        node_id: usize,
        wg_count: usize,
        kernel: impl Fn(&mut GravelCtx) + Sync,
    ) -> DispatchResult {
        let grid = Grid {
            wg_count,
            wg_size: self.cfg.wg_size,
            wf_width: self.cfg.wf_width,
        };
        self.dispatch_grid(node_id, grid, kernel)
    }

    /// Dispatch with an explicit grid.
    pub fn dispatch_grid(
        &self,
        node_id: usize,
        grid: Grid,
        kernel: impl Fn(&mut GravelCtx) + Sync,
    ) -> DispatchResult {
        let node = &self.nodes[node_id];
        let serialize = self.cfg.serialize_atomics;
        self.engine.dispatch(grid, |wg| {
            let mut ctx = GravelCtx::new(wg, node, serialize);
            kernel(&mut ctx);
        })
    }

    /// Dispatch the same kernel on every node (SPMD superstep). Kernels
    /// see their node through [`GravelCtx::my_node`]. Nodes run one after
    /// another — on a real cluster they run concurrently, but live-mode
    /// results here are about *correctness*; timing comes from the
    /// `gravel-cluster` simulator.
    pub fn dispatch_all(&self, wg_count: usize, kernel: impl Fn(&mut GravelCtx) + Sync) {
        for id in 0..self.cfg.nodes {
            self.dispatch(id, wg_count, &kernel);
        }
    }

    /// Block until every offloaded message has been applied at its
    /// destination. Call between supersteps (after `dispatch*` returns)
    /// and before reading remote results.
    pub fn quiesce(&self) {
        loop {
            let backlog: u64 = self.nodes.iter().map(|n| n.queue.backlog()).sum();
            let offloaded: u64 = self.nodes.iter().map(|n| n.offloaded.load(Ordering::Acquire)).sum();
            let applied: u64 = self.nodes.iter().map(|n| n.applied.load(Ordering::Acquire)).sum();
            if backlog == 0 && offloaded == applied {
                return;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Snapshot cluster statistics.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats { nodes: self.nodes.iter().map(|n| n.stats()).collect() }
    }

    fn shutdown_impl(&mut self) -> RuntimeStats {
        if !self.shut_down {
            self.quiesce();
            for node in &self.nodes {
                node.queue.close();
            }
            for t in self.threads.drain(..) {
                t.join().expect("runtime thread panicked");
            }
            self.shut_down = true;
        }
        self.stats()
    }

    /// Quiesce, stop all threads, and return final statistics.
    pub fn shutdown(mut self) -> RuntimeStats {
        self.shutdown_impl()
    }
}

impl Drop for GravelRuntime {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gravel_simt::LaneVec;

    #[test]
    fn startup_and_clean_shutdown() {
        let rt = GravelRuntime::new(GravelConfig::small(3, 8));
        let stats = rt.shutdown();
        assert_eq!(stats.nodes.len(), 3);
        assert_eq!(stats.total_offloaded(), 0);
    }

    #[test]
    fn remote_increments_land_exactly_once() {
        let rt = GravelRuntime::new(GravelConfig::small(2, 4));
        // Node 0: 2 work-groups × 64 lanes increment node 1's counter.
        rt.dispatch(0, 2, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        rt.quiesce();
        assert_eq!(rt.heap(1).load(0), 128);
        let stats = rt.shutdown();
        assert_eq!(stats.total_offloaded(), 128);
        assert_eq!(stats.total_applied(), 128);
        assert!((stats.remote_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_to_all_scatter() {
        // 4 nodes; every node's work-items scatter increments across all
        // nodes by lane id.
        let nodes = 4;
        let rt = GravelRuntime::new(GravelConfig::small(nodes, 4));
        rt.dispatch_all(1, |ctx| {
            let n = ctx.wg.wg_size();
            let k = ctx.nodes() as u32;
            let dests = LaneVec::from_fn(n, |l| (l as u32) % k);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        rt.quiesce();
        // 64 lanes per node / 4 dests = 16 messages per (src, dest) pair;
        // each dest receives 16 × 4 sources = 64.
        for id in 0..nodes {
            assert_eq!(rt.heap(id).load(0), 64, "node {id}");
        }
        let stats = rt.shutdown();
        // 3/4 of scattered messages are remote.
        assert!((stats.remote_fraction() - 0.75).abs() < 1e-9, "{}", stats.remote_fraction());
    }

    #[test]
    fn puts_and_ams_roundtrip() {
        let rt = GravelRuntime::with_handlers(GravelConfig::small(2, 8), |reg| {
            reg.register(gravel_pgas::relax_min_handler());
        });
        rt.heap(1).store(5, 1000);
        rt.dispatch(0, 1, |ctx| {
            let n = ctx.wg.wg_size();
            // Every lane PUTs 77 into node 1 slot 3 (idempotent) and
            // relaxes node 1 slot 5 down to 42 via the min handler.
            let dests = LaneVec::splat(n, 1u32);
            let addr3 = LaneVec::splat(n, 3u64);
            let val77 = LaneVec::splat(n, 77u64);
            ctx.shmem_put(&dests, &addr3, &val77);
            let addr5 = LaneVec::splat(n, 5u64);
            let val42 = LaneVec::splat(n, 42u64);
            ctx.shmem_am(0, &dests, &addr5, &val42);
        });
        rt.quiesce();
        assert_eq!(rt.heap(1).load(3), 77);
        assert_eq!(rt.heap(1).load(5), 42);
        rt.shutdown();
    }

    #[test]
    fn drop_without_shutdown_is_clean() {
        let rt = GravelRuntime::new(GravelConfig::small(2, 4));
        rt.dispatch(0, 1, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        drop(rt); // Drop quiesces and joins
    }

    #[test]
    fn stats_capture_packet_sizes() {
        let mut cfg = GravelConfig::small(2, 4);
        cfg.node_queue_bytes = 128; // 4 messages per packet
        let rt = GravelRuntime::new(cfg);
        rt.dispatch(0, 1, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        rt.quiesce();
        let stats = rt.shutdown();
        let n0 = &stats.nodes[0];
        assert_eq!(n0.agg.messages, 64);
        assert!(n0.agg.packets >= 16, "64 msgs / 4 per packet");
        assert!(stats.avg_packet_bytes() <= 128.0);
    }
}
