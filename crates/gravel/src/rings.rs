//! Destination-sharded GPU offload rings.
//!
//! One [`GravelQueue`] ring per aggregator lane, with messages sharded by
//! destination (`dest % lanes`) at *produce* time. Lane `L` exclusively
//! drains ring `L`, which buys two things at once:
//!
//! * **No consumer contention.** Each ring has exactly one consumer, so
//!   the read-index CAS in `try_consume_batch` never loses a race and
//!   lanes never bounce the same cache lines.
//! * **Per-destination ordering is preserved.** Every destination is
//!   owned by exactly one lane, so all its traffic flows through one
//!   `(src, lane)` go-back-N sequence space — the multi-lane pipeline
//!   keeps the single-lane delivery guarantees (see DESIGN.md §12).
//!
//! With `lanes == 1` this degenerates to the classic single-ring layout
//! byte for byte: one ring with the full slot budget, every destination
//! in shard 0.
//!
//! The total slot budget of the configured geometry is divided across
//! the rings (each keeps at least two slots), so enabling lanes does not
//! multiply the memory footprint — governed or not. A governed bank
//! collapsed to one lane therefore runs on a fraction of the budget,
//! and that is deliberate: a divided ring that a dense burst saturates
//! is exactly the backpressure signal the governor's occupancy term
//! reads to expand the mask (see `governor.rs`), while giving every
//! ring the full budget was measured to cost GUPS ~5 % in cache
//! footprint at four lanes.

use std::sync::atomic::{AtomicUsize, Ordering};

use gravel_gq::{Consumed, GravelQueue, QueueConfig, QueueStats};
use gravel_telemetry::Tracer;

/// A bank of per-lane offload rings sharing one telemetry surface.
pub struct ShardedRings {
    rings: Box<[GravelQueue]>,
    /// Routing mask: destinations hash into the first `active` rings.
    /// Equals `rings.len()` (and never moves) without a governor.
    active: AtomicUsize,
    /// Synchronization instrumentation, shared by every ring (cloned
    /// counter handles all feed the same totals).
    pub stats: QueueStats,
}

impl ShardedRings {
    /// Build `lanes` rings by dividing `cfg.slots` across them (detached
    /// stats, no tracing — the standalone mode).
    pub fn new(cfg: QueueConfig, lanes: usize) -> Self {
        Self::with_telemetry(cfg, lanes, false, QueueStats::default(), Tracer::disabled(), 0)
    }

    /// Build `lanes` rings whose counters and spans feed a cluster's
    /// telemetry. Every ring shares (clones of) `stats`, so snapshots
    /// aggregate the whole bank. `governed` banks start collapsed to
    /// one active lane; static banks route across all rings forever.
    /// Both divide the slot budget (see module docs).
    pub fn with_telemetry(
        cfg: QueueConfig,
        lanes: usize,
        governed: bool,
        stats: QueueStats,
        tracer: Tracer,
        node: u32,
    ) -> Self {
        assert!(lanes >= 1, "need at least one lane");
        let ring_cfg = QueueConfig {
            slots: (cfg.slots / lanes).max(2),
            ..cfg
        };
        ShardedRings {
            rings: (0..lanes)
                .map(|_| GravelQueue::with_telemetry(ring_cfg, stats.clone(), tracer.clone(), node))
                .collect(),
            active: AtomicUsize::new(if governed { 1 } else { lanes }),
            stats,
        }
    }

    /// Number of lanes (== rings).
    pub fn lanes(&self) -> usize {
        self.rings.len()
    }

    /// How many lanes currently receive new traffic. Equals
    /// [`lanes`](Self::lanes) on an ungoverned bank.
    pub fn active_lanes(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Point the routing mask at the first `n` lanes (governor only).
    /// Parked lanes keep draining whatever is already in their ring;
    /// producers that read the mask a moment late still land in a ring
    /// whose consumer exists, so no traffic strands.
    pub fn set_active_lanes(&self, n: usize) {
        let n = n.clamp(1, self.rings.len());
        self.active.store(n, Ordering::Relaxed);
    }

    /// Move the routing mask `from` → `to` only if it still reads
    /// `from`. Governor transitions go through this: producers drive
    /// decisions as well as lane 0, and the CAS turns the loser of a
    /// racing pair into a no-op instead of letting its stale view yank
    /// the mask backward.
    pub fn transition_active_lanes(&self, from: usize, to: usize) -> bool {
        let to = to.clamp(1, self.rings.len());
        self.active
            .compare_exchange(from, to, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// The ring drained by lane `lane`.
    pub fn ring(&self, lane: usize) -> &GravelQueue {
        &self.rings[lane]
    }

    /// Which lane owns destination `dest`. Stable while the active-lane
    /// mask holds — per-destination ordering within a mask depends on
    /// it (a governor transition remaps destinations; see DESIGN.md
    /// §17 for the ordering contract across transitions).
    pub fn shard_of(&self, dest: u32) -> usize {
        dest as usize % self.active_lanes()
    }

    /// Per-ring geometry (identical across lanes).
    pub fn config(&self) -> QueueConfig {
        self.rings[0].config()
    }

    /// Unconsumed slots across all rings.
    pub fn backlog(&self) -> u64 {
        self.rings.iter().map(|r| r.backlog()).sum()
    }

    /// Close every ring (producers must have stopped).
    pub fn close(&self) {
        for r in self.rings.iter() {
            r.close();
        }
    }

    /// Are all rings closed?
    pub fn is_closed(&self) -> bool {
        self.rings.iter().all(|r| r.is_closed())
    }

    /// Produce one message into its destination's ring (host paths).
    pub fn produce_one(&self, dest: u32, words: &[u64]) {
        self.rings[self.shard_of(dest)].produce_batch(words, 1);
    }

    /// Drain one ready slot from any ring, sweeping lanes in order
    /// (single-consumer test paths; live lanes drain their own ring via
    /// [`ring`](Self::ring)). `Closed` only once every ring is closed and
    /// drained.
    pub fn try_consume_into(&self, out: &mut Vec<u64>) -> Consumed {
        let mut all_closed = true;
        for r in self.rings.iter() {
            match r.try_consume_into(out) {
                Consumed::Batch(n) => return Consumed::Batch(n),
                Consumed::Empty => all_closed = false,
                Consumed::Closed => {}
            }
        }
        if all_closed {
            Consumed::Closed
        } else {
            Consumed::Empty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gravel_gq::Message;

    fn bank(lanes: usize) -> ShardedRings {
        ShardedRings::new(
            QueueConfig {
                slots: 8,
                lane_width: 4,
                rows: 4,
            },
            lanes,
        )
    }

    #[test]
    fn one_lane_owns_every_destination() {
        let b = bank(1);
        for dest in 0..16 {
            assert_eq!(b.shard_of(dest), 0);
        }
        assert_eq!(b.lanes(), 1);
        assert_eq!(b.config().slots, 8, "single lane keeps the full budget");
    }

    #[test]
    fn slot_budget_divides_across_lanes() {
        assert_eq!(bank(4).config().slots, 2);
        assert_eq!(bank(2).config().slots, 4);
        // Floor of two slots even when oversubscribed.
        assert_eq!(bank(7).config().slots, 2);
    }

    #[test]
    fn governed_bank_starts_collapsed_with_divided_budget() {
        let cfg = QueueConfig { slots: 8, lane_width: 4, rows: 4 };
        let b = ShardedRings::with_telemetry(
            cfg,
            4,
            true,
            QueueStats::default(),
            Tracer::disabled(),
            0,
        );
        assert_eq!(b.lanes(), 4);
        assert_eq!(b.active_lanes(), 1, "governed banks start collapsed");
        assert_eq!(b.config().slots, 2, "budget divides like a static bank");
        for dest in 0..16 {
            assert_eq!(b.shard_of(dest), 0, "collapsed mask routes everything to lane 0");
        }
        b.set_active_lanes(2);
        assert_eq!(b.shard_of(3), 1);
        // Clamped to the physical lane count (and to >= 1).
        b.set_active_lanes(99);
        assert_eq!(b.active_lanes(), 4);
        b.set_active_lanes(0);
        assert_eq!(b.active_lanes(), 1);
    }

    #[test]
    fn produce_routes_by_destination_hash() {
        let b = bank(2);
        for dest in 0..4u32 {
            b.produce_one(dest, &Message::inc(dest, 0, 1).encode());
        }
        // Even dests on ring 0, odd on ring 1.
        let mut out = Vec::new();
        assert_eq!(b.ring(0).try_consume_into(&mut out), Consumed::Batch(1));
        assert_eq!(out[1], 0);
        out.clear();
        assert_eq!(b.ring(1).try_consume_into(&mut out), Consumed::Batch(1));
        assert_eq!(out[1], 1);
    }

    #[test]
    fn sweep_consume_and_backlog_cover_all_rings() {
        let b = bank(2);
        b.produce_one(0, &Message::inc(0, 0, 1).encode());
        b.produce_one(1, &Message::inc(1, 0, 1).encode());
        assert_eq!(b.backlog(), 2);
        let mut out = Vec::new();
        assert_eq!(b.try_consume_into(&mut out), Consumed::Batch(1));
        assert_eq!(b.try_consume_into(&mut out), Consumed::Batch(1));
        assert_eq!(b.try_consume_into(&mut out), Consumed::Empty);
        b.close();
        assert!(b.is_closed());
        assert_eq!(b.try_consume_into(&mut out), Consumed::Closed);
    }

    #[test]
    fn shared_stats_aggregate_across_rings() {
        let b = bank(2);
        b.produce_one(0, &Message::inc(0, 0, 1).encode());
        b.produce_one(1, &Message::inc(1, 0, 1).encode());
        assert_eq!(b.stats.snapshot().messages_produced, 2);
    }
}
