//! Adaptive lane governor: collapse the dest-hash routing mask to
//! fewer *active* lanes when per-lane fill is low, re-expand under
//! sustained high fill.
//!
//! PR 4's multi-lane aggregator is a straight win for dense flows
//! (GUPS: every queue flushes full, more lanes = more drain
//! bandwidth) and a straight loss for sparse ones (PageRank: thin
//! per-destination flows fragment across lanes, every lane pays its
//! own flush/park overhead, packets shrink). The signal separating
//! the two already exists — the per-destination fill EWMA the
//! adaptive flush tracks — so the governor reuses it at lane
//! granularity:
//!
//! * Each aggregator lane periodically publishes the **max** fill EWMA
//!   across its destination queues ([`LaneGovernor::publish_fill`]);
//!   an idle lane publishes zero.
//! * The decision rule also reads the active rings' **occupancy**
//!   (published-unconsumed slots) directly. The fill EWMA only moves
//!   when a lane gets scheduled and flushes; on an oversubscribed host
//!   a collapsed mask under dense traffic can take tens of
//!   milliseconds to register there, while the ring behind it fills
//!   instantly. The load signal is the max of the two, so expansion
//!   reacts at ring speed and collapse stays conservative (it needs
//!   *both* signals quiet).
//! * Lane 0 (never parked — the mask always includes it) runs the
//!   decision rule ([`LaneGovernor::decide`]) at a bounded cadence:
//!   if the signal across *active* lanes stays above the high-water
//!   mark for `hysteresis` consecutive decisions, the active count
//!   doubles; if it stays below the low-water mark, it halves. A
//!   *saturated* signal (≥ [`SATURATED_SIGNAL`]) skips the streak:
//!   a ring pinned full is unambiguous, and every decision period
//!   spent waiting under a collapsed mask is throughput lost.
//!
//! A governed bank **starts collapsed** at one active lane. Sparse
//! workloads therefore run the (optimal) single-lane configuration
//! from the first message and never pay a fragmentation transient;
//! dense workloads expand to the full lane count within a few decision
//! periods — microseconds against a run measured in milliseconds.
//!
//! Parked lanes need no machinery: a lane whose ring receives no
//! traffic drains its residue and parks on the existing ring wait-cell;
//! re-expansion routes messages at it again, and the producer-side
//! Dekker handshake wakes it. Chaos tick accounting is untouched —
//! kills land at message boundaries whatever the mask says, so
//! restart-exactness is preserved (the lane-sweep chaos tests run with
//! the governor on).
//!
//! **Ordering contract:** per-destination ordering is guaranteed while
//! the mask holds. A transition remaps destinations between lanes, so
//! traffic produced just before and just after it may travel two
//! `(src, lane)` go-back-N flows concurrently — a bounded reorder
//! window, same relaxation elastic resharding already makes for
//! in-flight traffic (DESIGN.md §16). Gravel's PGAS operations
//! commute; workloads that need strict cross-transition PUT order run
//! with `lane_governor: None` (see DESIGN.md §17).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gravel_telemetry::{Counter, Gauge, Registry};

use crate::rings::ShardedRings;

/// Tuning for the adaptive lane governor. `None` in the runtime config
/// disables it (static mask over all lanes — the PR 4 behavior).
#[derive(Clone, Debug, PartialEq)]
pub struct GovernorConfig {
    /// Collapse when the max active-lane fill EWMA stays below this.
    /// Default 0.25: comfortably under PageRank's ~0.37 steady fill,
    /// so a workload that merely *aggregates poorly* is not bounced
    /// between masks — only a genuinely thin load collapses.
    pub low_fill: f64,
    /// Expand when the max active-lane fill EWMA stays above this.
    /// Default 0.75: GUPS-dense traffic pins fill near 1.0 and clears
    /// it immediately; PageRank never reaches it.
    pub high_fill: f64,
    /// Decision cadence (lane 0 evaluates at most this often).
    pub decide_every: Duration,
    /// Consecutive high decisions required before the mask grows —
    /// the hysteresis that keeps a bursty workload from thrashing the
    /// mask. (A saturated signal skips it; see [`SATURATED_SIGNAL`].)
    pub hysteresis: u32,
    /// Consecutive low decisions required before the mask shrinks.
    /// Deliberately much larger than the expand hysteresis (default 40
    /// ≈ 10 ms of sustained quiet at the default cadence): the low
    /// signal is structurally noisy on an oversubscribed host — an
    /// aggregator that just drained its ring looks idle while the
    /// producer feeding it is merely descheduled — and collapsing
    /// under load costs backpressure, while a late collapse costs
    /// almost nothing (idle lanes park). Decisions are cadence-gated,
    /// so the streak also spans at least `collapse_hysteresis ×
    /// decide_every` of wall clock, giving producers time slices in
    /// which to refill the rings and reset it.
    pub collapse_hysteresis: u32,
}

/// Signal level treated as saturated: expansion skips the hysteresis
/// streak entirely. A ring pinned at ≥ 95 % occupancy under a
/// collapsed mask means producers are already stalling on
/// backpressure — waiting `hysteresis` further decision periods to
/// "confirm" it only converts more of the run into single-lane time.
/// Collapse never uses this fast path; shrinking the mask is the risky
/// direction and always pays the full streak.
pub const SATURATED_SIGNAL: f64 = 0.95;

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            low_fill: 0.25,
            high_fill: 0.75,
            decide_every: Duration::from_micros(250),
            hysteresis: 2,
            collapse_hysteresis: 40,
        }
    }
}

impl GovernorConfig {
    /// Panic on nonsensical tuning (called by config validation).
    pub fn validate(&self) {
        assert!(
            self.low_fill > 0.0 && self.low_fill < self.high_fill && self.high_fill <= 1.0,
            "governor needs 0 < low_fill < high_fill <= 1"
        );
        assert!(!self.decide_every.is_zero(), "governor decision cadence must be nonzero");
        assert!(self.hysteresis >= 1, "governor hysteresis must be >= 1");
        assert!(self.collapse_hysteresis >= 1, "governor collapse hysteresis must be >= 1");
    }
}

/// Shared governor state: per-lane fill signals published by every
/// aggregator lane, decision state driven by lane 0. Lives in
/// `NodeShared` so lane restarts (chaos kills) resume with the streaks
/// and mask intact.
pub struct LaneGovernor {
    cfg: GovernorConfig,
    lanes: usize,
    /// Per-lane fill signal in milli-units (0..=1000).
    fills: Box<[AtomicU64]>,
    expand_streak: AtomicU32,
    collapse_streak: AtomicU32,
    /// Decision clock: monotonic nanos (since `start`) before which
    /// `decide` is a no-op.
    start: Instant,
    next_decide_ns: AtomicU64,
    expands: Counter,
    collapses: Counter,
    active_gauge: Gauge,
}

impl LaneGovernor {
    /// Governor for `lanes` lanes with detached telemetry.
    pub fn new(cfg: GovernorConfig, lanes: usize) -> Self {
        Self::build(cfg, lanes, Counter::detached(), Counter::detached(), Gauge::detached())
    }

    /// Governor whose `gov.expands` / `gov.collapses` /
    /// `gov.active_lanes` metrics live in `registry` under `prefix`
    /// (e.g. `"node0"`).
    pub fn bound(cfg: GovernorConfig, lanes: usize, registry: &Registry, prefix: &str) -> Self {
        Self::build(
            cfg,
            lanes,
            registry.counter(&format!("{prefix}.gov.expands")),
            registry.counter(&format!("{prefix}.gov.collapses")),
            registry.gauge(&format!("{prefix}.gov.active_lanes")),
        )
    }

    fn build(
        cfg: GovernorConfig,
        lanes: usize,
        expands: Counter,
        collapses: Counter,
        active_gauge: Gauge,
    ) -> Self {
        cfg.validate();
        assert!(lanes >= 1);
        active_gauge.set(1);
        LaneGovernor {
            cfg,
            lanes,
            fills: (0..lanes).map(|_| AtomicU64::new(0)).collect(),
            expand_streak: AtomicU32::new(0),
            collapse_streak: AtomicU32::new(0),
            start: Instant::now(),
            next_decide_ns: AtomicU64::new(0),
            expands,
            collapses,
            active_gauge,
        }
    }

    /// The tuning in force.
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// Publish lane `lane`'s current load signal (its queues' max fill
    /// EWMA, or 0 when fully idle). Called from the lane's own loop.
    pub fn publish_fill(&self, lane: usize, fill: f64) {
        if let Some(f) = self.fills.get(lane) {
            f.store((fill.clamp(0.0, 1.0) * 1000.0) as u64, Ordering::Relaxed);
        }
    }

    /// Lane `lane`'s last published signal (telemetry/tests).
    pub fn fill(&self, lane: usize) -> f64 {
        self.fills.get(lane).map_or(0.0, |f| f.load(Ordering::Relaxed) as f64 / 1000.0)
    }

    /// Evaluate the mask, rate-limited to the configured cadence.
    /// Called by lane 0 once per drain-loop iteration and by producers
    /// after each full slot they publish; cheap when the cadence has
    /// not elapsed. Returns the new active count if the mask moved.
    ///
    /// Producers matter on an oversubscribed host: a lane-0 consumer
    /// can sit descheduled for tens of milliseconds while a dense burst
    /// backs its ring up, but the producer filling that ring is running
    /// by definition — it sees the saturation first. Mask transitions
    /// CAS ([`ShardedRings::transition_active_lanes`]), so a racing
    /// pair of deciders moves the mask once, never backward.
    pub fn decide(&self, rings: &ShardedRings, now: Instant) -> Option<usize> {
        let t = now.saturating_duration_since(self.start).as_nanos() as u64;
        if t < self.next_decide_ns.load(Ordering::Relaxed) {
            return None;
        }
        // The cadence gate is check-then-store over two relaxed atomics:
        // with several deciders a pair can slip through one period
        // together. That only makes the cadence approximate, and the
        // transition CAS keeps the outcome single-move.
        self.next_decide_ns
            .store(t + self.cfg.decide_every.as_nanos() as u64, Ordering::Relaxed);
        self.decide_now(rings)
    }

    /// The decision rule without the cadence gate (tests drive this
    /// directly).
    pub fn decide_now(&self, rings: &ShardedRings) -> Option<usize> {
        let active = rings.active_lanes();
        let fill = (0..active.min(self.lanes))
            .map(|l| self.fills[l].load(Ordering::Relaxed))
            .max()
            .unwrap_or(0) as f64
            / 1000.0;
        // Upstream backpressure, read at decision time: occupancy of
        // the rings the active mask routes into. Unlike the fill EWMA
        // (which needs a lane to run and flush before it moves), this
        // reflects a saturated collapsed mask within one decision
        // period.
        let slots = rings.config().slots as f64;
        let occupancy = (0..active.min(self.lanes))
            .map(|l| rings.ring(l).backlog() as f64 / slots)
            .fold(0.0, f64::max)
            .min(1.0);
        let signal = fill.max(occupancy);
        if signal >= self.cfg.high_fill && active < self.lanes {
            self.collapse_streak.store(0, Ordering::Relaxed);
            let streak = self.expand_streak.fetch_add(1, Ordering::Relaxed) + 1;
            if streak >= self.cfg.hysteresis || signal >= SATURATED_SIGNAL {
                self.expand_streak.store(0, Ordering::Relaxed);
                let next = (active * 2).min(self.lanes);
                if !rings.transition_active_lanes(active, next) {
                    return None; // lost the race to a concurrent decider
                }
                self.expands.inc();
                self.active_gauge.set(next as i64);
                return Some(next);
            }
        } else if signal <= self.cfg.low_fill && active > 1 {
            self.expand_streak.store(0, Ordering::Relaxed);
            let streak = self.collapse_streak.fetch_add(1, Ordering::Relaxed) + 1;
            if streak >= self.cfg.collapse_hysteresis {
                self.collapse_streak.store(0, Ordering::Relaxed);
                let next = (active / 2).max(1);
                if !rings.transition_active_lanes(active, next) {
                    return None; // lost the race to a concurrent decider
                }
                self.collapses.inc();
                self.active_gauge.set(next as i64);
                return Some(next);
            }
        } else {
            self.expand_streak.store(0, Ordering::Relaxed);
            self.collapse_streak.store(0, Ordering::Relaxed);
        }
        None
    }
}

impl std::fmt::Debug for LaneGovernor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneGovernor")
            .field("lanes", &self.lanes)
            .field("cfg", &self.cfg)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gravel_gq::{Message, QueueConfig, QueueStats};
    use gravel_telemetry::Tracer;

    fn governed_bank(lanes: usize) -> ShardedRings {
        ShardedRings::with_telemetry(
            QueueConfig { slots: 8, lane_width: 4, rows: 4 },
            lanes,
            true,
            QueueStats::default(),
            Tracer::disabled(),
            0,
        )
    }

    #[test]
    fn sustained_high_fill_expands_to_all_lanes() {
        let rings = governed_bank(4);
        let gov = LaneGovernor::new(GovernorConfig::default(), 4);
        assert_eq!(rings.active_lanes(), 1);
        // 0.8 sits above the high-water mark but below saturation, so
        // the full hysteresis applies: first decision arms, second
        // moves. 1→2→4.
        gov.publish_fill(0, 0.8);
        assert_eq!(gov.decide_now(&rings), None);
        assert_eq!(gov.decide_now(&rings), Some(2));
        assert_eq!(gov.decide_now(&rings), None);
        assert_eq!(gov.decide_now(&rings), Some(4));
        assert_eq!(rings.active_lanes(), 4);
        // Fully expanded: further high fill is a no-op.
        assert_eq!(gov.decide_now(&rings), None);
        assert_eq!(gov.decide_now(&rings), None);
    }

    #[test]
    fn saturated_signal_skips_the_expand_streak() {
        let rings = governed_bank(4);
        let gov = LaneGovernor::new(GovernorConfig::default(), 4);
        // A pinned signal expands on every decision — no arming step.
        gov.publish_fill(0, 1.0);
        assert_eq!(gov.decide_now(&rings), Some(2));
        gov.publish_fill(1, 1.0);
        assert_eq!(gov.decide_now(&rings), Some(4));
        assert_eq!(rings.active_lanes(), 4);
    }

    #[test]
    fn ring_backpressure_expands_without_a_flush() {
        // 32 slots divide to 8 per ring (the bank splits the budget).
        let rings = ShardedRings::with_telemetry(
            QueueConfig { slots: 32, lane_width: 4, rows: 4 },
            4,
            true,
            QueueStats::default(),
            Tracer::disabled(),
            0,
        );
        let gov = LaneGovernor::new(GovernorConfig::default(), 4);
        // No lane has flushed yet (no fill was ever published), but the
        // collapsed ring is backing up: occupancy alone carries the
        // signal. 6 of 8 slots = 0.75 — high water, below saturation.
        for _ in 0..6 {
            rings.produce_one(0, &Message::inc(0, 0, 1).encode());
        }
        assert_eq!(gov.decide_now(&rings), None);
        assert_eq!(gov.decide_now(&rings), Some(2));
        assert_eq!(rings.active_lanes(), 2);
    }

    #[test]
    fn sustained_low_fill_collapses_back() {
        let rings = governed_bank(4);
        let cfg = GovernorConfig { collapse_hysteresis: 2, ..Default::default() };
        let gov = LaneGovernor::new(cfg, 4);
        rings.set_active_lanes(4);
        for l in 0..4 {
            gov.publish_fill(l, 0.05);
        }
        assert_eq!(gov.decide_now(&rings), None);
        assert_eq!(gov.decide_now(&rings), Some(2));
        assert_eq!(gov.decide_now(&rings), None);
        assert_eq!(gov.decide_now(&rings), Some(1));
        assert_eq!(rings.active_lanes(), 1);
        assert_eq!(gov.decide_now(&rings), None, "cannot collapse below one lane");
    }

    #[test]
    fn collapse_hysteresis_is_asymmetric_and_resets_on_load() {
        let rings = governed_bank(4);
        let gov = LaneGovernor::new(GovernorConfig::default(), 4);
        rings.set_active_lanes(4);
        gov.publish_fill(0, 0.05);
        // Default collapse hysteresis (40) holds through a long quiet
        // spell an expand streak (2) would already have acted on…
        for _ in 0..39 {
            assert_eq!(gov.decide_now(&rings), None);
        }
        // …and one busy reading arms it back to zero.
        gov.publish_fill(0, 0.5);
        assert_eq!(gov.decide_now(&rings), None);
        gov.publish_fill(0, 0.05);
        for _ in 0..39 {
            assert_eq!(gov.decide_now(&rings), None);
        }
        assert_eq!(rings.active_lanes(), 4, "mask held through both spells");
        assert_eq!(gov.decide_now(&rings), Some(2), "40th consecutive low reading moves it");
    }

    #[test]
    fn mid_band_fill_holds_the_mask_and_resets_streaks() {
        let rings = governed_bank(4);
        let gov = LaneGovernor::new(GovernorConfig::default(), 4);
        // PageRank-like: ~0.37 fill sits between the water marks.
        gov.publish_fill(0, 0.37);
        for _ in 0..16 {
            assert_eq!(gov.decide_now(&rings), None);
        }
        assert_eq!(rings.active_lanes(), 1, "sparse load never fragments");
        // An interrupted streak must not carry over (0.8: high water
        // without the saturation fast path).
        gov.publish_fill(0, 0.8);
        assert_eq!(gov.decide_now(&rings), None); // arms
        gov.publish_fill(0, 0.5);
        assert_eq!(gov.decide_now(&rings), None); // resets
        gov.publish_fill(0, 0.8);
        assert_eq!(gov.decide_now(&rings), None, "streak restarted from zero");
        assert_eq!(gov.decide_now(&rings), Some(2));
    }

    #[test]
    fn signal_reads_only_active_lanes() {
        let rings = governed_bank(4);
        let gov = LaneGovernor::new(GovernorConfig::default(), 4);
        // A stale high fill on a parked lane must not drive expansion.
        gov.publish_fill(3, 1.0);
        gov.publish_fill(0, 0.1);
        assert_eq!(gov.decide_now(&rings), None);
        assert_eq!(gov.decide_now(&rings), None);
        assert_eq!(rings.active_lanes(), 1);
    }

    #[test]
    fn decide_respects_the_cadence() {
        let rings = governed_bank(2);
        let cfg = GovernorConfig { decide_every: Duration::from_secs(3600), ..Default::default() };
        let gov = LaneGovernor::new(cfg, 2);
        gov.publish_fill(0, 0.8);
        let now = Instant::now();
        assert_eq!(gov.decide(&rings, now), None); // consumes the first slot
        for _ in 0..8 {
            assert_eq!(gov.decide(&rings, now), None, "cadence not elapsed");
        }
        // The first call armed the streak; nothing further ran.
        assert_eq!(rings.active_lanes(), 1);
    }
}
