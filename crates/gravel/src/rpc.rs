//! Request-reply bookkeeping: the per-node pending-reply table.
//!
//! Every GET or value-returning AM call registers here before its
//! request message is offloaded: the table hands back a *token* the
//! request carries and the reply echoes, and remembers which
//! [`ReplySink`] slot to complete when that reply (or a timeout)
//! arrives. The table is the requester-side half of the RPC contract —
//! every issued request completes exactly once, as a value or as a
//! deterministic error:
//!
//! * **bounded** — at most `cap` entries; registration past that fails
//!   fast with [`RpcError::TableFull`] instead of growing without limit
//!   under a reply outage.
//! * **evict-on-timeout** — [`sweep`](PendingReplies::sweep) (driven
//!   from the network thread's receive loop) completes overdue entries
//!   with [`RpcFailure::TimedOut`] and counts `rpc.timeouts`.
//! * **generation-guarded** — the high 8 token bits carry a generation
//!   bumped by node recovery
//!   ([`bump_generation`](PendingReplies::bump_generation)), so a reply
//!   that raced a restart is rejected (`rpc.stale_rejected`) instead of
//!   completing a recycled entry. Outstanding requests at the bump fail
//!   with [`RpcFailure::Restarted`].
//! * **orphan-counting** — a reply whose token names no entry (already
//!   timed out, or duplicated by retransmission upstream of the dedupe
//!   window) bumps `rpc.orphan_replies` and is dropped.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gravel_gq::{ReplySink, RpcFailure};
use gravel_telemetry::{Counter, Registry};

/// Request-reply tuning, part of
/// [`GravelConfig`](crate::GravelConfig).
#[derive(Clone, Debug)]
pub struct RpcConfig {
    /// Schedule the aggregator's send path by QoS band (GETs and
    /// replies overtake bulk PUT runs). `false` is the ablation knob:
    /// one class, one band, plain DATA frames — the PR 5
    /// `WireIntegrity::Off` pattern.
    pub qos_bands: bool,
    /// Pending-reply table capacity (outstanding requests per node).
    pub reply_table_cap: usize,
    /// Default request deadline: how long the requester waits before an
    /// entry is evicted as timed out.
    pub timeout: Duration,
}

impl Default for RpcConfig {
    fn default() -> Self {
        RpcConfig {
            qos_bands: true,
            reply_table_cap: 4096,
            timeout: Duration::from_millis(250),
        }
    }
}

/// Why a request could not be registered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcError {
    /// The pending-reply table is at capacity.
    TableFull,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::TableFull => write!(f, "pending-reply table full"),
        }
    }
}

impl std::error::Error for RpcError {}

struct Entry {
    sink: Arc<ReplySink>,
    slot: usize,
    deadline: Instant,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    next_seq: u64,
}

/// The pending-reply table. One per node, shared by the issue path
/// (GPU ctx / host API) and the completion path (network thread).
pub struct PendingReplies {
    inner: Mutex<Inner>,
    generation: AtomicU64,
    cap: usize,
    /// Requests registered (GETs + AM calls issued).
    pub issued: Counter,
    /// Requests completed with a reply value.
    pub completed: Counter,
    /// Requests evicted as timed out.
    pub timeouts: Counter,
    /// Replies rejected by the generation guard (arrived after a
    /// restart).
    pub stale_rejected: Counter,
    /// Replies whose token named no pending entry.
    pub orphan_replies: Counter,
    /// Registrations refused because the table was at capacity.
    pub table_full: Counter,
}

const GEN_BITS: u32 = 8;
const SEQ_MASK: u64 = (1 << (64 - GEN_BITS)) - 1;

impl PendingReplies {
    /// A table of capacity `cap` with counters registered under
    /// `{prefix}.rpc.`.
    pub fn bound(registry: &Registry, prefix: &str, cap: usize) -> Self {
        let name = |suffix: &str| format!("{prefix}.rpc.{suffix}");
        PendingReplies {
            inner: Mutex::new(Inner { entries: HashMap::new(), next_seq: 0 }),
            generation: AtomicU64::new(0),
            cap: cap.max(1),
            issued: registry.counter(&name("issued")),
            completed: registry.counter(&name("completed")),
            timeouts: registry.counter(&name("timeouts")),
            stale_rejected: registry.counter(&name("stale_rejected")),
            orphan_replies: registry.counter(&name("orphan_replies")),
            table_full: registry.counter(&name("table_full")),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock poisons it; the table's state
        // is a plain map, safe to keep using (the HA supervisor owns
        // worker-panic policy).
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Current generation (the high token byte of newly issued tokens).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst) & ((1 << GEN_BITS) - 1)
    }

    /// Register a request: on completion (reply, timeout, or restart)
    /// `sink` slot `slot` is resolved. Returns the token the request
    /// message must carry.
    pub fn register(
        &self,
        sink: Arc<ReplySink>,
        slot: usize,
        deadline: Instant,
    ) -> Result<u64, RpcError> {
        let gen = self.generation();
        let mut inner = self.lock();
        if inner.entries.len() >= self.cap {
            drop(inner);
            self.table_full.add(1);
            return Err(RpcError::TableFull);
        }
        let seq = inner.next_seq & SEQ_MASK;
        inner.next_seq = inner.next_seq.wrapping_add(1);
        let token = (gen << (64 - GEN_BITS)) | seq;
        sink.arm();
        inner.entries.insert(token, Entry { sink, slot, deadline });
        drop(inner);
        self.issued.add(1);
        Ok(token)
    }

    /// Deliver a reply. Returns `true` when the token matched a pending
    /// entry and its sink was completed with `value`.
    pub fn complete(&self, token: u64, value: u64) -> bool {
        if token >> (64 - GEN_BITS) != self.generation() {
            self.stale_rejected.add(1);
            return false;
        }
        let entry = self.lock().entries.remove(&token);
        match entry {
            Some(e) => {
                // Count before waking the sink: a waiter released by
                // `complete` must already see this completion in the
                // ledger (`issued == completed + timeouts`).
                self.completed.add(1);
                e.sink.complete(e.slot, value);
                true
            }
            None => {
                self.orphan_replies.add(1);
                false
            }
        }
    }

    /// Evict every entry whose deadline passed, completing its sink
    /// slot with [`RpcFailure::TimedOut`]. Returns how many were
    /// evicted. Cheap when nothing is pending; the network thread calls
    /// it once per receive-loop iteration (~1 ms cadence).
    pub fn sweep(&self, now: Instant) -> usize {
        let mut inner = self.lock();
        if inner.entries.is_empty() {
            return 0;
        }
        let expired: Vec<u64> = inner
            .entries
            .iter()
            .filter(|(_, e)| now >= e.deadline)
            .map(|(&t, _)| t)
            .collect();
        let mut evicted = Vec::with_capacity(expired.len());
        for t in &expired {
            if let Some(e) = inner.entries.remove(t) {
                evicted.push(e);
            }
        }
        drop(inner);
        let n = evicted.len();
        // Count before waking the sinks (same ordering contract as
        // `complete`).
        self.timeouts.add(n as u64);
        for e in evicted {
            e.sink.fail(e.slot, RpcFailure::TimedOut);
        }
        n
    }

    /// Advance the generation (node recovery): every outstanding entry
    /// fails with [`RpcFailure::Restarted`], and replies carrying the
    /// old generation are rejected from now on.
    pub fn bump_generation(&self) -> usize {
        self.generation.fetch_add(1, Ordering::SeqCst);
        let drained: Vec<Entry> = {
            let mut inner = self.lock();
            inner.entries.drain().map(|(_, e)| e).collect()
        };
        let n = drained.len();
        for e in drained {
            e.sink.fail(e.slot, RpcFailure::Restarted);
        }
        n
    }

    /// Outstanding entries (0 after a clean run: the chaos acceptance
    /// asserts the table never leaks).
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gravel_gq::ReplyState;
    use gravel_telemetry::TelemetryConfig;

    fn table(cap: usize) -> PendingReplies {
        let registry = Registry::new(TelemetryConfig::default());
        PendingReplies::bound(&registry, "node0", cap)
    }

    #[test]
    fn register_complete_roundtrip() {
        let t = table(8);
        let sink = Arc::new(ReplySink::new(2));
        let deadline = Instant::now() + Duration::from_secs(5);
        let a = t.register(sink.clone(), 0, deadline).unwrap();
        let b = t.register(sink.clone(), 1, deadline).unwrap();
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert!(t.complete(a, 11));
        assert!(t.complete(b, 22));
        assert_eq!(t.len(), 0);
        assert!(sink.wait_all(Duration::from_secs(1)));
        assert_eq!(sink.get(0), ReplyState::Ok(11));
        assert_eq!(sink.get(1), ReplyState::Ok(22));
        assert_eq!(t.completed.get(), 2);
    }

    #[test]
    fn duplicate_reply_is_an_orphan() {
        let t = table(8);
        let sink = Arc::new(ReplySink::new(1));
        let tok = t.register(sink, 0, Instant::now() + Duration::from_secs(5)).unwrap();
        assert!(t.complete(tok, 1));
        assert!(!t.complete(tok, 1));
        assert_eq!(t.orphan_replies.get(), 1);
    }

    #[test]
    fn sweep_times_out_overdue_entries() {
        let t = table(8);
        let sink = Arc::new(ReplySink::new(2));
        let now = Instant::now();
        let tok = t.register(sink.clone(), 0, now).unwrap();
        t.register(sink.clone(), 1, now + Duration::from_secs(60)).unwrap();
        assert_eq!(t.sweep(now + Duration::from_millis(1)), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(sink.get(0), ReplyState::Failed(RpcFailure::TimedOut));
        assert_eq!(sink.get(1), ReplyState::Pending);
        assert_eq!(t.timeouts.get(), 1);
        // The timed-out token's late reply is an orphan, not a double
        // completion.
        assert!(!t.complete(tok, 9));
        assert_eq!(sink.get(0), ReplyState::Failed(RpcFailure::TimedOut));
    }

    #[test]
    fn generation_guard_rejects_post_restart_replies() {
        let t = table(8);
        let sink = Arc::new(ReplySink::new(1));
        let tok = t.register(sink.clone(), 0, Instant::now() + Duration::from_secs(5)).unwrap();
        assert_eq!(t.bump_generation(), 1);
        assert_eq!(sink.get(0), ReplyState::Failed(RpcFailure::Restarted));
        assert_eq!(t.len(), 0);
        // The old-generation reply is stale, and the entry is gone.
        assert!(!t.complete(tok, 7));
        assert_eq!(t.stale_rejected.get(), 1);
        // New registrations carry the new generation.
        let sink2 = Arc::new(ReplySink::new(1));
        let tok2 = t.register(sink2, 0, Instant::now() + Duration::from_secs(5)).unwrap();
        assert_ne!(tok >> 56, tok2 >> 56);
        assert!(t.complete(tok2, 7));
    }

    #[test]
    fn capacity_is_enforced() {
        let t = table(2);
        let sink = Arc::new(ReplySink::new(3));
        let deadline = Instant::now() + Duration::from_secs(5);
        t.register(sink.clone(), 0, deadline).unwrap();
        t.register(sink.clone(), 1, deadline).unwrap();
        assert_eq!(t.register(sink.clone(), 2, deadline), Err(RpcError::TableFull));
        assert_eq!(t.table_full.get(), 1);
        // Slot 2 was never armed; the sink still resolves once the two
        // live entries complete.
        assert_eq!(sink.outstanding(), 2);
    }
}
