//! Per-node shared state.
//!
//! Everything the GPU kernels, the aggregator thread, and the network
//! thread of one node share: the symmetric heap, the producer/consumer
//! queue, the active-message registry, and the counters that let the
//! runtime detect cluster-wide quiescence.
//!
//! All counters are [`gravel_telemetry`] handles registered in the
//! cluster's shared [`Registry`] under a `node{id}.` prefix (see
//! DESIGN.md §10 for the naming scheme), so a single
//! [`Registry::snapshot`] captures the whole cluster and
//! [`NodeStats`] is just a typed view of it.
//! The quiescence pair `offloaded`/`applied` is *vital* — registered via
//! [`Registry::vital_counter`], it keeps counting even under
//! `TelemetryConfig::Off`, because `quiesce()` is correctness, not
//! observability.

use std::sync::atomic::{fence, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gravel_gq::{BufferPool, Message, QueueStats};
use gravel_net::RetryConfig;
use gravel_pgas::{
    AdaptiveFlush, AggCounters, AmRegistry, Quarantine, SymmetricHeap, WireIntegrity,
};
use gravel_telemetry::{Counter, Histogram, Registry, Tracer};

use crate::config::GravelConfig;
use crate::governor::LaneGovernor;
use crate::rings::ShardedRings;
use crate::stats::{NetStats, NodeStats};

/// Shared state of one node.
pub struct NodeShared {
    /// This node's id.
    pub id: u32,
    /// Cluster size.
    pub nodes: usize,
    /// This node's slice of the symmetric heap.
    pub heap: SymmetricHeap,
    /// GPU → aggregator offload rings, destination-sharded with one ring
    /// per aggregator lane (a single classic ring when
    /// `aggregator_threads == 1`).
    pub queue: ShardedRings,
    /// Active-message handlers (identical on every node).
    pub ams: Arc<AmRegistry>,
    /// The cluster's metric registry (shared by every node; this node's
    /// metrics carry a `node{id}.` prefix).
    pub registry: Arc<Registry>,
    /// The cluster's span recorder (disabled unless
    /// `TelemetryConfig::CountersAndTrace`).
    pub tracer: Tracer,
    /// Messages offloaded into the queue by this node's GPU (and host).
    /// Vital: drives quiescence even with telemetry off.
    pub offloaded: Counter,
    /// Messages applied by this node's network thread. Vital.
    pub applied: Counter,
    /// Local operations short-circuited by the GPU (direct PUT stores).
    pub local_direct: Counter,
    /// Messages routed with a local destination (serialized atomics).
    pub local_routed: Counter,
    /// Messages routed to remote destinations.
    pub remote_routed: Counter,
    /// Aggregation counters shared by every aggregator slot of this node.
    pub agg: AggCounters,
    /// Aggregator idle/busy poll counts (§8.1's 65 %-polling metric).
    pub agg_polls_empty: Counter,
    /// Aggregator polls that found work.
    pub agg_polls_hit: Counter,
    /// Sender-side delivery tuning (copied from the config so worker
    /// threads need no back-reference to it).
    pub retry: RetryConfig,
    /// Packets retransmitted by this node's sender flows.
    pub net_retransmits: Counter,
    /// Duplicate packets suppressed by this node's receiver.
    pub net_dups_suppressed: Counter,
    /// Acks this node's network thread sent.
    pub net_acks_sent: Counter,
    /// Acks this node's aggregator lanes received.
    pub net_acks_received: Counter,
    /// Sends that stalled because the bounded data channel stayed full
    /// for the whole attempt timeout.
    pub net_chan_stalls: Counter,
    /// Sends parked because the go-back-N in-flight window was full.
    pub net_window_stalls: Counter,
    /// Out-of-order packets discarded because the reorder buffer was
    /// full (recovered later by retransmission).
    pub net_ooo_dropped: Counter,
    /// Busy-spin iterations in the runtime's idle loops (aggregator
    /// drain waits, quiesce polls) before parking.
    pub net_spin_spins: Counter,
    /// Times an idle runtime thread actually parked (condvar or sleep)
    /// instead of burning a core.
    pub net_spin_parks: Counter,
    /// Wire integrity mode every frame this node seals/opens uses
    /// (copied from the config).
    pub wire_integrity: WireIntegrity,
    /// Checkpoint epoch stamped into outgoing frame headers; advanced by
    /// `cut_epoch` so misdirected cross-epoch traffic is attributable.
    pub wire_epoch: AtomicU32,
    /// Inbound frames dropped by this node's network thread for failed
    /// verification (bad magic/version/kind/length, CRC mismatch).
    /// Healed by the sender's go-back-N retransmission.
    pub net_corrupt_dropped: Counter,
    /// Inbound frames dropped because they ended early (truncation).
    pub net_truncated: Counter,
    /// Frames that verified but whose header named a different
    /// destination (or an impossible source) — misrouted by the fabric.
    pub net_misrouted: Counter,
    /// Ack frames this node's aggregator lanes discarded for failed
    /// verification.
    pub net_ack_corrupt_dropped: Counter,
    /// Dead-letter buffer for CRC-clean messages that failed semantic
    /// validation (owns the `net.quarantined` / `net.quarantine_evicted`
    /// counters).
    pub quarantine: Quarantine,
    /// Adaptive flush tuning (copied from the config so aggregator lanes
    /// need no back-reference to it); `None` = fixed timeout.
    pub adaptive_flush: Option<AdaptiveFlush>,
    /// GPU-ring slots an aggregator lane may claim per read-index CAS.
    pub drain_batch: usize,
    /// Aggregation-open → apply latency of every packet this node's
    /// network thread applied, in nanoseconds.
    pub packet_latency: Histogram,
    /// Epoch replay log (`Some` when `cfg.ha.checkpoint`): every packet
    /// this node's network thread fully applies since the last epoch cut,
    /// in apply order. See DESIGN.md §11.
    pub replay: Option<crate::ha::ReplayLog>,
    /// Pending-reply table: tokens of this node's outstanding GETs and
    /// AM calls, completed by the network thread (reply interception,
    /// timeout sweep). See DESIGN.md §15.
    pub rpc: crate::rpc::PendingReplies,
    /// Request deadline copied from `cfg.rpc.timeout`.
    pub rpc_timeout: std::time::Duration,
    /// QoS band scheduling on this node's send path (copied from
    /// `cfg.rpc.qos_bands`; `false` = single-band ablation).
    pub qos_bands: bool,
    /// Packets held back because their band's in-flight credit was
    /// exhausted while window room remained (`rpc.credits_stalled`).
    pub rpc_credits_stalled: Counter,
    /// Replies this node's network thread generated while applying GETs
    /// and AM calls (`rpc.replies_sent`).
    pub rpc_replies_sent: Counter,
    /// Packet-buffer arena shared by this node's aggregator flushes,
    /// frame sealing, and socket receive path (`Some` when
    /// `cfg.buffer_pool`; owns the `pool.hits` / `pool.misses` /
    /// `pool.resident_bytes` metrics). See DESIGN.md §17.
    pub pool: Option<BufferPool>,
    /// Adaptive lane governor (`Some` when `cfg.lane_governor` is set
    /// and the node runs more than one aggregator lane). Lane 0 drives
    /// [`LaneGovernor::decide`]; every lane publishes its fill signal.
    pub governor: Option<Arc<LaneGovernor>>,
}

impl NodeShared {
    /// Build node `id`'s state with a private registry derived from
    /// `cfg.telemetry` (unit tests, standalone nodes). Clusters share one
    /// registry via [`with_telemetry`](Self::with_telemetry). Network
    /// senders are owned by the aggregator thread (see
    /// [`crate::aggregator::run`]) so that dropping them at shutdown
    /// disconnects the network threads.
    pub fn new(id: u32, cfg: &GravelConfig, ams: Arc<AmRegistry>) -> Self {
        let registry = Arc::new(Registry::new(cfg.telemetry));
        let tracer = cfg.telemetry.tracer();
        Self::with_telemetry(id, cfg, ams, registry, tracer)
    }

    /// Build node `id`'s state registering its metrics in a shared
    /// cluster `registry` and recording spans through `tracer`.
    pub fn with_telemetry(
        id: u32,
        cfg: &GravelConfig,
        ams: Arc<AmRegistry>,
        registry: Arc<Registry>,
        tracer: Tracer,
    ) -> Self {
        let p = format!("node{id}");
        let name = |suffix: &str| format!("{p}.{suffix}");
        let queue_stats = QueueStats::bound(&registry, &p);
        let lanes = cfg.aggregator_threads.max(1);
        let governed = cfg.lane_governor.is_some() && lanes > 1;
        NodeShared {
            id,
            nodes: cfg.nodes,
            heap: SymmetricHeap::new(cfg.heap_len),
            queue: ShardedRings::with_telemetry(
                cfg.queue,
                lanes,
                governed,
                queue_stats,
                tracer.clone(),
                id,
            ),
            pool: cfg.buffer_pool.then(|| BufferPool::bound(&registry, &format!("{p}."))),
            governor: governed.then(|| {
                Arc::new(LaneGovernor::bound(
                    cfg.lane_governor.clone().unwrap(),
                    lanes,
                    &registry,
                    &p,
                ))
            }),
            ams,
            offloaded: registry.vital_counter(&name("offloaded")),
            applied: registry.vital_counter(&name("applied")),
            local_direct: registry.counter(&name("route.local_direct")),
            local_routed: registry.counter(&name("route.local_routed")),
            remote_routed: registry.counter(&name("route.remote_routed")),
            agg: AggCounters::bound(&registry, &p),
            agg_polls_empty: registry.counter(&name("agg.polls_empty")),
            agg_polls_hit: registry.counter(&name("agg.polls_hit")),
            retry: cfg.retry.clone(),
            net_retransmits: registry.counter(&name("net.retransmits")),
            net_dups_suppressed: registry.counter(&name("net.dups_suppressed")),
            net_acks_sent: registry.counter(&name("net.acks_sent")),
            net_acks_received: registry.counter(&name("net.acks_received")),
            net_chan_stalls: registry.counter(&name("net.chan_stalls")),
            net_window_stalls: registry.counter(&name("net.window_stalls")),
            net_ooo_dropped: registry.counter(&name("net.ooo_dropped")),
            net_spin_spins: registry.counter(&name("net.spin_spins")),
            net_spin_parks: registry.counter(&name("net.spin_parks")),
            wire_integrity: cfg.wire_integrity,
            wire_epoch: AtomicU32::new(0),
            net_corrupt_dropped: registry.counter(&name("net.corrupt_dropped")),
            net_truncated: registry.counter(&name("net.truncated")),
            net_misrouted: registry.counter(&name("net.misrouted")),
            net_ack_corrupt_dropped: registry.counter(&name("net.ack_corrupt_dropped")),
            quarantine: Quarantine::bound(&registry, &p, cfg.quarantine_capacity),
            adaptive_flush: cfg.adaptive_flush,
            drain_batch: cfg.drain_batch_slots.max(1),
            packet_latency: registry.histogram(&name("net.packet_latency_ns")),
            replay: cfg.ha.checkpoint.then(crate::ha::ReplayLog::new),
            rpc: crate::rpc::PendingReplies::bound(&registry, &p, cfg.rpc.reply_table_cap),
            rpc_timeout: cfg.rpc.timeout,
            qos_bands: cfg.rpc.qos_bands,
            rpc_credits_stalled: registry.counter(&name("rpc.credits_stalled")),
            rpc_replies_sent: registry.counter(&name("rpc.replies_sent")),
            registry,
            tracer,
        }
    }

    /// Count offloaded messages toward quiescence tracking. Called at
    /// enqueue time by the PGAS API. The release fence pairs with the
    /// acquire fence in the quiescence check so heap effects are visible
    /// once the counters balance.
    pub fn note_offloaded(&self, n: u64) {
        fence(Ordering::Release);
        self.offloaded.add(n);
    }

    /// Count applied messages (network thread).
    pub fn note_applied(&self, n: u64) {
        fence(Ordering::Release);
        self.applied.add(n);
    }

    /// Inject one message from the host CPU (control paths, tests). The
    /// message lands in its destination's shard ring.
    pub fn host_send(&self, msg: Message) {
        self.queue.produce_one(msg.dest, &msg.encode());
        self.note_offloaded(1);
    }

    /// Inject a batch of messages from the host CPU with one slot
    /// reservation per full slot (bench harnesses, bulk control paths).
    /// Messages may mix destinations; each is routed to its
    /// destination's shard ring, preserving per-destination order.
    pub fn host_send_batch(&self, msgs: &[Message]) {
        if msgs.is_empty() {
            return;
        }
        let width = self.queue.config().lane_width;
        let lanes = self.queue.lanes();
        if lanes == 1 {
            let ring = self.queue.ring(0);
            let mut words = Vec::with_capacity(width * gravel_gq::MSG_ROWS);
            for chunk in msgs.chunks(width) {
                words.clear();
                for m in chunk {
                    words.extend_from_slice(&m.encode());
                }
                ring.produce_batch(&words, chunk.len());
            }
        } else {
            // Bucket per shard, flushing a full slot's worth at a time.
            let mut bufs: Vec<Vec<u64>> = (0..lanes)
                .map(|_| Vec::with_capacity(width * gravel_gq::MSG_ROWS))
                .collect();
            let mut counts = vec![0usize; lanes];
            for m in msgs {
                let s = self.queue.shard_of(m.dest);
                bufs[s].extend_from_slice(&m.encode());
                counts[s] += 1;
                if counts[s] == width {
                    // Producers drive the governor too: under a
                    // collapsed mask a dense burst saturates the ring
                    // long before the (possibly descheduled) lane-0
                    // consumer notices, and the producer is running by
                    // definition. Deciding *before* the produce
                    // matters — a full ring blocks the produce call,
                    // and a blocked producer can't expand the mask it
                    // is blocked on. Once per slot keeps this off the
                    // per-message path; the cadence gate bounds it.
                    if let Some(gov) = &self.governor {
                        gov.decide(&self.queue, Instant::now());
                    }
                    self.queue.ring(s).produce_batch(&bufs[s], counts[s]);
                    bufs[s].clear();
                    counts[s] = 0;
                }
            }
            for s in 0..lanes {
                if counts[s] > 0 {
                    self.queue.ring(s).produce_batch(&bufs[s], counts[s]);
                }
            }
        }
        self.note_offloaded(msgs.len() as u64);
    }

    /// Snapshot this node's statistics directly from the live handles.
    /// Equal to `NodeStats::from_snapshot(self.id, &self.registry.snapshot())`
    /// on a quiesced cluster (the migration-agreement test asserts it).
    pub fn stats(&self) -> NodeStats {
        let chan_stalls = self.net_chan_stalls.get();
        let window_stalls = self.net_window_stalls.get();
        NodeStats {
            node: self.id,
            offloaded: self.offloaded.get(),
            applied: self.applied.get(),
            local_direct: self.local_direct.get(),
            local_routed: self.local_routed.get(),
            remote_routed: self.remote_routed.get(),
            agg: self.agg.snapshot(),
            queue: self.queue.stats.snapshot(),
            agg_polls_empty: self.agg_polls_empty.get(),
            agg_polls_hit: self.agg_polls_hit.get(),
            net: NetStats {
                retransmits: self.net_retransmits.get(),
                dups_suppressed: self.net_dups_suppressed.get(),
                acks_sent: self.net_acks_sent.get(),
                acks_received: self.net_acks_received.get(),
                chan_stalls,
                window_stalls,
                backpressure_stalls: chan_stalls + window_stalls,
                ooo_dropped: self.net_ooo_dropped.get(),
                spin_spins: self.net_spin_spins.get(),
                spin_parks: self.net_spin_parks.get(),
                corrupt_dropped: self.net_corrupt_dropped.get(),
                truncated: self.net_truncated.get(),
                misrouted: self.net_misrouted.get(),
                ack_corrupt_dropped: self.net_ack_corrupt_dropped.get(),
                quarantined: self.quarantine.total(),
                quarantine_evicted: self.quarantine.evicted(),
            },
            rpc: crate::stats::RpcStats {
                issued: self.rpc.issued.get(),
                completed: self.rpc.completed.get(),
                timeouts: self.rpc.timeouts.get(),
                stale_rejected: self.rpc.stale_rejected.get(),
                orphan_replies: self.rpc.orphan_replies.get(),
                table_full: self.rpc.table_full.get(),
                credits_stalled: self.rpc_credits_stalled.get(),
                replies_sent: self.rpc_replies_sent.get(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_node(nodes: usize) -> NodeShared {
        let cfg = GravelConfig::small(nodes, 16);
        NodeShared::new(0, &cfg, Arc::new(AmRegistry::new()))
    }

    #[test]
    fn host_send_counts_offloaded() {
        let node = make_node(2);
        node.host_send(Message::inc(1, 3, 1));
        assert_eq!(node.offloaded.get(), 1);
        assert_eq!(node.queue.backlog(), 1);
    }

    #[test]
    fn stats_snapshot_reflects_counters() {
        let node = make_node(2);
        node.note_offloaded(5);
        node.note_applied(3);
        let s = node.stats();
        assert_eq!(s.offloaded, 5);
        assert_eq!(s.applied, 3);
        assert_eq!(s.node, 0);
    }

    #[test]
    fn counters_land_in_registry_under_node_prefix() {
        let node = make_node(2);
        node.host_send(Message::inc(1, 0, 1));
        node.net_retransmits.add(2);
        let snap = node.registry.snapshot();
        assert_eq!(snap.counter("node0.offloaded"), 1);
        assert_eq!(snap.counter("node0.net.retransmits"), 2);
        assert_eq!(snap.counter("node0.queue.messages_produced"), 1);
    }

    #[test]
    fn quiescence_counters_survive_telemetry_off() {
        let mut cfg = GravelConfig::small(2, 16);
        cfg.telemetry = gravel_telemetry::TelemetryConfig::Off;
        let node = NodeShared::new(0, &cfg, Arc::new(AmRegistry::new()));
        node.note_offloaded(4);
        node.local_direct.add(4);
        assert_eq!(node.offloaded.get(), 4, "vital counter still live");
        assert_eq!(node.local_direct.get(), 0, "observability counter dead");
    }
}
