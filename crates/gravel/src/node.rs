//! Per-node shared state.
//!
//! Everything the GPU kernels, the aggregator thread, and the network
//! thread of one node share: the symmetric heap, the producer/consumer
//! queue, the active-message registry, and the counters that let the
//! runtime detect cluster-wide quiescence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gravel_gq::{GravelQueue, Message};
use gravel_net::RetryConfig;
use gravel_pgas::{AmRegistry, SymmetricHeap};
use parking_lot::Mutex;

use crate::config::GravelConfig;
use crate::stats::{NetStats, NodeStats};

/// Shared state of one node.
pub struct NodeShared {
    /// This node's id.
    pub id: u32,
    /// Cluster size.
    pub nodes: usize,
    /// This node's slice of the symmetric heap.
    pub heap: SymmetricHeap,
    /// GPU → aggregator producer/consumer queue.
    pub queue: GravelQueue,
    /// Active-message handlers (identical on every node).
    pub ams: Arc<AmRegistry>,
    /// Messages offloaded into the queue by this node's GPU (and host).
    pub offloaded: AtomicU64,
    /// Messages applied by this node's network thread.
    pub applied: AtomicU64,
    /// Local operations short-circuited by the GPU (direct PUT stores).
    pub local_direct: AtomicU64,
    /// Messages routed with a local destination (serialized atomics).
    pub local_routed: AtomicU64,
    /// Messages routed to remote destinations.
    pub remote_routed: AtomicU64,
    /// Aggregation statistics, one slot per aggregator thread.
    pub agg_stats: Mutex<Vec<gravel_pgas::AggStats>>,
    /// Aggregator idle/busy poll counts (§8.1's 65 %-polling metric).
    pub agg_polls_empty: AtomicU64,
    /// Aggregator polls that found work.
    pub agg_polls_hit: AtomicU64,
    /// Sender-side delivery tuning (copied from the config so worker
    /// threads need no back-reference to it).
    pub retry: RetryConfig,
    /// Packets retransmitted by this node's sender flows.
    pub net_retransmits: AtomicU64,
    /// Duplicate packets suppressed by this node's receiver.
    pub net_dups_suppressed: AtomicU64,
    /// Acks this node's network thread sent.
    pub net_acks_sent: AtomicU64,
    /// Acks this node's aggregator lanes received.
    pub net_acks_received: AtomicU64,
    /// Times a send stalled on a full channel or a full delivery window.
    pub net_backpressure_stalls: AtomicU64,
    /// Out-of-order packets discarded because the reorder buffer was
    /// full (recovered later by retransmission).
    pub net_ooo_dropped: AtomicU64,
}

impl NodeShared {
    /// Build node `id`'s state. Network senders are owned by the
    /// aggregator thread (see [`crate::aggregator::run`]) so that dropping
    /// them at shutdown disconnects the network threads.
    pub fn new(id: u32, cfg: &GravelConfig, ams: Arc<AmRegistry>) -> Self {
        NodeShared {
            id,
            nodes: cfg.nodes,
            heap: SymmetricHeap::new(cfg.heap_len),
            queue: GravelQueue::new(cfg.queue),
            ams,
            offloaded: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            local_direct: AtomicU64::new(0),
            local_routed: AtomicU64::new(0),
            remote_routed: AtomicU64::new(0),
            agg_stats: Mutex::new(vec![
                gravel_pgas::AggStats::default();
                cfg.aggregator_threads
            ]),
            agg_polls_empty: AtomicU64::new(0),
            agg_polls_hit: AtomicU64::new(0),
            retry: cfg.retry.clone(),
            net_retransmits: AtomicU64::new(0),
            net_dups_suppressed: AtomicU64::new(0),
            net_acks_sent: AtomicU64::new(0),
            net_acks_received: AtomicU64::new(0),
            net_backpressure_stalls: AtomicU64::new(0),
            net_ooo_dropped: AtomicU64::new(0),
        }
    }

    /// Count one offloaded message toward quiescence tracking. Called at
    /// enqueue time by the PGAS API.
    pub fn note_offloaded(&self, n: u64) {
        self.offloaded.fetch_add(n, Ordering::Release);
    }

    /// Count applied messages (network thread).
    pub fn note_applied(&self, n: u64) {
        self.applied.fetch_add(n, Ordering::Release);
    }

    /// Inject one message from the host CPU (control paths, tests).
    pub fn host_send(&self, msg: Message) {
        let words = msg.encode();
        self.queue.produce_batch(&words, 1);
        self.note_offloaded(1);
    }

    /// Snapshot this node's statistics.
    pub fn stats(&self) -> NodeStats {
        let agg = self.agg_stats.lock().iter().fold(
            gravel_pgas::AggStats::default(),
            |mut acc, s| {
                acc.packets += s.packets;
                acc.bytes += s.bytes;
                acc.messages += s.messages;
                acc.full_flushes += s.full_flushes;
                acc.timeout_flushes += s.timeout_flushes;
                acc
            },
        );
        NodeStats {
            node: self.id,
            offloaded: self.offloaded.load(Ordering::Acquire),
            applied: self.applied.load(Ordering::Acquire),
            local_direct: self.local_direct.load(Ordering::Acquire),
            local_routed: self.local_routed.load(Ordering::Acquire),
            remote_routed: self.remote_routed.load(Ordering::Acquire),
            agg,
            queue: self.queue.stats.snapshot(),
            agg_polls_empty: self.agg_polls_empty.load(Ordering::Acquire),
            agg_polls_hit: self.agg_polls_hit.load(Ordering::Acquire),
            net: NetStats {
                retransmits: self.net_retransmits.load(Ordering::Acquire),
                dups_suppressed: self.net_dups_suppressed.load(Ordering::Acquire),
                acks_sent: self.net_acks_sent.load(Ordering::Acquire),
                acks_received: self.net_acks_received.load(Ordering::Acquire),
                backpressure_stalls: self.net_backpressure_stalls.load(Ordering::Acquire),
                ooo_dropped: self.net_ooo_dropped.load(Ordering::Acquire),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_node(nodes: usize) -> NodeShared {
        let cfg = GravelConfig::small(nodes, 16);
        NodeShared::new(0, &cfg, Arc::new(AmRegistry::new()))
    }

    #[test]
    fn host_send_counts_offloaded() {
        let node = make_node(2);
        node.host_send(Message::inc(1, 3, 1));
        assert_eq!(node.offloaded.load(Ordering::Relaxed), 1);
        assert_eq!(node.queue.backlog(), 1);
    }

    #[test]
    fn stats_snapshot_reflects_counters() {
        let node = make_node(2);
        node.note_offloaded(5);
        node.note_applied(3);
        let s = node.stats();
        assert_eq!(s.offloaded, 5);
        assert_eq!(s.applied, 3);
        assert_eq!(s.node, 0);
    }
}
