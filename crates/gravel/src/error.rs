//! Runtime failure reporting.
//!
//! The live runtime's worker threads (aggregators, network threads) can
//! die — a panic in an active-message handler, a delivery flow whose
//! retry budget is exhausted under injected faults — and before this
//! module existed such a death turned `shutdown()` into a hang (join on
//! a thread that already unwound, quiesce on counters that will never
//! converge). Failures are now recorded in a shared [`ErrorSlot`] that
//! every worker loop polls, so the whole cluster winds down promptly
//! and [`GravelRuntime::shutdown`](crate::GravelRuntime::shutdown)
//! surfaces the *first* failure as a [`RuntimeError`] instead of
//! hanging or panicking on a join.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Why the runtime failed.
#[derive(Clone, Debug)]
pub enum RuntimeError {
    /// A worker thread panicked; the panic was caught at the thread
    /// boundary and converted into this error.
    WorkerPanic {
        /// Thread name (`gravel-agg-<node>-<slot>` or `gravel-net-<node>`).
        thread: String,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A sender flow retransmitted `retries` times without any ack
    /// progress and gave up (see `RetryConfig::max_retries`).
    RetryExhausted {
        /// Sending node.
        src: u32,
        /// Destination node of the dead flow.
        dest: u32,
        /// Sending aggregator lane.
        lane: u32,
        /// Oldest unacknowledged sequence number.
        seq: u64,
        /// Retry rounds spent.
        retries: u32,
    },
    /// Quiescence did not converge within the deadline. Carries a
    /// per-node dump of the counters that explain *where* messages are
    /// stuck.
    QuiesceTimeout {
        /// How long the runtime waited.
        waited: Duration,
        /// Per-node queue/counter diagnostics.
        diagnostics: String,
    },
    /// Restoring a node from an epoch checkpoint failed (no checkpoint
    /// taken, checkpointing disabled, or the node id is out of range).
    RecoveryFailed {
        /// Node that could not be recovered.
        node: u32,
        /// Why.
        reason: String,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::WorkerPanic { thread, message } => {
                write!(f, "worker thread `{thread}` panicked: {message}")
            }
            RuntimeError::RetryExhausted { src, dest, lane, seq, retries } => write!(
                f,
                "delivery flow {src}/{lane} -> {dest} dead: seq {seq} unacked after {retries} retries"
            ),
            RuntimeError::QuiesceTimeout { waited, diagnostics } => {
                write!(f, "quiescence not reached after {waited:?}\n{diagnostics}")
            }
            RuntimeError::RecoveryFailed { node, reason } => {
                write!(f, "recovery of node {node} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// First-failure slot shared by all worker threads of one runtime.
///
/// The flag is checked on worker hot paths (it is a single relaxed
/// load); the mutex is only touched when recording or collecting an
/// error.
#[derive(Default)]
pub struct ErrorSlot {
    failed: AtomicBool,
    err: Mutex<Option<RuntimeError>>,
}

impl ErrorSlot {
    /// Record an error. The first recorded error wins; later ones are
    /// dropped (they are almost always secondary effects of the first).
    pub fn set(&self, e: RuntimeError) {
        let mut slot = match self.err.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if slot.is_none() {
            *slot = Some(e);
        }
        drop(slot);
        self.failed.store(true, Ordering::Release);
    }

    /// Has any error been recorded? Cheap enough for per-iteration use.
    pub fn is_set(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Take the recorded error, leaving the flag set.
    pub fn take(&self) -> Option<RuntimeError> {
        match self.err.lock() {
            Ok(mut g) => g.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        }
    }
}

/// Render a caught panic payload as a message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_error_wins() {
        let slot = ErrorSlot::default();
        assert!(!slot.is_set());
        slot.set(RuntimeError::WorkerPanic { thread: "a".into(), message: "first".into() });
        slot.set(RuntimeError::WorkerPanic { thread: "b".into(), message: "second".into() });
        assert!(slot.is_set());
        match slot.take() {
            Some(RuntimeError::WorkerPanic { message, .. }) => assert_eq!(message, "first"),
            other => panic!("{other:?}"),
        }
        assert!(slot.is_set(), "flag stays set after take");
        assert!(slot.take().is_none());
    }

    #[test]
    fn errors_render_usefully() {
        let e = RuntimeError::RetryExhausted { src: 0, dest: 3, lane: 1, seq: 42, retries: 30 };
        let s = e.to_string();
        assert!(s.contains("0/1 -> 3") && s.contains("42") && s.contains("30"), "{s}");
    }

    #[test]
    fn panic_messages_extracted() {
        let p = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "boom 7");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(classified())).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }

    fn classified() -> u32 {
        13
    }
}
