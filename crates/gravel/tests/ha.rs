//! Fault-tolerance integration tests: supervised restart exactness,
//! escalation, failure detection, and the quiesce stuck-pipeline
//! warning (DESIGN.md §11).

use std::sync::Arc;
use std::time::{Duration, Instant};

use gravel_core::{
    ChaosPlan, GravelConfig, GravelRuntime, HeartbeatConfig, PeerStatus, ProcessFault,
    RuntimeError,
};
use gravel_simt::LaneVec;
use proptest::prelude::*;

fn inc_all(rt: &GravelRuntime, src: usize, dest: u32, wgs: usize) {
    rt.dispatch(src, wgs, move |ctx| {
        let n = ctx.wg.wg_size();
        let dests = LaneVec::splat(n, dest);
        let addrs = LaneVec::splat(n, 0u64);
        let vals = LaneVec::splat(n, 1u64);
        ctx.shmem_inc(&dests, &addrs, &vals);
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A panic injected at an arbitrary aggregator drain step never
    /// loses or duplicates a message: the supervised restart resumes
    /// the lane's batch cursor and go-back-N flows exactly.
    #[test]
    fn aggregator_panic_at_random_step_is_exactly_once(at_step in 1u64..200) {
        let mut cfg = GravelConfig::small(2, 8);
        cfg.chaos = Some(Arc::new(ChaosPlan::new(vec![ProcessFault::PanicAggregator {
            node: 0,
            slot: 0,
            at_step,
        }])));
        let rt = GravelRuntime::new(cfg);
        inc_all(&rt, 0, 1, 2); // 128 increments node0 → node1
        rt.quiesce();
        prop_assert_eq!(rt.heap(1).load(0), 128);
        let stats = rt.shutdown().expect("restart absorbs the panic");
        prop_assert_eq!(stats.total_offloaded(), 128);
        prop_assert_eq!(stats.total_applied(), 128);
        // at_step beyond the traffic simply never fires.
        prop_assert!(stats.ha.restarts <= 1);
    }

    /// Same property for the receiver: a panic at an arbitrary apply
    /// step resumes mid-packet via the per-flow cursor and go-back-N
    /// retransmission, with every message applied exactly once.
    #[test]
    fn netthread_panic_at_random_step_is_exactly_once(at_step in 1u64..200) {
        let mut cfg = GravelConfig::small(2, 8);
        cfg.chaos = Some(Arc::new(ChaosPlan::new(vec![ProcessFault::PanicNet {
            node: 1,
            at_step,
        }])));
        let rt = GravelRuntime::new(cfg);
        inc_all(&rt, 0, 1, 2);
        rt.quiesce();
        prop_assert_eq!(rt.heap(1).load(0), 128);
        let stats = rt.shutdown().expect("restart absorbs the panic");
        prop_assert_eq!(stats.total_applied(), 128);
    }
}

#[test]
fn chaos_restarts_are_visible_in_telemetry() {
    let mut cfg = GravelConfig::small(2, 8);
    cfg.chaos = Some(Arc::new(ChaosPlan::new(vec![ProcessFault::PanicNet {
        node: 1,
        at_step: 3,
    }])));
    let rt = GravelRuntime::new(cfg);
    inc_all(&rt, 0, 1, 1);
    rt.quiesce();
    assert_eq!(rt.heap(1).load(0), 64);
    let snap = rt.telemetry_snapshot();
    assert_eq!(snap.counter("ha.restarts"), 1);
    assert_eq!(snap.counter("node1.ha.restarts"), 1);
    let recovery = snap.histogram("ha.recovery_ns").expect("recovery latency recorded");
    assert_eq!(recovery.count, 1);
    let stats = rt.shutdown().expect("clean run after restart");
    assert_eq!(stats.ha.restarts, 1);
}

#[test]
fn simultaneous_worker_deaths_error_without_hanging() {
    // Both pipeline halves die with restarts disabled: shutdown must
    // join everything and report the first failure, not hang.
    let mut cfg = GravelConfig::small(2, 8);
    cfg.ha.supervisor.max_restarts = 0;
    cfg.chaos = Some(Arc::new(ChaosPlan::new(vec![
        ProcessFault::PanicAggregator { node: 0, slot: 0, at_step: 1 },
        ProcessFault::PanicNet { node: 1, at_step: 1 },
    ])));
    // Short retry budget: with node 1's receiver dead, node 0's flows
    // can only drain by giving up.
    cfg.retry.backoff = Duration::from_millis(1);
    cfg.retry.backoff_max = Duration::from_millis(5);
    cfg.retry.max_retries = 5;
    cfg.quiesce_deadline = Some(Duration::from_secs(5));
    let rt = GravelRuntime::new(cfg);
    inc_all(&rt, 0, 1, 1);
    let start = Instant::now();
    let err = rt.shutdown().expect_err("two dead workers cannot be a clean run");
    assert!(start.elapsed() < Duration::from_secs(30), "shutdown hung");
    match err {
        RuntimeError::WorkerPanic { message, .. } => {
            assert!(message.contains("chaos:"), "{message}");
        }
        // Depending on scheduling the retry path may lose the race and
        // report first; both prove the cluster wound down.
        RuntimeError::RetryExhausted { .. } | RuntimeError::QuiesceTimeout { .. } => {}
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn restart_budget_exhaustion_escalates_worker_panic() {
    // A deterministically poisoned AM handler kills node 1's network
    // thread on every delivery: the supervisor restarts it
    // `max_restarts` times, then escalates the panic.
    let mut cfg = GravelConfig::small(2, 8);
    cfg.ha.supervisor.max_restarts = 2;
    cfg.retry.backoff = Duration::from_millis(2);
    cfg.retry.backoff_max = Duration::from_millis(10);
    let rt = GravelRuntime::with_handlers(cfg, |reg| {
        reg.register(Box::new(|_h, _a, _v| panic!("handler always explodes")));
    });
    rt.dispatch(0, 1, |ctx| {
        let n = ctx.wg.wg_size();
        let dests = LaneVec::splat(n, 1u32);
        let addrs = LaneVec::splat(n, 0u64);
        let vals = LaneVec::splat(n, 1u64);
        ctx.shmem_am(0, &dests, &addrs, &vals);
    });
    match rt.shutdown() {
        Err(RuntimeError::WorkerPanic { thread, message }) => {
            assert!(thread.starts_with("gravel-net-1"), "{thread}");
            assert!(message.contains("handler always explodes"), "{message}");
        }
        other => panic!("expected escalated WorkerPanic, got {other:?}"),
    }
}

#[test]
fn stuck_quiesce_warns_with_diagnostics_then_converges() {
    let mut cfg = GravelConfig::small(2, 8);
    cfg.quiesce_warn_interval = Duration::from_millis(15);
    cfg.quiesce_deadline = Some(Duration::from_secs(10));
    let rt = GravelRuntime::new(cfg);
    // One message counted as offloaded but applied only ~60 ms later:
    // quiesce() must spin, warn at least once, then return normally.
    rt.node(0).note_offloaded(1);
    let node = rt.node(0).clone();
    let unstick = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(60));
        node.note_applied(1);
    });
    rt.quiesce();
    unstick.join().unwrap();
    let snap = rt.telemetry_snapshot();
    assert!(snap.counter("ha.quiesce_warnings") >= 1, "no warning emitted");
    let stats = rt.shutdown().expect("converged run is clean");
    assert!(stats.ha.quiesce_warnings >= 1);
}

#[test]
fn heartbeats_keep_healthy_cluster_alive() {
    let mut cfg = GravelConfig::small(3, 8);
    cfg.ha.heartbeat = Some(HeartbeatConfig::default());
    let rt = GravelRuntime::new(cfg);
    // Let a few beat intervals elapse, with real traffic in flight.
    inc_all(&rt, 0, 1, 1);
    rt.quiesce();
    std::thread::sleep(Duration::from_millis(60));
    let now = Instant::now();
    for observer in 0..3 {
        let det = rt.detector(observer).expect("heartbeat enabled");
        for peer in 0..3u32 {
            if peer as usize != observer {
                assert_eq!(det.status(peer, now), PeerStatus::Alive, "{observer} -> {peer}");
            }
        }
    }
    let snap = rt.telemetry_snapshot();
    for id in 0..3 {
        assert!(snap.counter(&format!("node{id}.ha.beats_sent")) > 0, "node {id} never beat");
    }
    let stats = rt.shutdown().expect("clean");
    assert_eq!(stats.ha.deaths_declared, 0);
}

#[test]
fn blackholed_node_is_declared_dead_by_its_peers() {
    let mut cfg = GravelConfig::small(2, 8);
    cfg.ha.heartbeat = Some(HeartbeatConfig::default());
    // Node 0 never gets a beat out: its peer must eventually latch it
    // dead while node 0 still sees node 1 alive.
    cfg.chaos = Some(Arc::new(ChaosPlan::new(vec![ProcessFault::HeartbeatBlackhole {
        node: 0,
        from_beat: 0,
        beats: u64::MAX,
    }])));
    let rt = GravelRuntime::new(cfg);
    let observer = rt.detector(1).expect("heartbeat enabled").clone();
    let deadline = Instant::now() + Duration::from_secs(10);
    while observer.dead_peers().is_empty() {
        assert!(Instant::now() < deadline, "death never declared");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(observer.dead_peers(), vec![0]);
    let snap = rt.telemetry_snapshot();
    assert!(snap.counter("ha.deaths_declared") >= 1);
    // Suspicion gauges export milli-phi; the dead peer's must be high.
    assert!(snap.gauge("node1.ha.phi.node0") >= 8000, "phi gauge too low");
    // A blackholed heartbeat plane harms liveness *detection* only, not
    // delivery: data still flows and shutdown is clean.
    inc_all(&rt, 0, 1, 1);
    rt.quiesce();
    assert_eq!(rt.heap(1).load(0), 64);
    rt.shutdown().expect("data plane unaffected");
}
