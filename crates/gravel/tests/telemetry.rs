//! Integration tests of the telemetry subsystem against the live
//! runtime: the stats migration (typed views vs. registry snapshots),
//! span tracing through all three pipeline stages, the ack ledger, and
//! zero-counting under `TelemetryConfig::Off`.

use std::time::Duration;

use gravel_core::{GravelConfig, GravelRuntime, NodeStats, TelemetryConfig};
use gravel_simt::LaneVec;

/// One all-to-all scatter superstep: every node's work-items increment
/// slot 0 of `lane % nodes`.
fn scatter(rt: &GravelRuntime, wgs: usize) {
    rt.dispatch_all(wgs, |ctx| {
        let n = ctx.wg.wg_size();
        let k = ctx.nodes() as u32;
        let dests = LaneVec::from_fn(n, |l| (l as u32) % k);
        let addrs = LaneVec::splat(n, 0u64);
        let vals = LaneVec::splat(n, 1u64);
        ctx.shmem_inc(&dests, &addrs, &vals);
    });
    rt.quiesce();
}

#[test]
fn node_stats_agree_with_registry_snapshot() {
    let rt = GravelRuntime::new(GravelConfig::small(3, 8));
    scatter(&rt, 2);
    // Quiesced: the typed view over live handles and the view
    // reconstructed from a registry snapshot must be identical, per
    // node, field for field. Quiescence stops message flow but not the
    // background threads, whose idle-poll/park counters keep ticking —
    // so the two views are read back-to-back and retried a few times if
    // an idle counter advanced in the window. A genuine mapping bug
    // diverges on every attempt and still fails.
    for id in 0..rt.nodes() {
        let (mut live_dbg, mut snap_dbg) = (String::new(), String::new());
        let mut live_offloaded = 0;
        for _ in 0..64 {
            let snap = rt.telemetry_snapshot();
            let live = rt.node(id).stats();
            live_offloaded = live.offloaded;
            let from_snap = NodeStats::from_snapshot(id as u32, &snap);
            live_dbg = format!("{live:?}");
            snap_dbg = format!("{from_snap:?}");
            if live_dbg == snap_dbg {
                break;
            }
        }
        assert_eq!(
            live_dbg, snap_dbg,
            "node {id}: handle view and snapshot view diverge on every attempt"
        );
        assert!(live_offloaded > 0, "node {id} did work");
    }
    rt.shutdown().expect("clean shutdown");
}

#[test]
fn trace_export_covers_all_three_stages() {
    let mut cfg = GravelConfig::small(2, 8);
    cfg.telemetry = TelemetryConfig::CountersAndTrace;
    let rt = GravelRuntime::new(cfg);
    scatter(&rt, 2);
    let json = rt.export_chrome_trace().expect("tracing is enabled");
    // Offload (GPU→queue), aggregate (drain/flush), apply (netthread):
    // one span name from each stage must appear in the export.
    for span in ["gq.offload", "agg.", "net.apply"] {
        assert!(json.contains(span), "no {span} span in trace:\n{json}");
    }
    assert!(json.contains("\"traceEvents\""), "chrome trace envelope");
    rt.shutdown().expect("clean shutdown");
}

#[test]
fn tracing_disabled_by_default() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 8));
    scatter(&rt, 1);
    assert!(rt.export_chrome_trace().is_none(), "default config records no spans");
    rt.shutdown().expect("clean shutdown");
}

#[test]
fn packet_latency_histogram_fills() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 8));
    scatter(&rt, 2);
    let snap = rt.telemetry_snapshot();
    let mut applied_packets = 0u64;
    for id in 0..rt.nodes() {
        let h = snap
            .histogram(&format!("node{id}.net.packet_latency_ns"))
            .expect("histogram registered");
        applied_packets += h.count;
        if h.count > 0 {
            assert!(h.max > 0, "a packet cannot apply in 0 ns");
            assert!(h.quantile(0.5) <= h.max);
        }
    }
    assert!(applied_packets > 0, "some packets were applied with latency recorded");
    rt.shutdown().expect("clean shutdown");
}

/// Satellite: the ack ledger closes on a quiesced reliable run. Every
/// ack the receivers sent is either received by an aggregator lane,
/// still sitting in a lane mailbox, or was dropped on a full mailbox —
/// the counters and the transport agree exactly, which is precisely the
/// drift the shared-counter migration eliminates.
#[test]
fn ack_ledger_reconciles_on_quiesced_run() {
    let rt = GravelRuntime::new(GravelConfig::small(3, 8));
    scatter(&rt, 4);
    // Quiescence covers data packets, not the trailing acks: an ack can
    // still be between `send_ack` and the sender's counter increment.
    // Retry briefly until the ledger closes.
    let mut last = (0, 0);
    for _ in 0..200 {
        let sent: u64 = (0..rt.nodes()).map(|i| rt.node(i).net_acks_sent.get()).sum();
        let received: u64 =
            (0..rt.nodes()).map(|i| rt.node(i).net_acks_received.get()).sum();
        let mailboxed: u64 =
            (0..rt.nodes()).map(|i| rt.transport().ack_depths(i as u32) as u64).sum();
        let dropped = rt.transport().fault_stats().dropped_acks;
        last = (sent, received + mailboxed + dropped);
        if sent > 0 && last.0 == last.1 {
            rt.shutdown().expect("clean shutdown");
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("ack ledger never closed: sent={} accounted={}", last.0, last.1);
}

#[test]
fn telemetry_off_still_delivers_and_quiesces() {
    let mut cfg = GravelConfig::small(2, 8);
    cfg.telemetry = TelemetryConfig::Off;
    let rt = GravelRuntime::new(cfg);
    scatter(&rt, 2);
    // Work completed (vital counters drove quiescence)…
    let total: u64 = (0..2).map(|i| rt.heap(i).load(0)).sum();
    assert_eq!(total, 2 * 2 * 64, "all increments landed");
    // …but observability counters stayed dead.
    let stats = rt.stats();
    assert!(stats.total_offloaded() > 0, "vital");
    assert_eq!(stats.nodes[0].remote_routed, 0, "observability counter off");
    assert_eq!(stats.nodes[0].agg.packets, 0, "agg counters off");
    rt.shutdown().expect("clean shutdown");
}

#[test]
fn sampler_collects_series_from_runtime_registry() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 8));
    let sampler = gravel_core::Sampler::start(
        rt.registry().clone(),
        Duration::from_millis(5),
    );
    scatter(&rt, 2);
    let series = sampler.stop();
    assert!(series.samples.len() >= 2, "first + final sample at minimum");
    let first = &series.samples[0];
    let last = series.samples.last().unwrap();
    assert!(last.t_ms >= first.t_ms);
    let total_off = |s: &gravel_core::telemetry::Sample| {
        (0..2).map(|i| s.snapshot.counter(&format!("node{i}.offloaded"))).sum::<u64>()
    };
    assert!(total_off(last) >= total_off(first), "counters are monotonic");
    assert_eq!(total_off(last), 2 * 2 * 64);
    rt.shutdown().expect("clean shutdown");
}
