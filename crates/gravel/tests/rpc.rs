//! Request-reply integration tests: GET round trips, value-returning
//! AM calls, deterministic timeouts, the post-restart generation guard,
//! the QoS-band ablation, and the chaos acceptance run (DESIGN.md §15).

use std::sync::Arc;
use std::time::Duration;

use gravel_core::{ChaosPlan, GravelConfig, GravelRuntime, ProcessFault};
use gravel_gq::{ReplySink, ReplyState, RpcFailure};
use gravel_net::{FaultConfig, TransportKind};
use gravel_simt::LaneVec;

/// The known heap pattern GETs are verified against, bit-exact.
fn expected(node: usize, addr: u64) -> u64 {
    0x5EED_0000_0000_0000 | ((node as u64) << 32) | addr
}

/// Store `expected` into addresses `[base, base+n)` of every node.
fn seed_heaps(rt: &GravelRuntime, base: u64, n: u64) {
    for node in 0..rt.nodes() {
        for k in 0..n {
            rt.heap(node).store(base + k, expected(node, base + k));
        }
    }
}

#[test]
fn host_get_reads_remote_heap_bit_exact() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 32));
    seed_heaps(&rt, 0, 8);
    for addr in 0..8 {
        assert_eq!(rt.host_get(0, 1, addr), Ok(expected(1, addr)));
    }
    // Loopback GETs take the same full pipeline.
    assert_eq!(rt.host_get(0, 0, 3), Ok(expected(0, 3)));
    let node = rt.node(0).clone();
    assert_eq!(node.rpc.len(), 0, "pending table leaked entries");
    assert_eq!(node.rpc.issued.get(), 9);
    assert_eq!(node.rpc.completed.get(), 9);
    assert_eq!(node.rpc.timeouts.get(), 0);
    rt.shutdown().expect("clean run");
}

#[test]
fn kernel_gets_complete_for_the_whole_work_group() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 128));
    seed_heaps(&rt, 0, 64);
    rt.dispatch(0, 1, |ctx| {
        let n = ctx.wg.wg_size();
        let dests = LaneVec::splat(n, 1u32);
        let addrs = LaneVec::from_fn(n, |lane| lane as u64);
        let sink = ctx.shmem_get(&dests, &addrs);
        assert!(sink.wait_all(Duration::from_secs(10)), "GETs never completed");
        for lane in 0..n {
            assert_eq!(sink.get(lane), ReplyState::Ok(expected(1, lane as u64)));
        }
    });
    rt.quiesce();
    assert_eq!(rt.node(0).rpc.len(), 0);
    rt.shutdown().expect("clean run");
}

#[test]
fn am_call_returns_handler_value() {
    let cfg = GravelConfig::small(2, 16);
    let rt = GravelRuntime::with_handlers(cfg, |reg| {
        reg.register_returning(Box::new(|heap, arg| heap.load(0).wrapping_add(arg * 3)));
    });
    rt.heap(1).store(0, 1000);
    assert_eq!(rt.host_am_call(0, 1, 0, 14), Ok(1042));
    assert_eq!(rt.node(0).rpc.completed.get(), 1);
    rt.shutdown().expect("clean run");
}

#[test]
fn semantically_invalid_get_times_out_and_is_quarantined() {
    let mut cfg = GravelConfig::small(2, 8);
    cfg.rpc.timeout = Duration::from_millis(150);
    let rt = GravelRuntime::new(cfg);
    // Address beyond node 1's heap: the server quarantines the request
    // (never replies), so the requester gets a deterministic timeout.
    assert_eq!(rt.host_get(0, 1, 9999), Err(RpcFailure::TimedOut));
    let node0 = rt.node(0).clone();
    assert_eq!(node0.rpc.timeouts.get(), 1);
    assert_eq!(node0.rpc.len(), 0, "timed-out entry must be evicted");
    let poison = rt.drain_quarantine(1);
    assert_eq!(poison.len(), 1, "server must quarantine the bad GET");
    assert_eq!(poison[0].src, 0);
    rt.quiesce();
    rt.shutdown().expect("a poison message is not a failed run");
}

#[test]
fn generation_guard_rejects_replies_from_before_a_restart() {
    let mut cfg = GravelConfig::small(2, 8);
    cfg.ha.checkpoint = true;
    let rt = GravelRuntime::new(cfg);
    rt.cut_epoch();
    let node = rt.node(0).clone();
    let sink = Arc::new(ReplySink::new(1));
    let token = node
        .rpc
        .register(sink.clone(), 0, std::time::Instant::now() + Duration::from_secs(60))
        .expect("empty table accepts");
    rt.recover_node(0).expect("recovery succeeds");
    // The waiter was failed, not left hanging.
    assert_eq!(sink.get(0), ReplyState::Failed(RpcFailure::Restarted));
    assert_eq!(node.rpc.len(), 0);
    // A reply carrying the pre-restart token is rejected, not matched.
    assert!(!node.rpc.complete(token, 7));
    assert_eq!(node.rpc.stale_rejected.get(), 1);
    // Post-restart requests work normally under the new generation.
    rt.heap(1).store(2, 77);
    assert_eq!(rt.host_get(0, 1, 2), Ok(77));
    rt.shutdown().expect("clean run after recovery");
}

/// Run a mixed PUT+GET workload and return each GET's outcome along
/// with its expected value.
fn mixed_workload(rt: &GravelRuntime, gets_per_node: usize) -> Vec<(u64, Result<u64, RpcFailure>)> {
    let nodes = rt.nodes();
    std::thread::scope(|s| {
        let getters: Vec<_> = (0..nodes)
            .map(|src| {
                s.spawn(move || {
                    let mut out = Vec::with_capacity(gets_per_node);
                    for i in 0..gets_per_node {
                        let dest = ((src + 1 + i) % nodes) as u32;
                        let addr = 16 + (i % 8) as u64;
                        out.push((
                            expected(dest as usize, addr),
                            rt.host_get(src, dest, addr),
                        ));
                    }
                    out
                })
            })
            .collect();
        // Bulk PUT storm racing the GETs: every node increments word 0
        // of its right neighbour.
        for src in 0..nodes {
            let dest = ((src + 1) % nodes) as u32;
            rt.dispatch(src, 2, move |ctx| {
                let n = ctx.wg.wg_size();
                let dests = LaneVec::splat(n, dest);
                let addrs = LaneVec::splat(n, 0u64);
                let vals = LaneVec::splat(n, 1u64);
                ctx.shmem_inc(&dests, &addrs, &vals);
            });
        }
        getters.into_iter().flat_map(|g| g.join().unwrap()).collect()
    })
}

/// The §15 chaos acceptance: 4 nodes, seeded drops + duplication +
/// reordering + bit corruption on every link, plus an aggregator panic
/// and a network-thread panic mid-run. Every GET must end bit-exact or
/// as a deterministic timeout, the pending tables must be empty
/// afterwards, the rpc ledger must balance, and the racing bulk PUT
/// traffic must still be exactly-once.
#[test]
fn chaos_gets_are_bit_exact_or_deterministic_timeouts() {
    let mut cfg = GravelConfig::small(4, 32);
    cfg.transport = TransportKind::Unreliable(FaultConfig {
        drop: 0.03,
        duplicate: 0.02,
        reorder: 0.05,
        corrupt: 0.01,
        ..FaultConfig::quiet(0xC0FFEE)
    });
    cfg.chaos = Some(Arc::new(ChaosPlan::new(vec![
        ProcessFault::PanicAggregator { node: 1, slot: 0, at_step: 23 },
        ProcessFault::PanicNet { node: 2, at_step: 37 },
    ])));
    cfg.rpc.timeout = Duration::from_secs(2);
    let rt = GravelRuntime::new(cfg);
    seed_heaps(&rt, 16, 8);

    const GETS_PER_NODE: usize = 16;
    let results = mixed_workload(&rt, GETS_PER_NODE);

    assert_eq!(results.len(), 4 * GETS_PER_NODE);
    let mut ok = 0u64;
    let mut timed_out = 0u64;
    for (want, got) in results {
        match got {
            Ok(v) => {
                assert_eq!(v, want, "reply delivered a wrong value");
                ok += 1;
            }
            Err(RpcFailure::TimedOut) => timed_out += 1,
            Err(other) => panic!("non-deterministic failure {other:?}"),
        }
    }
    assert_eq!(ok + timed_out, (4 * GETS_PER_NODE) as u64);
    // Under these fault rates the overwhelming majority must land.
    assert!(ok > timed_out, "only {ok} of {} GETs completed", 4 * GETS_PER_NODE);

    rt.quiesce();
    // Exactly-once bulk delivery survived the same faults: 2 WGs of
    // wg_size increments from each left neighbour.
    let per_node = 2 * 64;
    for node in 0..4 {
        assert_eq!(rt.heap(node).load(0), per_node, "node {node} inc total");
    }
    for id in 0..4 {
        let node = rt.node(id).clone();
        assert_eq!(node.rpc.len(), 0, "node {id} pending table leaked");
        assert_eq!(
            node.rpc.issued.get(),
            node.rpc.completed.get() + node.rpc.timeouts.get(),
            "node {id} rpc ledger out of balance"
        );
    }
    rt.shutdown().expect("restarts absorb the injected panics");
}

/// The QoS ablation: with bands disabled every request-reply frame
/// rides FrameKind::Data through a single class queue, and the
/// workload's *results* are identical — bands change scheduling, never
/// outcomes.
#[test]
fn qos_bands_ablation_changes_scheduling_not_results() {
    for qos in [true, false] {
        let mut cfg = GravelConfig::small(3, 32);
        cfg.rpc.qos_bands = qos;
        let rt = GravelRuntime::new(cfg);
        seed_heaps(&rt, 16, 8);
        let results = mixed_workload(&rt, 8);
        for (want, got) in results {
            assert_eq!(got, Ok(want), "qos_bands={qos}");
        }
        rt.quiesce();
        for node in 0..3 {
            assert_eq!(rt.heap(node).load(0), 2 * 64, "qos_bands={qos}");
            assert_eq!(rt.node(node).rpc.len(), 0);
        }
        rt.shutdown().expect("clean run");
    }
}
