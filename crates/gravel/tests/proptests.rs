//! Property tests for the live runtime: arbitrary mixed-operation
//! programs must match a sequential oracle exactly.

use gravel_core::{GravelConfig, GravelRuntime};
use gravel_simt::{LaneVec, Mask};
use proptest::prelude::*;

/// One random PGAS operation issued by every active lane of one launch.
#[derive(Clone, Debug)]
struct Op {
    node: usize,
    kind: u8, // 0 = put, 1 = inc
    dest: u32,
    addr: u64,
    val: u64,
    lane_mod: usize, // lanes with l % lane_mod == 0 are active
}

fn arb_op(nodes: usize, heap: usize) -> impl Strategy<Value = Op> {
    (
        0..nodes,
        0u8..2,
        0..nodes as u32,
        0..heap as u64,
        1u64..100,
        1usize..5,
    )
        .prop_map(|(node, kind, dest, addr, val, lane_mod)| Op {
            node,
            kind,
            dest,
            addr,
            val,
            lane_mod,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Puts and increments from random nodes/masks land exactly as the
    /// sequential oracle predicts. (Puts of a constant value commute with
    /// themselves; increments commute with everything — so the oracle is
    /// well-defined despite concurrency.)
    #[test]
    fn random_programs_match_oracle(ops in prop::collection::vec(arb_op(3, 8), 1..12)) {
        let nodes = 3;
        let heap = 8usize;
        let rt = GravelRuntime::new(GravelConfig::small(nodes, heap));
        let mut oracle = vec![vec![0u64; heap]; nodes];
        for op in &ops {
            let lanes = 64;
            let active = (0..lanes).filter(|l| l % op.lane_mod == 0).count() as u64;
            let o = op.clone();
            rt.dispatch(op.node, 1, move |ctx| {
                let n = ctx.wg.wg_size();
                let mask = Mask::from_fn(n, |l| l % o.lane_mod == 0);
                ctx.masked(&mask, |ctx| {
                    let dests = LaneVec::splat(n, o.dest);
                    let addrs = LaneVec::splat(n, o.addr);
                    let vals = LaneVec::splat(n, o.val);
                    if o.kind == 0 {
                        ctx.shmem_put(&dests, &addrs, &vals);
                    } else {
                        ctx.shmem_inc(&dests, &addrs, &vals);
                    }
                });
            });
            // Barrier between launches keeps put/inc ordering well-defined
            // for the oracle.
            rt.quiesce();
            let cell = &mut oracle[op.dest as usize][op.addr as usize];
            if op.kind == 0 {
                *cell = op.val;
            } else {
                *cell += op.val * active;
            }
        }
        for (node, node_oracle) in oracle.iter().enumerate() {
            for (a, &expect) in node_oracle.iter().enumerate() {
                prop_assert_eq!(
                    rt.heap(node).load(a as u64),
                    expect,
                    "node {} addr {}",
                    node,
                    a
                );
            }
        }
        let stats = rt.shutdown().expect("clean shutdown");
        prop_assert_eq!(stats.total_offloaded(), stats.total_applied());
    }
}
