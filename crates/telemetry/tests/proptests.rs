//! Property tests of the histogram: merging, quantile error bounds, and
//! lossless concurrent recording.

use gravel_telemetry::histogram::{bucket_high, bucket_index, SUB_BUCKETS};
use gravel_telemetry::{Histogram, Registry};
use proptest::prelude::*;

fn record_all(values: &[u64]) -> Histogram {
    let h = Histogram::detached();
    for &v in values {
        h.record(v);
    }
    h
}

/// Exact quantile of a sorted slice, matching the histogram's
/// nearest-rank convention.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merging two snapshots preserves every count, the sum, and the max
    /// — merge is exactly concatenation of the recorded streams.
    #[test]
    fn merge_preserves_totals(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let ha = record_all(&a).snapshot();
        let hb = record_all(&b).snapshot();
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.count, (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.sum, a.iter().sum::<u64>() + b.iter().sum::<u64>());
        prop_assert_eq!(merged.max, a.iter().chain(&b).copied().max().unwrap_or(0));
        // And equals recording the concatenation directly.
        let mut all = a.clone();
        all.extend(&b);
        prop_assert_eq!(&merged.buckets, &record_all(&all).snapshot().buckets);
    }

    /// Quantile estimates are one-sided: never below the true quantile,
    /// and at most one sub-bucket width (1/8 relative) above it.
    #[test]
    fn quantile_error_is_bounded(
        values in prop::collection::vec(1u64..u64::MAX / 2, 1..300),
        q_pct in 1u32..100,
    ) {
        let q = q_pct as f64 / 100.0;
        let snap = record_all(&values).snapshot();
        let mut values = values;
        values.sort_unstable();
        let truth = exact_quantile(&values, q);
        let est = snap.quantile(q);
        prop_assert!(est >= truth, "estimate {est} below true quantile {truth}");
        // Log-bucketed with SUB_BUCKETS sub-buckets per power of two:
        // the bucket top overshoots its contents by < 1/SUB_BUCKETS.
        let bound = truth + truth / SUB_BUCKETS + 1;
        prop_assert!(
            est <= bound,
            "estimate {est} exceeds error bound {bound} (truth {truth}, q {q})"
        );
    }

    /// Every value lands in the bucket whose range covers it, and bucket
    /// tops are monotone.
    #[test]
    fn bucket_index_is_consistent(v in 0u64..u64::MAX) {
        let idx = bucket_index(v);
        prop_assert!(v <= bucket_high(idx), "value above its bucket top");
        if idx > 0 {
            prop_assert!(v > bucket_high(idx - 1), "value fits an earlier bucket");
        }
    }
}

/// N threads hammering one histogram lose nothing: total count, sum, and
/// max all reconcile exactly once the threads join.
#[test]
fn concurrent_recording_loses_nothing() {
    let registry = std::sync::Arc::new(Registry::enabled());
    let h = registry.histogram("stress.latency");
    let threads = 8;
    let per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let h = h.clone();
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    // Distinct per-thread value streams.
                    h.record(t as u64 * per_thread + i + 1);
                }
            })
        })
        .collect();
    for j in handles {
        j.join().unwrap();
    }
    let snap = registry.snapshot();
    let s = snap.histogram("stress.latency").expect("registered");
    let n = threads as u64 * per_thread;
    assert_eq!(s.count, n, "lost samples");
    assert_eq!(s.sum, n * (n + 1) / 2, "lost sum contributions");
    assert_eq!(s.max, n, "lost the max");
    assert_eq!(s.buckets.iter().sum::<u64>(), n, "bucket totals disagree with count");
}
