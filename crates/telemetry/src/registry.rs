//! The lock-free metrics registry.
//!
//! A [`Registry`] owns every named metric of one cluster. Registration
//! (name → handle) takes a mutex, but that is a cold path: components
//! resolve their handles once at construction and then update them with
//! nothing but relaxed atomics. Counters are sharded across cache-line
//! padded cells so concurrent producers (GPU worker threads hammering
//! the offload counters) do not serialize on one line.
//!
//! Disabled registries (`TelemetryConfig::Off`) hand out *dead* handles:
//! `Counter::add` starts with one always-taken branch on an immutable
//! bool, which the optimizer folds to nothing — that is the
//! zero-overhead-when-off claim, and `benches/telemetry_overhead`
//! measures it. Metrics the runtime *functionally* depends on
//! (quiescence tracking) are registered through
//! [`Registry::vital_counter`], which stays live even when telemetry is
//! off.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramCore, HistogramSnapshot};
use crate::TelemetryConfig;

/// Counter shard count. Eight padded cells absorb the contention of the
/// small worker-thread pools this runtime spawns (CUs + aggregators +
/// network threads) without bloating every counter to kilobytes.
pub const COUNTER_SHARDS: usize = 8;

/// A cache-line padded atomic cell.
#[repr(align(128))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Returns this thread's stable shard index.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

struct CounterCore {
    enabled: bool,
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl CounterCore {
    fn new(enabled: bool) -> Self {
        CounterCore { enabled, shards: Default::default() }
    }

    fn sum(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A monotonically increasing, sharded, relaxed-atomic counter.
///
/// Cloning is cheap (an `Arc` bump); clones observe the same value.
#[derive(Clone)]
pub struct Counter(Arc<CounterCore>);

impl Counter {
    /// A counter not attached to any registry (always live). Used by
    /// components that can run standalone, outside a cluster.
    pub fn detached() -> Self {
        Counter(Arc::new(CounterCore::new(true)))
    }

    /// A dead counter: `add` is a no-op, `get` reads zero.
    pub fn disabled() -> Self {
        Counter(Arc::new(CounterCore::new(false)))
    }

    /// Add `n` to the counter (relaxed; hot path).
    #[inline]
    pub fn add(&self, n: u64) {
        if !self.0.enabled {
            return;
        }
        self.0.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value: the sum over shards (exact once writers quiesce).
    pub fn get(&self) -> u64 {
        self.0.sum()
    }

    /// Whether updates are recorded (false for dead handles).
    pub fn is_enabled(&self) -> bool {
        self.0.enabled
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

struct GaugeCore {
    enabled: bool,
    value: AtomicI64,
}

/// A last-value-wins instantaneous measurement (queue depth, in-flight
/// window occupancy). Single cell: gauges are set by one writer.
#[derive(Clone)]
pub struct Gauge(Arc<GaugeCore>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge(Arc::new(GaugeCore { enabled: true, value: AtomicI64::new(0) }))
    }

    /// A dead gauge.
    pub fn disabled() -> Self {
        Gauge(Arc::new(GaugeCore { enabled: false, value: AtomicI64::new(0) }))
    }

    /// Record the current value (relaxed; hot path).
    #[inline]
    pub fn set(&self, v: i64) {
        if !self.0.enabled {
            return;
        }
        self.0.value.store(v, Ordering::Relaxed);
    }

    /// Last recorded value.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

enum Metric {
    Counter(Arc<CounterCore>),
    Gauge(Arc<GaugeCore>),
    Histogram(Arc<HistogramCore>),
}

/// A point-in-time copy of every metric in a registry.
///
/// Serializes to one JSON object with `counters`, `gauges`, and
/// `histograms` maps; histograms carry their bucket arrays so snapshots
/// from different nodes (or processes) can be merged loss-free.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// Counter values by metric name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by metric name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by metric name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Counter value, or 0 when the metric was never registered (e.g.
    /// telemetry off).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, or 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram snapshot, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Merge `other` into `self`: counters add, gauges last-wins,
    /// histograms merge bucket-wise. This is how per-node snapshots roll
    /// up into cluster totals.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }
}

impl serde::Serialize for RegistrySnapshot {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("counters".into(), self.counters.serialize()),
            ("gauges".into(), self.gauges.serialize()),
            ("histograms".into(), self.histograms.serialize()),
        ])
    }
}

/// The cluster-wide metric registry. See the module docs.
pub struct Registry {
    config: TelemetryConfig,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A registry honouring `config` (dead handles when `Off`).
    pub fn new(config: TelemetryConfig) -> Self {
        Registry { config, metrics: Mutex::new(BTreeMap::new()) }
    }

    /// A fully enabled registry (counters on, no tracing implied).
    pub fn enabled() -> Self {
        Registry::new(TelemetryConfig::Counters)
    }

    /// A registry whose handles are all dead.
    pub fn disabled() -> Self {
        Registry::new(TelemetryConfig::Off)
    }

    /// The config this registry was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// Whether counter/gauge/histogram updates are recorded.
    pub fn counters_enabled(&self) -> bool {
        self.config.counters_enabled()
    }

    /// Resolve (or create) the counter `name`. Same name → same counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_impl(name, self.counters_enabled())
    }

    /// Resolve (or create) a counter that records even when telemetry is
    /// off. For values the runtime functionally depends on (quiescence
    /// offload/apply totals) — observability must never be able to turn
    /// correctness off.
    pub fn vital_counter(&self, name: &str) -> Counter {
        self.counter_impl(name, true)
    }

    fn counter_impl(&self, name: &str, enabled: bool) -> Counter {
        let mut m = self.metrics.lock().unwrap();
        match m.get(name) {
            Some(Metric::Counter(c)) => Counter(c.clone()),
            Some(_) => panic!("metric `{name}` already registered with a different type"),
            None => {
                let core = Arc::new(CounterCore::new(enabled));
                m.insert(name.to_string(), Metric::Counter(core.clone()));
                Counter(core)
            }
        }
    }

    /// Resolve (or create) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().unwrap();
        match m.get(name) {
            Some(Metric::Gauge(g)) => Gauge(g.clone()),
            Some(_) => panic!("metric `{name}` already registered with a different type"),
            None => {
                let core = Arc::new(GaugeCore {
                    enabled: self.counters_enabled(),
                    value: AtomicI64::new(0),
                });
                m.insert(name.to_string(), Metric::Gauge(core.clone()));
                Gauge(core)
            }
        }
    }

    /// Resolve (or create) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().unwrap();
        match m.get(name) {
            Some(Metric::Histogram(h)) => Histogram::from_core(h.clone()),
            Some(_) => panic!("metric `{name}` already registered with a different type"),
            None => {
                let core = Arc::new(HistogramCore::new(self.counters_enabled()));
                m.insert(name.to_string(), Metric::Histogram(core.clone()));
                Histogram::from_core(core)
            }
        }
    }

    /// Snapshot every registered metric (relaxed reads; quiesce writers
    /// for exact values).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let m = self.metrics.lock().unwrap();
        let mut snap = RegistrySnapshot::default();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.sum());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.value.load(Ordering::Relaxed));
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.lock().unwrap().len();
        write!(f, "Registry({:?}, {n} metrics)", self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_clones() {
        let r = Registry::enabled();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.snapshot().counter("x"), 4);
    }

    #[test]
    fn disabled_registry_records_nothing_but_vitals() {
        let r = Registry::disabled();
        let c = r.counter("dead");
        let v = r.vital_counter("alive");
        c.add(10);
        v.add(10);
        assert_eq!(c.get(), 0);
        assert_eq!(v.get(), 10);
        assert!(!c.is_enabled());
        let snap = r.snapshot();
        assert_eq!(snap.counter("dead"), 0);
        assert_eq!(snap.counter("alive"), 10);
    }

    #[test]
    fn gauges_last_value_wins() {
        let r = Registry::enabled();
        let g = r.gauge("depth");
        g.set(5);
        g.set(-2);
        assert_eq!(g.get(), -2);
        assert_eq!(r.snapshot().gauge("depth"), -2);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let r = Registry::enabled();
        let _ = r.counter("m");
        let _ = r.gauge("m");
    }

    #[test]
    fn snapshot_merge_adds_counters_and_histograms() {
        let a = Registry::enabled();
        let b = Registry::enabled();
        a.counter("n").add(2);
        b.counter("n").add(5);
        a.histogram("h").record(10);
        b.histogram("h").record(20);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.counter("n"), 7);
        assert_eq!(sa.histogram("h").unwrap().count, 2);
    }

    #[test]
    fn concurrent_sharded_increments_lose_nothing() {
        let r = Arc::new(Registry::enabled());
        let c = r.counter("hot");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let r = Registry::enabled();
        r.counter("a.b").add(7);
        r.gauge("g").set(-1);
        r.histogram("h").record(100);
        let json = serde_json::to_string(&r.snapshot()).unwrap();
        assert!(json.contains("\"a.b\":7"), "{json}");
        assert!(json.contains("\"g\":-1"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
    }
}
