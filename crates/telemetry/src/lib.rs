//! # gravel-telemetry — unified observability for the Gravel runtime
//!
//! The paper's evaluation (§8, Table 5) is built on measurements taken
//! *inside* the runtime: the aggregator's polling fraction, average
//! network message size, per-stage latency. This crate is the single
//! substrate for all of them:
//!
//! * [`Registry`] — a lock-free metrics registry of named, sharded
//!   relaxed-atomic [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s (p50/p95/p99/max, mergeable across nodes), cheap
//!   enough to live on the offload / aggregate / apply hot paths.
//! * [`Tracer`] — an event-tracing ring buffer with per-thread writers
//!   and a `chrome://tracing`-compatible JSON exporter; the runtime
//!   plants spans at queue slot handoff, aggregator drain/flush/
//!   retransmit, and network-thread apply.
//! * [`Sampler`] — a periodic thread that snapshots the registry into
//!   timestamped JSON series, so benches emit trajectories (queue
//!   depth, window occupancy, aggregation factor over time) instead of
//!   endpoint numbers.
//!
//! Everything is gated by [`TelemetryConfig`]: `Off` hands out dead
//! handles whose updates compile to a single never-taken branch,
//! `Counters` (the default) records metrics only, and `CountersAndTrace`
//! additionally records spans.

pub mod histogram;
pub mod registry;
pub mod sampler;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Registry, RegistrySnapshot};
pub use sampler::{Sample, SampleSeries, Sampler};
pub use trace::{SpanGuard, TraceEvent, Tracer};

/// How much telemetry the runtime records.
///
/// The default is [`Counters`](TelemetryConfig::Counters): the paper's
/// Table-5 quantities cost a handful of relaxed atomic adds per event
/// (`benches/telemetry_overhead` holds that under 5 % of GUPS
/// throughput on the in-process fabric). Tracing is opt-in because span
/// buffers grow with the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TelemetryConfig {
    /// No metrics, no tracing. Hot-path telemetry calls reduce to a
    /// never-taken branch on an immutable flag. Counters the runtime
    /// *functionally* requires (quiescence offload/apply totals) stay
    /// live — see [`Registry::vital_counter`].
    Off,
    /// Counters, gauges, and histograms; no span tracing. The default.
    #[default]
    Counters,
    /// Counters plus chrome-trace span recording
    /// ([`Tracer::export_chrome_json`] exports the result).
    CountersAndTrace,
}

impl TelemetryConfig {
    /// Whether counters/gauges/histograms record.
    pub fn counters_enabled(&self) -> bool {
        !matches!(self, TelemetryConfig::Off)
    }

    /// Whether spans record.
    pub fn trace_enabled(&self) -> bool {
        matches!(self, TelemetryConfig::CountersAndTrace)
    }

    /// Build the matching tracer ([`Tracer::disabled`] unless tracing
    /// is on).
    pub fn tracer(&self) -> Tracer {
        if self.trace_enabled() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_gates() {
        assert!(!TelemetryConfig::Off.counters_enabled());
        assert!(TelemetryConfig::Counters.counters_enabled());
        assert!(!TelemetryConfig::Counters.trace_enabled());
        assert!(TelemetryConfig::CountersAndTrace.trace_enabled());
        assert_eq!(TelemetryConfig::default(), TelemetryConfig::Counters);
        assert!(!TelemetryConfig::Counters.tracer().is_enabled());
        assert!(TelemetryConfig::CountersAndTrace.tracer().is_enabled());
    }
}
