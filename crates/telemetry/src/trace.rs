//! Event tracing with per-thread ring buffers and a
//! `chrome://tracing`-compatible JSON exporter.
//!
//! A [`Tracer`] is a cheap-to-clone handle shared by every thread of a
//! cluster. The first span a thread records registers a private ring
//! buffer (bounded: old events are overwritten and counted as dropped),
//! so the hot path never contends with other threads — the only
//! cross-thread synchronization is the per-thread buffer's uncontended
//! mutex, taken once per completed span.
//!
//! Spans are recorded as chrome "complete" events (`ph: "X"`): name,
//! category, start timestamp relative to the tracer's epoch, duration,
//! `pid` = node id, `tid` = registration order. Load the exported JSON
//! in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) to see
//! the offload → aggregate → apply pipeline on a common timeline.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-thread event capacity (~64k spans ≈ a few MB per thread).
pub const DEFAULT_THREAD_CAPACITY: usize = 1 << 16;

/// One completed span.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name, e.g. `"agg.flush"`.
    pub name: &'static str,
    /// Category (the pipeline stage), e.g. `"aggregate"`.
    pub cat: &'static str,
    /// Node id (chrome `pid`).
    pub node: u32,
    /// Start, nanoseconds since the tracer epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct ThreadBuf {
    /// Thread name at registration time (chrome thread metadata).
    name: String,
    /// Chrome `tid`: registration order.
    tid: u64,
    events: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

struct TracerInner {
    /// Distinguishes tracers within one process in thread-local maps.
    id: u64,
    epoch: Instant,
    capacity: usize,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
}

thread_local! {
    /// tracer id → this thread's buffer for that tracer.
    static THREAD_BUFS: RefCell<HashMap<u64, Arc<ThreadBuf>>> = RefCell::new(HashMap::new());
}

/// A handle for recording spans. Clone freely; a disabled tracer's
/// [`span`](Tracer::span) is a no-op guard.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// An enabled tracer with the default per-thread capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_THREAD_CAPACITY)
    }

    /// An enabled tracer holding at most `capacity` events per thread.
    pub fn with_capacity(capacity: usize) -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        assert!(capacity > 0, "trace buffers need room for at least one event");
        Tracer {
            inner: Some(Arc::new(TracerInner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                capacity,
                threads: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A tracer that records nothing (the `TelemetryConfig::Counters`
    /// and `Off` modes).
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether spans are recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a span; the event is recorded when the guard drops.
    #[inline]
    pub fn span(&self, name: &'static str, cat: &'static str, node: u32) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            name,
            cat,
            node,
            start: self.inner.as_ref().map(|_| Instant::now()),
        }
    }

    fn record(&self, ev: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        THREAD_BUFS.with(|bufs| {
            let mut bufs = bufs.borrow_mut();
            let buf = bufs.entry(inner.id).or_insert_with(|| {
                let buf = Arc::new(ThreadBuf {
                    name: std::thread::current().name().unwrap_or("unnamed").to_string(),
                    tid: 0,
                    events: Mutex::new(VecDeque::with_capacity(16)),
                    dropped: AtomicU64::new(0),
                });
                let mut threads = inner.threads.lock().unwrap();
                // tid = registration order; fix it up via Arc::get_mut
                // before the buffer is shared with the exporter.
                let mut buf = buf;
                Arc::get_mut(&mut buf).unwrap().tid = threads.len() as u64;
                threads.push(buf.clone());
                buf
            });
            let mut events = buf.events.lock().unwrap();
            if events.len() >= inner.capacity {
                events.pop_front();
                buf.dropped.fetch_add(1, Ordering::Relaxed);
            }
            events.push_back(ev);
        });
    }

    /// Total events recorded and still buffered, across all threads.
    pub fn buffered_events(&self) -> usize {
        let Some(inner) = &self.inner else { return 0 };
        let threads = inner.threads.lock().unwrap();
        threads.iter().map(|t| t.events.lock().unwrap().len()).sum()
    }

    /// Events overwritten because a thread's ring filled.
    pub fn dropped_events(&self) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let threads = inner.threads.lock().unwrap();
        threads.iter().map(|t| t.dropped.load(Ordering::Relaxed)).sum()
    }

    /// Drain every thread's buffer into one list (sorted by start time).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let threads = inner.threads.lock().unwrap();
        let mut all = Vec::new();
        for t in threads.iter() {
            all.extend(t.events.lock().unwrap().drain(..));
        }
        all.sort_by_key(|e| e.start_ns);
        all
    }

    /// Export everything recorded so far as `chrome://tracing` JSON
    /// (object format, `traceEvents` array; timestamps in microseconds).
    /// Returns `None` for a disabled tracer. Buffers are not drained —
    /// exporting twice yields the same events twice.
    pub fn export_chrome_json(&self) -> Option<String> {
        use serde::Value;
        let inner = self.inner.as_ref()?;
        let threads = inner.threads.lock().unwrap();
        let mut events: Vec<Value> = Vec::new();
        for t in threads.iter() {
            // Thread metadata: names the row in the trace viewer.
            events.push(Value::Object(vec![
                ("name".into(), Value::Str("thread_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::U64(0)),
                ("tid".into(), Value::U64(t.tid)),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::Str(t.name.clone()))]),
                ),
            ]));
            for ev in t.events.lock().unwrap().iter() {
                events.push(Value::Object(vec![
                    ("name".into(), Value::Str(ev.name.into())),
                    ("cat".into(), Value::Str(ev.cat.into())),
                    ("ph".into(), Value::Str("X".into())),
                    ("ts".into(), Value::F64(ev.start_ns as f64 / 1000.0)),
                    ("dur".into(), Value::F64(ev.dur_ns as f64 / 1000.0)),
                    ("pid".into(), Value::U64(ev.node as u64)),
                    ("tid".into(), Value::U64(t.tid)),
                ]));
            }
        }
        let root = Value::Object(vec![
            ("traceEvents".into(), Value::Array(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ]);
        Some(serde_json::to_string(&root).expect("trace serialization cannot fail"))
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(_) => write!(f, "Tracer(enabled, {} buffered)", self.buffered_events()),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

/// Records one span on drop. Hold it across the work being measured.
#[must_use = "a span guard records on drop; binding it to `_` measures nothing"]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    cat: &'static str,
    node: u32,
    start: Option<Instant>,
}

impl SpanGuard<'_> {
    /// Duration since the span started (None when tracing is off).
    pub fn elapsed(&self) -> Option<std::time::Duration> {
        self.start.map(|s| s.elapsed())
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let (Some(inner), Some(start)) = (self.tracer.inner.as_ref(), self.start) else {
            return;
        };
        let end = Instant::now();
        let ev = TraceEvent {
            name: self.name,
            cat: self.cat,
            node: self.node,
            start_ns: start.duration_since(inner.epoch).as_nanos() as u64,
            dur_ns: end.duration_since(start).as_nanos() as u64,
        };
        self.tracer.record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_record_and_export() {
        let t = Tracer::enabled();
        {
            let _g = t.span("work", "test", 3);
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(t.buffered_events(), 1);
        let json = t.export_chrome_json().unwrap();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"work\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"pid\":3"), "{json}");
        // The export is valid JSON.
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        assert!(v.get("traceEvents").is_some());
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        {
            let _g = t.span("work", "test", 0);
        }
        assert_eq!(t.buffered_events(), 0);
        assert!(t.export_chrome_json().is_none());
        assert!(!t.is_enabled());
    }

    #[test]
    fn per_thread_buffers_do_not_interleave_registration() {
        let t = Tracer::enabled();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let t = t.clone();
                std::thread::Builder::new()
                    .name(format!("tracer-test-{i}"))
                    .spawn(move || {
                        for _ in 0..100 {
                            let _g = t.span("w", "test", 0);
                        }
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.buffered_events(), 400);
        assert_eq!(t.dropped_events(), 0);
        let json = t.export_chrome_json().unwrap();
        assert!(json.contains("tracer-test-0"), "thread names exported");
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let t = Tracer::with_capacity(10);
        for _ in 0..25 {
            let _g = t.span("w", "test", 0);
        }
        assert_eq!(t.buffered_events(), 10);
        assert_eq!(t.dropped_events(), 15);
    }

    #[test]
    fn drain_empties_and_sorts() {
        let t = Tracer::enabled();
        for _ in 0..5 {
            let _g = t.span("w", "test", 0);
        }
        let evs = t.drain();
        assert_eq!(evs.len(), 5);
        assert!(evs.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert_eq!(t.buffered_events(), 0);
    }

    #[test]
    fn two_tracers_on_one_thread_stay_separate() {
        let a = Tracer::enabled();
        let b = Tracer::enabled();
        {
            let _g = a.span("a", "test", 0);
        }
        {
            let _g = b.span("b", "test", 0);
            let _h = b.span("b2", "test", 0);
        }
        assert_eq!(a.buffered_events(), 1);
        assert_eq!(b.buffered_events(), 2);
    }
}
