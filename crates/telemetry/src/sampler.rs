//! The periodic sampler: registry snapshots on a fixed cadence.
//!
//! Endpoint counters answer "how much"; trajectories answer "when".
//! [`Sampler::start`] spawns a thread that snapshots a [`Registry`]
//! every `interval` and appends a timestamped [`Sample`]; stopping it
//! returns the whole [`SampleSeries`], which serializes to a JSON array
//! benches drop next to their other artifacts. Queue depth, in-flight
//! window occupancy, aggregation factor, and backpressure stalls *over
//! time* — Table 5 quantities as curves instead of single numbers —
//! all come from here.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::registry::{Registry, RegistrySnapshot};

/// One timestamped registry snapshot.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Milliseconds since the sampler started.
    pub t_ms: f64,
    /// The metric values at that instant.
    pub snapshot: RegistrySnapshot,
}

impl serde::Serialize for Sample {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("t_ms".into(), self.t_ms.serialize()),
            ("snapshot".into(), self.snapshot.serialize()),
        ])
    }
}

/// A completed sampling run.
#[derive(Clone, Debug, Default)]
pub struct SampleSeries {
    /// Samples in time order.
    pub samples: Vec<Sample>,
}

impl SampleSeries {
    /// The trajectory of one counter across the run.
    pub fn counter_series(&self, name: &str) -> Vec<(f64, u64)> {
        self.samples.iter().map(|s| (s.t_ms, s.snapshot.counter(name))).collect()
    }

    /// The trajectory of one gauge across the run.
    pub fn gauge_series(&self, name: &str) -> Vec<(f64, i64)> {
        self.samples.iter().map(|s| (s.t_ms, s.snapshot.gauge(name))).collect()
    }
}

impl serde::Serialize for SampleSeries {
    fn serialize(&self) -> serde::Value {
        serde::Value::Object(vec![("samples".into(), self.samples.serialize())])
    }
}

/// A running sampler thread. Stop it to collect the series; dropping it
/// without stopping also shuts the thread down (discarding the series).
pub struct Sampler {
    stop: Arc<AtomicBool>,
    series: Arc<Mutex<SampleSeries>>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Start sampling `registry` every `interval`. The first sample is
    /// taken immediately; one final sample is taken at `stop` time, so a
    /// series always has ≥ 2 samples bracketing the run.
    pub fn start(registry: Arc<Registry>, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        let stop = Arc::new(AtomicBool::new(false));
        let series = Arc::new(Mutex::new(SampleSeries::default()));
        let handle = {
            let (stop, series) = (stop.clone(), series.clone());
            std::thread::Builder::new()
                .name("gravel-sampler".into())
                .spawn(move || {
                    let epoch = Instant::now();
                    loop {
                        let sample = Sample {
                            t_ms: epoch.elapsed().as_secs_f64() * 1e3,
                            snapshot: registry.snapshot(),
                        };
                        series.lock().unwrap().samples.push(sample);
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        // Sleep in small slices so stop() is prompt even
                        // with second-scale intervals.
                        let deadline = Instant::now() + interval;
                        while Instant::now() < deadline {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::sleep(
                                (deadline - Instant::now()).min(Duration::from_millis(5)),
                            );
                        }
                    }
                })
                .expect("spawn sampler thread")
        };
        Sampler { stop, series, handle: Some(handle) }
    }

    /// Stop the thread and return everything sampled.
    pub fn stop(mut self) -> SampleSeries {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        std::mem::take(&mut *self.series.lock().unwrap())
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_brackets_a_run() {
        let r = Arc::new(Registry::enabled());
        let c = r.counter("work");
        let s = Sampler::start(r.clone(), Duration::from_millis(2));
        c.add(10);
        std::thread::sleep(Duration::from_millis(10));
        c.add(5);
        let series = s.stop();
        assert!(series.samples.len() >= 2, "{} samples", series.samples.len());
        let traj = series.counter_series("work");
        assert_eq!(traj.last().unwrap().1, 15, "final sample sees all work");
        assert!(traj.windows(2).all(|w| w[0].1 <= w[1].1), "counters are monotone");
        assert!(traj.windows(2).all(|w| w[0].0 <= w[1].0), "time is monotone");
    }

    #[test]
    fn series_serializes_to_json() {
        let r = Arc::new(Registry::enabled());
        r.counter("c").add(1);
        r.gauge("g").set(7);
        let s = Sampler::start(r, Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(3));
        let series = s.stop();
        let json = serde_json::to_string(&series).unwrap();
        assert!(json.contains("\"t_ms\""), "{json}");
        assert!(json.contains("\"c\":1"), "{json}");
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        assert!(v.get("samples").is_some());
    }

    #[test]
    fn drop_without_stop_shuts_down() {
        let r = Arc::new(Registry::enabled());
        let s = Sampler::start(r, Duration::from_secs(3600));
        drop(s); // must not hang on the long interval
    }
}
