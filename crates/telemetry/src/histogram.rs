//! Log-bucketed latency histograms.
//!
//! HDR-style layout: values 0..8 get exact unit buckets; above that,
//! each power of two is split into [`SUB_BUCKETS`] linear sub-buckets,
//! so any recorded value lands in a bucket whose width is at most 1/8 of
//! its lower bound. Quantile estimates report the bucket's *upper*
//! bound, which bounds the relative error one-sided:
//!
//! ```text
//! true_value ≤ estimate ≤ true_value * (1 + 1/SUB_BUCKETS)
//! ```
//!
//! (the property tests in `tests/proptests.rs` assert exactly this).
//! Recording is a single relaxed `fetch_add` plus count/sum/max updates;
//! snapshots are plain bucket arrays, mergeable across nodes without
//! losing samples.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// log2 of the sub-bucket count.
pub const SUB_BITS: u32 = 3;
/// Linear sub-buckets per power of two (relative error bound 1/8).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count: 8 exact unit buckets + 61 octaves × 8.
pub const BUCKETS: usize = (SUB_BUCKETS as usize) + (64 - SUB_BITS as usize) * SUB_BUCKETS as usize;

/// Bucket index of `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // ≥ SUB_BITS
    let shift = exp - SUB_BITS;
    let mantissa = (v >> shift) - SUB_BUCKETS; // top SUB_BITS bits below the leader
    (SUB_BUCKETS + (exp - SUB_BITS) as u64 * SUB_BUCKETS + mantissa) as usize
}

/// Largest value mapping to bucket `idx` (the quantile representative).
pub fn bucket_high(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        return idx;
    }
    let b = idx - SUB_BUCKETS;
    let shift = (b / SUB_BUCKETS) as u32;
    let mantissa = b % SUB_BUCKETS;
    let low = (SUB_BUCKETS + mantissa) << shift;
    low + ((1u64 << shift) - 1)
}

pub(crate) struct HistogramCore {
    enabled: bool,
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(enabled: bool) -> Self {
        // Box the bucket array directly (it is ~4 kB).
        let buckets: Box<[AtomicU64; BUCKETS]> = (0..BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        HistogramCore {
            enabled,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A concurrent log-bucketed histogram handle (cheap to clone).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram not attached to any registry (always live).
    pub fn detached() -> Self {
        Histogram(Arc::new(HistogramCore::new(true)))
    }

    /// A dead histogram: `record` is a no-op.
    pub fn disabled() -> Self {
        Histogram(Arc::new(HistogramCore::new(false)))
    }

    pub(crate) fn from_core(core: Arc<HistogramCore>) -> Self {
        Histogram(core)
    }

    /// Record one sample (relaxed atomics; hot path).
    #[inline]
    pub fn record(&self, v: u64) {
        let core = &*self.0;
        if !core.enabled {
            return;
        }
        core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram(count={}, p50={}, p99={}, max={})",
            s.count,
            s.p50(),
            s.p99(),
            s.max
        )
    }
}

/// A point-in-time copy of a [`Histogram`], mergeable across nodes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (length [`BUCKETS`]; empty = no samples).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (exact, not bucketed).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Merge `other`'s samples into `self` (bucket-wise addition; no
    /// samples are lost or double-counted).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; BUCKETS];
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Quantile estimate: the upper bound of the bucket holding the
    /// `q`-quantile sample (`0.0 ≤ q ≤ 1.0`), clamped to the recorded
    /// maximum (which is exact, so no quantile can truly exceed it).
    /// Returns 0 when empty.
    /// One-sided error bound: `true ≤ estimate ≤ true * (1 + 1/8)`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of all samples (exact).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl serde::Serialize for HistogramSnapshot {
    fn serialize(&self) -> serde::Value {
        // Sparse bucket encoding: the full array is ~500 mostly-zero
        // entries; emit (index, count) pairs instead.
        let sparse: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64, c))
            .collect();
        serde::Value::Object(vec![
            ("count".into(), self.count.serialize()),
            ("sum".into(), self.sum.serialize()),
            ("max".into(), self.max.serialize()),
            ("mean".into(), self.mean().serialize()),
            ("p50".into(), self.p50().serialize()),
            ("p95".into(), self.p95().serialize()),
            ("p99".into(), self.p99().serialize()),
            ("sparse_buckets".into(), sparse.serialize()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        for v in [8u64, 9, 15, 16, 100, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "idx {idx} for {v}");
            let high = bucket_high(idx);
            assert!(high >= v, "high {high} < {v}");
            // Relative error bound: high ≤ v * (1 + 1/8).
            assert!(
                high as f64 <= v as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64),
                "{v} → {high}"
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut last = 0;
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index dropped at {v}");
            last = idx;
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::detached();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.p50();
        assert!((450..=570).contains(&p50), "p50 {p50}");
        let p99 = s.p99();
        assert!((980..=1120).contains(&p99), "p99 {p99}");
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let h = Histogram::disabled();
        h.record(42);
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().quantile(0.5), 0);
    }

    #[test]
    fn merge_preserves_everything() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        for v in 0..100 {
            a.record(v);
            b.record(v * 1000);
        }
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 200);
        assert_eq!(s.max, 99_000);
        assert_eq!(s.sum, (0..100u64).sum::<u64>() * 1001);
    }
}
