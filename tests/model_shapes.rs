//! Integration: the cluster model must reproduce the paper's qualitative
//! shapes when fed real application traces (test scale — magnitudes are
//! validated at bench scale by the figure binaries and EXPERIMENTS.md).

use gravel_apps::{inputs, GraphInputs, Scale};
use gravel_cluster::{geo_mean, network_stats, simulate, Calibration, Style};

fn graphs() -> GraphInputs {
    GraphInputs::generate(Scale::Test, 1)
}

#[test]
fn gravel_beats_every_other_style_on_every_workload() {
    let graphs = graphs();
    let cal = Calibration::paper();
    for w in gravel_apps::WORKLOADS {
        let t8 = inputs::workload_trace(w, Scale::Test, &graphs, 8);
        let gravel = simulate(&t8, &cal, &Style::Gravel.params(&cal)).total_ns;
        // The SSSP inputs are superstep-latency-bound; at *test* scale the
        // aggregator's 125 µs flush timeout dominates each tiny step and
        // the synchronous coalesced path can come out ahead (the paper's
        // Fig. 15 shows them roughly tied on SSSP at full scale, where
        // the blocking sends cost more than the timeout — the bench-scale
        // fig15 binary reproduces that). Keep strict dominance for the
        // volume-bound workloads and a weaker bound for SSSP.
        let latency_bound = w.starts_with("SSSP");
        for style in Style::fig15() {
            let r = simulate(&t8, &cal, &style.params(&cal));
            if latency_bound {
                assert!(
                    4 * r.total_ns >= gravel,
                    "{w}: {} ({}) far ahead of Gravel ({gravel})",
                    style.name(),
                    r.total_ns
                );
            } else {
                assert!(
                    r.total_ns + 1 >= gravel,
                    "{w}: {} ({}) beats Gravel ({gravel})",
                    style.name(),
                    r.total_ns
                );
            }
        }
    }
}

#[test]
fn table5_remote_fractions_have_the_paper_ordering() {
    // Uniform-scatter apps (GUPS, kmeans, mer) ≈ 87.5 % remote; the
    // locality-partitioned graph apps land far below them.
    let graphs = graphs();
    let cal = Calibration::paper();
    let rf = |w: &str| {
        network_stats(&cal, &inputs::workload_trace(w, Scale::Test, &graphs, 8)).remote_fraction
    };
    for scatter in ["GUPS", "kmeans", "mer"] {
        let f = rf(scatter);
        assert!((f - 0.875).abs() < 0.03, "{scatter}: {f}");
    }
    for local in ["PR-1", "PR-2", "SSSP-1", "SSSP-2", "color-1", "color-2"] {
        let f = rf(local);
        assert!(f < 0.55, "{local} should be locality-bound: {f}");
    }
    // The -2 (cage) inputs are more local than the -1 (mesh) inputs.
    assert!(rf("PR-2") < rf("PR-1"));
    assert!(rf("color-2") < rf("color-1"));
}

#[test]
fn sssp1_is_the_worst_scaling_workload() {
    // Fig. 12's headline qualitative fact.
    let graphs = graphs();
    let cal = Calibration::paper();
    let speedup8 = |w: &str| {
        let t1 = inputs::workload_trace(w, Scale::Test, &graphs, 1);
        let t8 = inputs::workload_trace(w, Scale::Test, &graphs, 8);
        let r1 = simulate(&t1, &cal, &Style::Gravel.params(&cal)).total_ns;
        let r8 = simulate(&t8, &cal, &Style::Gravel.params(&cal)).total_ns;
        r1 as f64 / r8 as f64
    };
    let sssp1 = speedup8("SSSP-1");
    for w in ["GUPS", "PR-2", "color-2", "kmeans", "mer"] {
        assert!(speedup8(w) > sssp1, "{w} should scale better than SSSP-1");
    }
}

#[test]
fn msg_per_lane_collapses_on_gups() {
    // Fig. 15's ~0.01x GUPS bar: unaggregated small messages are
    // catastrophic.
    let graphs = graphs();
    let cal = Calibration::paper();
    let t8 = inputs::workload_trace("GUPS", Scale::Test, &graphs, 8);
    let gravel = simulate(&t8, &cal, &Style::Gravel.params(&cal)).total_ns;
    let mpl = simulate(&t8, &cal, &Style::MsgPerLane.params(&cal)).total_ns;
    assert!(mpl > 30 * gravel, "mpl {mpl} vs gravel {gravel}");
}

#[test]
fn geo_mean_matches_hand_computation() {
    assert!((geo_mean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-12);
}

#[test]
fn traces_are_deterministic_across_generations() {
    let g1 = graphs();
    let g2 = graphs();
    for w in ["GUPS", "PR-1", "SSSP-2", "kmeans"] {
        let a = inputs::workload_trace(w, Scale::Test, &g1, 4);
        let b = inputs::workload_trace(w, Scale::Test, &g2, 4);
        assert_eq!(a.total_routed(), b.total_routed(), "{w}");
        assert_eq!(a.steps.len(), b.steps.len(), "{w}");
    }
}
