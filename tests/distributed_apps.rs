//! Cross-crate integration: every application running end-to-end on the
//! live runtime (SIMT engine → queue → aggregator → network thread →
//! symmetric heap), verified against sequential references.

use gravel_apps::graph::{gen, reference};
use gravel_apps::{color, gups, kmeans, mer, pagerank, sssp};
use gravel_core::{GravelConfig, GravelRuntime};

#[test]
fn gups_on_three_nodes() {
    let input = gups::GupsInput { updates: 6_000, table_len: 777, seed: 9 };
    let rt = GravelRuntime::new(GravelConfig::small(3, input.table_len));
    let issued = gups::run_live(&rt, &input);
    assert_eq!(issued, 6_000);
    assert!(gups::verify_live(&rt, &input));
    let stats = rt.shutdown().expect("clean shutdown");
    assert_eq!(stats.total_offloaded(), stats.total_applied());
}

#[test]
fn pagerank_exact_across_node_counts() {
    let g = gen::cage15_like(120, 31);
    let damping = pagerank::default_damping();
    let seq = reference::pagerank(&g, 4, damping);
    for nodes in [1, 2, 4] {
        let rt = GravelRuntime::new(GravelConfig::small(nodes, 128));
        let live = pagerank::run_live(&rt, &g, 4, damping);
        rt.shutdown().expect("clean shutdown");
        assert_eq!(live, seq, "PageRank differs at {nodes} nodes");
    }
}

#[test]
fn sssp_matches_dijkstra_from_multiple_sources() {
    let g = gen::hugebubbles_like(196, 41);
    for source in [0u32, 7, 100] {
        let mut relax = 0;
        let rt = GravelRuntime::with_handlers(GravelConfig::small(2, 128), |reg| {
            relax = sssp::register(reg);
        });
        let live = sssp::run_live(&rt, &g, source, relax);
        rt.shutdown().expect("clean shutdown");
        assert_eq!(live, reference::sssp(&g, source), "source {source}");
    }
}

#[test]
fn coloring_proper_on_both_input_families() {
    for (name, g) in
        [("mesh", gen::hugebubbles_like(81, 5)), ("banded", gen::cage15_like(64, 5))]
    {
        let rt = GravelRuntime::new(GravelConfig::small(2, g.num_vertices()));
        let colors = color::run_live(&rt, &g);
        rt.shutdown().expect("clean shutdown");
        assert!(reference::coloring_valid(&g.symmetrized(), &colors), "{name}");
    }
}

#[test]
fn kmeans_exact_on_four_nodes() {
    let input = kmeans::KmeansInput { points: 1200, clusters: 3, iters: 3, seed: 77 };
    let rt = GravelRuntime::new(GravelConfig::small(4, 3 * input.clusters));
    let live = kmeans::run_live(&rt, &input);
    rt.shutdown().expect("clean shutdown");
    assert_eq!(live, kmeans::reference(&input, 4));
}

#[test]
fn mer_builds_the_exact_kmer_set() {
    let input = mer::MerInput { genome_len: 1_000, reads: 120, read_len: 40, k: 15, seed: 3 };
    let nodes = 3;
    let expected = mer::reference_kmers(&input, nodes);
    let table_len = (expected.len() * 4).next_multiple_of(nodes);
    let mut insert = 0;
    let rt = GravelRuntime::with_handlers(GravelConfig::small(nodes, table_len / nodes), |reg| {
        insert = mer::register(reg);
    });
    mer::run_live(&rt, &input, table_len, insert);
    let got = mer::collect_table(&rt);
    rt.shutdown().expect("clean shutdown");
    assert_eq!(got, expected);
}

#[test]
fn two_apps_share_one_runtime_sequentially() {
    // The runtime is reusable across kernels: run GUPS, reset, run it
    // again — totals must be exact both times.
    let input = gups::GupsInput { updates: 2_000, table_len: 256, seed: 4 };
    let rt = GravelRuntime::new(GravelConfig::small(2, input.table_len));
    gups::run_live(&rt, &input);
    assert!(gups::verify_live(&rt, &input));
    for node in 0..2 {
        rt.heap(node).reset(0);
    }
    gups::run_live(&rt, &input);
    assert!(gups::verify_live(&rt, &input));
    let stats = rt.shutdown().expect("clean shutdown");
    assert_eq!(stats.total_offloaded(), 4_000);
}
