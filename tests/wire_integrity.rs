//! Wire-integrity acceptance tests (DESIGN.md §13): seeded *byte-level*
//! fabric corruption — bit flips, truncation, wholesale garbage, and
//! misrouted routing stamps — against full application runs. The
//! headline properties are the issue's acceptance criteria:
//!
//! - GUPS and PageRank complete **bit-exact** under combined corruption,
//!   loss, reordering, and a seeded aggregator kill, because a frame
//!   that fails verification is dropped and go-back-N retransmission
//!   heals it exactly as if it had been lost.
//! - Every injected fault is **accounted for**: the injector's counters
//!   reconcile against the receivers' integrity-drop counters.
//! - Well-formed traffic quarantines **nothing**, with or without the
//!   CRC, and the `WireIntegrity::Off` ablation still delivers.

use std::sync::Arc;

use gravel_apps::graph::{gen, reference};
use gravel_apps::{gups, pagerank};
use gravel_core::{
    ChaosPlan, FaultConfig, GravelConfig, GravelRuntime, ProcessFault, TransportKind, WireIntegrity,
};

fn gups_input() -> gups::GupsInput {
    gups::GupsInput {
        updates: 6_000,
        table_len: 512,
        seed: 11,
    }
}

/// Fault-free GUPS baseline: the full per-node heap contents.
fn baseline_heaps(input: &gups::GupsInput, nodes: usize) -> Vec<Vec<u64>> {
    let rt = GravelRuntime::new(GravelConfig::small(nodes, input.table_len));
    gups::run_live(&rt, input);
    let heaps = (0..nodes).map(|i| rt.heap(i).snapshot()).collect();
    rt.shutdown().expect("fault-free run is clean");
    heaps
}

/// The acceptance fault mix: the full corruption family plus loss and
/// reordering underneath it.
fn corrupt_mixed(seed: u64) -> FaultConfig {
    FaultConfig {
        drop: 0.05,
        reorder: 0.05,
        ..FaultConfig::corrupting(seed, 0.02)
    }
}

#[test]
fn gups_is_bit_exact_under_corruption_drops_and_reordering() {
    let input = gups_input();
    let baseline = baseline_heaps(&input, 3);
    let mut cfg = GravelConfig::small(3, input.table_len);
    cfg.transport = TransportKind::Unreliable(corrupt_mixed(4_242));
    let rt = GravelRuntime::new(cfg);
    let issued = gups::run_live(&rt, &input);
    assert_eq!(issued, input.updates as u64);
    assert!(gups::verify_live(&rt, &input), "histogram wrong");
    for (i, expect) in baseline.iter().enumerate() {
        assert_eq!(&rt.heap(i).snapshot(), expect, "heap {i} not bit-exact");
    }
    let stats = rt.shutdown().expect("clean shutdown under corruption");
    assert!(
        stats.faults.total_corruptions() > 0,
        "corruption mix never fired"
    );
    // Every corrupted frame was refused at a receiver and healed by
    // retransmission — never decoded, never quarantined.
    assert!(stats.total_integrity_drops() > 0);
    assert_eq!(stats.total_quarantined(), 0);
    assert_eq!(stats.total_offloaded(), stats.total_applied());
}

#[test]
fn gups_survives_corruption_plus_aggregator_kill_bit_exact() {
    let input = gups_input();
    let baseline = baseline_heaps(&input, 2);
    // Derive the kill from a seed, like the chaos tests do; the horizon
    // keeps it well inside the run.
    let (seed, plan) = (0u64..)
        .map(|seed| (seed, ChaosPlan::seeded(seed, 2, 1, 64)))
        .find(|(_, p)| matches!(p.faults()[0], ProcessFault::PanicAggregator { .. }))
        .unwrap();
    let mut cfg = GravelConfig::small(2, input.table_len);
    cfg.chaos = Some(Arc::new(plan));
    cfg.transport = TransportKind::Unreliable(corrupt_mixed(77));
    let rt = GravelRuntime::new(cfg);
    gups::run_live(&rt, &input);
    assert!(gups::verify_live(&rt, &input), "seed {seed}: histogram wrong");
    for (i, expect) in baseline.iter().enumerate() {
        assert_eq!(
            &rt.heap(i).snapshot(),
            expect,
            "seed {seed}: heap {i} not bit-exact"
        );
    }
    let stats = rt.shutdown().expect("restart absorbed the kill");
    assert_eq!(stats.ha.restarts, 1, "seed {seed}");
    assert!(stats.faults.total_corruptions() > 0);
    assert_eq!(stats.total_quarantined(), 0);
    assert_eq!(stats.total_offloaded(), stats.total_applied());
}

#[test]
fn pagerank_is_bit_exact_under_corruption() {
    let g = gen::cage15_like(96, 5);
    let damping = pagerank::default_damping();
    let mut cfg = GravelConfig::small(3, 64);
    // The graph is small: force tiny frames and a hot corruption rate
    // so the mix reliably fires inside the short run.
    cfg.node_queue_bytes = 64;
    cfg.transport = TransportKind::Unreliable(FaultConfig {
        drop: 0.02,
        ..FaultConfig::corrupting(99, 0.10)
    });
    let rt = GravelRuntime::new(cfg);
    let live = pagerank::run_live(&rt, &g, 3, damping);
    assert_eq!(live, reference::pagerank(&g, 3, damping));
    let stats = rt.shutdown().expect("clean shutdown under corruption");
    assert!(stats.faults.total_corruptions() > 0);
    assert_eq!(stats.total_quarantined(), 0);
}

/// Satellite (f): strict ledger reconciliation. Data-plane mangle
/// counters increment only when the inner fabric accepts the mangled
/// frame, so every one of them must reappear in exactly one receiver
/// counter: flips/garbage as `corrupt_dropped` or `truncated` (a flip
/// in the length field classifies as truncation — the sum is what is
/// conserved), truncations likewise, misroutes as `misrouted`. Ack
/// corruption is counted at injection on the best-effort ack plane, so
/// receivers reconcile `<=` there.
#[test]
fn injected_corruption_reconciles_with_receiver_counters() {
    let input = gups::GupsInput {
        updates: 20_000,
        table_len: 256,
        seed: 3,
    };
    let mut cfg = GravelConfig::small(3, input.table_len);
    cfg.node_queue_bytes = 64; // tiny frames → many fault rolls
    cfg.transport = TransportKind::Unreliable(FaultConfig::corrupting(1_234, 0.02));
    let rt = GravelRuntime::new(cfg);
    gups::run_live(&rt, &input);
    assert!(gups::verify_live(&rt, &input));
    let stats = rt.shutdown().expect("clean shutdown");
    let f = &stats.faults;
    assert!(f.total_corruptions() > 0, "no corruption fired");
    assert!(f.misrouted_data > 0, "no misroute fired");
    let rx_refused: u64 = stats
        .nodes
        .iter()
        .map(|n| n.net.corrupt_dropped + n.net.truncated)
        .sum();
    assert_eq!(
        f.total_corruptions(),
        rx_refused,
        "every mangled frame the fabric accepted must be refused at a receiver"
    );
    let rx_misrouted: u64 = stats.nodes.iter().map(|n| n.net.misrouted).sum();
    assert_eq!(f.misrouted_data, rx_misrouted);
    let rx_ack: u64 = stats.nodes.iter().map(|n| n.net.ack_corrupt_dropped).sum();
    assert!(
        rx_ack <= f.corrupted_acks,
        "receivers cannot refuse more acks than were corrupted"
    );
    // All of the above were *integrity* failures; none may reach the
    // semantic layer.
    assert_eq!(stats.total_quarantined(), 0);
    assert_eq!(stats.total_offloaded(), stats.total_applied());
}

#[test]
fn clean_traffic_quarantines_nothing() {
    let input = gups_input();
    let rt = GravelRuntime::new(GravelConfig::small(2, input.table_len));
    gups::run_live(&rt, &input);
    assert!(gups::verify_live(&rt, &input));
    let stats = rt.shutdown().expect("clean shutdown");
    assert_eq!(stats.total_integrity_drops(), 0);
    assert_eq!(stats.total_quarantined(), 0);
    assert!(stats.faults.is_clean());
}

#[test]
fn integrity_off_ablation_still_delivers_clean_traffic() {
    let input = gups_input();
    let baseline = baseline_heaps(&input, 2);
    let mut cfg = GravelConfig::small(2, input.table_len);
    cfg.wire_integrity = WireIntegrity::Off;
    let rt = GravelRuntime::new(cfg);
    gups::run_live(&rt, &input);
    assert!(gups::verify_live(&rt, &input));
    for (i, expect) in baseline.iter().enumerate() {
        assert_eq!(&rt.heap(i).snapshot(), expect, "heap {i} not bit-exact");
    }
    let stats = rt.shutdown().expect("clean shutdown");
    assert_eq!(stats.total_integrity_drops(), 0);
    assert_eq!(stats.total_quarantined(), 0);
}
