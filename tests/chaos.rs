//! Chaos acceptance tests (DESIGN.md §11): seeded process faults against
//! full application runs. The headline property is the issue's acceptance
//! criterion — a GUPS run that loses one node's aggregator mid-run
//! completes bit-exact versus a fault-free run, with the restart and
//! recovery-latency counters visible in the telemetry snapshot.

use std::sync::Arc;

use gravel_apps::graph::{gen, reference};
use gravel_apps::{gups, pagerank, sssp};
use gravel_core::{
    ChaosPlan, FaultConfig, GravelConfig, GravelRuntime, ProcessFault, TransportKind,
};
use gravel_simt::LaneVec;

fn gups_input() -> gups::GupsInput {
    gups::GupsInput {
        updates: 6_000,
        table_len: 512,
        seed: 9,
    }
}

/// Fault-free GUPS baseline: the full per-node heap contents.
fn baseline_heaps(input: &gups::GupsInput, nodes: usize) -> Vec<Vec<u64>> {
    let rt = GravelRuntime::new(GravelConfig::small(nodes, input.table_len));
    gups::run_live(&rt, input);
    let heaps = (0..nodes).map(|i| rt.heap(i).snapshot()).collect();
    rt.shutdown().expect("fault-free run is clean");
    heaps
}

/// First seed whose derived single-kill plan matches `want`.
fn seeded_plan_slots(
    nodes: usize,
    slots: usize,
    horizon: u64,
    want: impl Fn(&ProcessFault) -> bool,
) -> (u64, ChaosPlan) {
    (0u64..)
        .map(|seed| (seed, ChaosPlan::seeded(seed, nodes, slots, horizon)))
        .find(|(_, p)| want(&p.faults()[0]))
        .unwrap()
}

fn seeded_plan(
    nodes: usize,
    horizon: u64,
    want: impl Fn(&ProcessFault) -> bool,
) -> (u64, ChaosPlan) {
    seeded_plan_slots(nodes, 1, horizon, want)
}

#[test]
fn gups_with_seeded_aggregator_kill_is_bit_exact() {
    let input = gups_input();
    let baseline = baseline_heaps(&input, 2);

    // Derive the kill from a seed, like the sweep harness does; keep the
    // horizon well under the ~3000 messages each aggregator drains so the
    // fault is guaranteed to fire mid-run.
    let (seed, plan) = seeded_plan(2, 64, |f| matches!(f, ProcessFault::PanicAggregator { .. }));
    let mut cfg = GravelConfig::small(2, input.table_len);
    cfg.chaos = Some(Arc::new(plan));
    let rt = GravelRuntime::new(cfg);
    let issued = gups::run_live(&rt, &input);
    assert_eq!(issued, input.updates as u64);

    assert!(
        gups::verify_live(&rt, &input),
        "seed {seed}: histogram wrong"
    );
    for (i, expect) in baseline.iter().enumerate() {
        assert_eq!(
            &rt.heap(i).snapshot(),
            expect,
            "seed {seed}: heap {i} not bit-exact"
        );
    }

    let snap = rt.telemetry_snapshot();
    assert_eq!(
        snap.counter("ha.restarts"),
        1,
        "exactly one supervised restart"
    );
    let recovery = snap
        .histogram("ha.recovery_ns")
        .expect("recovery latency recorded");
    assert_eq!(recovery.count, 1);
    let stats = rt.shutdown().expect("restart absorbed the kill");
    assert_eq!(stats.ha.restarts, 1);
    assert_eq!(stats.total_offloaded(), stats.total_applied());
}

#[test]
fn gups_with_seeded_netthread_kill_is_bit_exact() {
    let input = gups_input();
    let baseline = baseline_heaps(&input, 2);

    let (seed, plan) = seeded_plan(2, 64, |f| matches!(f, ProcessFault::PanicNet { .. }));
    let mut cfg = GravelConfig::small(2, input.table_len);
    cfg.chaos = Some(Arc::new(plan));
    let rt = GravelRuntime::new(cfg);
    gups::run_live(&rt, &input);

    assert!(
        gups::verify_live(&rt, &input),
        "seed {seed}: histogram wrong"
    );
    for (i, expect) in baseline.iter().enumerate() {
        assert_eq!(
            &rt.heap(i).snapshot(),
            expect,
            "seed {seed}: heap {i} not bit-exact"
        );
    }
    let stats = rt.shutdown().expect("restart absorbed the kill");
    assert_eq!(stats.ha.restarts, 1);
}

#[test]
fn epoch_checkpoint_recovers_a_reset_node_exactly() {
    // Checkpointed GUPS, then simulate losing node 1's memory after the
    // last epoch cut and restore it: the table must come back exactly.
    let input = gups_input();
    let mut cfg = GravelConfig::small(2, input.table_len);
    cfg.ha.checkpoint = true;
    let rt = GravelRuntime::new(cfg);
    let mut progress = gups::GupsProgress::default();
    gups::run_live_checkpointed(&rt, &input, &mut progress);
    assert!(gups::verify_live(&rt, &input));

    let before = rt.heap(1).snapshot();
    rt.heap(1).reset(0); // node 1 "dies"
    assert_ne!(
        rt.heap(1).snapshot(),
        before,
        "reset visibly destroyed state"
    );
    rt.recover_node(1).expect("epoch restore");
    assert_eq!(rt.heap(1).snapshot(), before, "recovery is exact");
    assert!(gups::verify_live(&rt, &input));

    let stats = rt.shutdown().expect("clean shutdown");
    assert_eq!(stats.ha.epochs, 2, "one cut per superstep");
    assert_eq!(stats.ha.recoveries, 1);
}

// ---------------------------------------------------------------------------
// Lane sweep (DESIGN.md §12): the sharded multi-lane aggregation pipeline
// must keep the single-lane delivery guarantees — exactly-once apply and
// per-flow ordering — at every lane count, under link faults and seeded
// process kills alike. Destination-hash sharding pins each destination to
// one lane, so every (src, lane) flow keeps one go-back-N sequence space.
// ---------------------------------------------------------------------------

fn lane_cfg(nodes: usize, heap: usize, lanes: usize) -> GravelConfig {
    let mut cfg = GravelConfig::small(nodes, heap);
    cfg.aggregator_threads = lanes;
    cfg
}

/// Exactly-once under a lossy link, every lane count: GUPS increments are
/// not idempotent, so a duplicated or double-applied message shows up as
/// a wrong count, and a lost one as a shortfall. Heaps must be bit-exact
/// against a fault-free single-lane run.
#[test]
fn lane_sweep_gups_is_bit_exact_under_mixed_link_faults() {
    let input = gups_input();
    let baseline = baseline_heaps(&input, 3);
    for lanes in [1usize, 2, 4] {
        let mut cfg = lane_cfg(3, input.table_len, lanes);
        cfg.transport = TransportKind::Unreliable(FaultConfig::mixed(1_000 + lanes as u64, 0.10));
        let rt = GravelRuntime::new(cfg);
        let issued = gups::run_live(&rt, &input);
        assert_eq!(issued, input.updates as u64, "lanes {lanes}");
        assert!(
            gups::verify_live(&rt, &input),
            "lanes {lanes}: histogram wrong"
        );
        for (i, expect) in baseline.iter().enumerate() {
            assert_eq!(
                &rt.heap(i).snapshot(),
                expect,
                "lanes {lanes}: heap {i} not bit-exact"
            );
        }
        let stats = rt.shutdown().expect("clean shutdown under faults");
        assert!(
            !stats.faults.is_clean(),
            "lanes {lanes}: fault mix never fired"
        );
        assert_eq!(
            stats.total_offloaded(),
            stats.total_applied(),
            "lanes {lanes}: exactly-once accounting"
        );
    }
}

/// Per-flow ordering, every lane count: each (src node, GPU lane) flow
/// puts a strictly increasing value to its own private slot each round,
/// with no quiesce between rounds and a fault mix forcing drops and
/// reordering underneath. PUT is last-writer-wins, so if the sharded
/// pipeline (or go-back-N under retransmission) ever let a later round
/// overtake an earlier one, a stale value would survive in the heap.
#[test]
fn lane_sweep_preserves_per_flow_put_order_under_faults() {
    const ROUNDS: u64 = 40;
    let nodes = 3usize;
    for lanes in [1usize, 2, 4] {
        let mut cfg = lane_cfg(nodes, 64, lanes);
        // Strict per-flow PUT ordering requires a static destination→lane
        // mask: a governor transition remaps destinations and opens a
        // bounded reorder window (DESIGN.md §17), which last-writer-wins
        // PUT streams are exactly the workload that cannot tolerate.
        cfg.lane_governor = None;
        let wg = cfg.wg_size;
        cfg.heap_len = nodes * wg; // one private slot per (src, lane) flow
        cfg.transport = TransportKind::Unreliable(FaultConfig::mixed(7_700 + lanes as u64, 0.10));
        let heap = cfg.heap_len;
        let rt = GravelRuntime::new(cfg);
        for round in 0..ROUNDS {
            for me in 0..nodes {
                rt.dispatch(me, 1, |ctx| {
                    let n = ctx.wg.wg_size();
                    let me = ctx.my_node() as u64;
                    let k = ctx.nodes() as u64;
                    // Lane l writes its flow's slot on node (me + l) % k.
                    let dests = LaneVec::from_fn(n, |l| ((me + l as u64) % k) as u32);
                    let addrs = LaneVec::from_fn(n, |l| me * n as u64 + l as u64);
                    let vals = LaneVec::from_fn(n, |l| round * 10_000 + me * 100 + l as u64);
                    ctx.shmem_put(&dests, &addrs, &vals);
                });
            }
        }
        rt.quiesce();
        // Only the final round's value may survive in any flow's slot.
        for me in 0..nodes as u64 {
            for l in 0..wg as u64 {
                let dest = ((me + l) % nodes as u64) as usize;
                let addr = me * wg as u64 + l;
                assert!((addr as usize) < heap);
                assert_eq!(
                    rt.heap(dest).load(addr),
                    (ROUNDS - 1) * 10_000 + me * 100 + l,
                    "lanes {lanes}: flow (src {me}, lane {l}) applied out of order"
                );
            }
        }
        rt.shutdown().expect("clean shutdown under faults");
    }
}

/// Seeded chaos kill with lanes > 1: a randomly chosen aggregator lane
/// panics mid-run, the supervisor restarts it, and the run still ends
/// bit-exact with exactly-once accounting.
#[test]
fn lane_sweep_survives_seeded_aggregator_kill() {
    let input = gups_input();
    let baseline = baseline_heaps(&input, 2);
    for lanes in [2usize, 4] {
        // With 2 nodes only shards {0 % lanes, 1 % lanes} carry traffic;
        // a kill scheduled on an idle lane would never fire, so keep
        // searching seeds until the chosen lane is one that drains.
        let (seed, plan) = seeded_plan_slots(
            2,
            lanes,
            64,
            |f| matches!(f, ProcessFault::PanicAggregator { slot, .. } if (*slot as usize) < 2),
        );
        let mut cfg = lane_cfg(2, input.table_len, lanes);
        cfg.chaos = Some(Arc::new(plan));
        let rt = GravelRuntime::new(cfg);
        gups::run_live(&rt, &input);
        assert!(
            gups::verify_live(&rt, &input),
            "lanes {lanes} seed {seed}: histogram wrong"
        );
        for (i, expect) in baseline.iter().enumerate() {
            assert_eq!(
                &rt.heap(i).snapshot(),
                expect,
                "lanes {lanes} seed {seed}: heap {i} not bit-exact"
            );
        }
        let stats = rt.shutdown().expect("restart absorbed the kill");
        assert_eq!(stats.ha.restarts, 1, "lanes {lanes} seed {seed}");
        assert_eq!(stats.total_offloaded(), stats.total_applied());
    }
}

// ---------------------------------------------------------------------------
// Governed lane sweep (DESIGN.md §17): the adaptive lane governor moves the
// destination→lane routing mask at runtime. Transitions open a bounded
// reorder window but must never duplicate or lose a message — commuting
// workloads (GUPS INC, PageRank accumulate) stay bit-exact through any
// interleaving of collapse/expand transitions and process kills. These
// tests flap the mask far harder than the real governor's hysteresis ever
// would, from a background thread, while a seeded kill fires mid-run.
// ---------------------------------------------------------------------------

/// Governed config whose automatic decider is parked far in the future,
/// so the test thread owns the mask: rings start collapsed exactly as
/// under the live governor, but every transition is test-driven.
fn flapped_cfg(nodes: usize, heap: usize, lanes: usize) -> GravelConfig {
    let mut cfg = lane_cfg(nodes, heap, lanes);
    cfg.lane_governor = Some(gravel_core::GovernorConfig {
        decide_every: std::time::Duration::from_secs(3600),
        ..Default::default()
    });
    cfg
}

/// Cycle every node's active-lane mask through collapse/expand
/// transitions until `stop` is set.
fn spawn_mask_flapper(
    rt: &GravelRuntime,
    stop: &Arc<std::sync::atomic::AtomicBool>,
) -> std::thread::JoinHandle<u64> {
    use std::sync::atomic::Ordering::Relaxed;
    let nodes: Vec<_> = (0..rt.nodes()).map(|i| rt.node(i).clone()).collect();
    let stop = stop.clone();
    std::thread::spawn(move || {
        let cycle = [2usize, 4, 1, 3];
        let mut flips = 0u64;
        while !stop.load(Relaxed) {
            for n in &nodes {
                n.queue.set_active_lanes(cycle[flips as usize % cycle.len()]);
            }
            flips += 1;
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        flips
    })
}

/// GUPS under mask flapping plus a seeded aggregator-lane kill: INC
/// commutes, so no matter how the transitions interleave with the kill
/// and restart, the heaps must end bit-exact with exactly-once
/// accounting. (A mid-split mask move once routed one GPU lane into two
/// shards — a duplicate — or into none — a loss; this is the regression
/// test that pins the snapshot-once produce split.)
#[test]
fn governed_gups_is_bit_exact_under_mask_flapping_and_aggregator_kill() {
    use std::sync::atomic::AtomicBool;
    let input = gups_input();
    let baseline = baseline_heaps(&input, 2);
    let lanes = 4usize;
    // Kill lane 0: it is never parked, so the kill always fires.
    let (seed, plan) = seeded_plan_slots(
        2,
        lanes,
        64,
        |f| matches!(f, ProcessFault::PanicAggregator { slot: 0, .. }),
    );
    let mut cfg = flapped_cfg(2, input.table_len, lanes);
    cfg.chaos = Some(Arc::new(plan));
    let rt = GravelRuntime::new(cfg);
    let stop = Arc::new(AtomicBool::new(false));
    let flapper = spawn_mask_flapper(&rt, &stop);
    gups::run_live(&rt, &input);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let flips = flapper.join().unwrap();
    assert!(flips > 0, "mask flapper never ran");
    assert!(
        gups::verify_live(&rt, &input),
        "seed {seed}: histogram wrong under mask flapping"
    );
    for (i, expect) in baseline.iter().enumerate() {
        assert_eq!(
            &rt.heap(i).snapshot(),
            expect,
            "seed {seed}: heap {i} not bit-exact under mask flapping"
        );
    }
    let stats = rt.shutdown().expect("restart absorbed the kill");
    assert_eq!(stats.ha.restarts, 1, "seed {seed}");
    assert_eq!(stats.total_offloaded(), stats.total_applied());
}

/// PageRank under mask flapping plus a seeded network-thread kill: the
/// accumulate path commutes like GUPS INC, and the net-thread restart
/// exercises the receiver half (per-(src, lane) sequence expectations
/// survive while the set of live sender flows is itself shifting).
#[test]
fn governed_pagerank_is_bit_exact_under_mask_flapping_and_net_kill() {
    use std::sync::atomic::AtomicBool;
    let g = gen::cage15_like(96, 5);
    let damping = pagerank::default_damping();
    let mut cfg = flapped_cfg(3, 64, 4);
    cfg.chaos = Some(Arc::new(ChaosPlan::new(vec![ProcessFault::PanicNet {
        node: 1,
        at_step: 5,
    }])));
    let rt = GravelRuntime::new(cfg);
    let stop = Arc::new(AtomicBool::new(false));
    let flapper = spawn_mask_flapper(&rt, &stop);
    let live = pagerank::run_live(&rt, &g, 3, damping);
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let flips = flapper.join().unwrap();
    assert!(flips > 0, "mask flapper never ran");
    assert_eq!(live, reference::pagerank(&g, 3, damping));
    let stats = rt.shutdown().expect("restart absorbed the kill");
    assert_eq!(stats.ha.restarts, 1);
}

#[test]
fn checkpointed_pagerank_survives_aggregator_kill() {
    // Both robustness layers at once: per-iteration epoch cuts *and* a
    // supervised restart of a killed aggregator, still bit-exact.
    let g = gen::cage15_like(96, 5);
    let damping = pagerank::default_damping();
    let mut cfg = GravelConfig::small(3, 64);
    cfg.ha.checkpoint = true;
    cfg.chaos = Some(Arc::new(ChaosPlan::new(vec![
        ProcessFault::PanicAggregator {
            node: 1,
            slot: 0,
            at_step: 5,
        },
    ])));
    let rt = GravelRuntime::new(cfg);
    let mut progress = pagerank::PageRankProgress::default();
    let live = pagerank::run_live_checkpointed(&rt, &g, 3, damping, &mut progress);
    assert_eq!(live, reference::pagerank(&g, 3, damping));
    let stats = rt.shutdown().expect("restart absorbed the kill");
    assert_eq!(stats.ha.restarts, 1);
    assert_eq!(stats.ha.epochs, 3);
}

#[test]
fn checkpointed_sssp_survives_aggregator_kill() {
    // SSSP's progress (distances + frontier) rides the same epoch-cut
    // machinery as GUPS/PageRank: a mid-run aggregator kill is absorbed
    // by the supervisor and the distances still match Dijkstra exactly.
    let g = gen::hugebubbles_like(144, 11);
    let mut cfg = GravelConfig::small(3, 64);
    cfg.ha.checkpoint = true;
    cfg.chaos = Some(Arc::new(ChaosPlan::new(vec![
        ProcessFault::PanicAggregator {
            node: 1,
            slot: 0,
            at_step: 5,
        },
    ])));
    let mut relax_id = 0;
    let rt = GravelRuntime::with_handlers(cfg, |reg| {
        relax_id = sssp::register(reg);
    });
    let mut progress = sssp::SsspProgress::default();
    let live = sssp::run_live_checkpointed(&rt, &g, 0, relax_id, &mut progress, None);
    assert_eq!(live, reference::sssp(&g, 0));
    assert!(progress.frontier.is_empty(), "run converged");
    assert!(progress.round > 0);
    let stats = rt.shutdown().expect("restart absorbed the kill");
    assert_eq!(stats.ha.restarts, 1);
    assert_eq!(stats.ha.epochs, progress.round, "one cut per superstep");
}
