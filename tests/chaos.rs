//! Chaos acceptance tests (DESIGN.md §11): seeded process faults against
//! full application runs. The headline property is the issue's acceptance
//! criterion — a GUPS run that loses one node's aggregator mid-run
//! completes bit-exact versus a fault-free run, with the restart and
//! recovery-latency counters visible in the telemetry snapshot.

use std::sync::Arc;

use gravel_apps::{gups, pagerank};
use gravel_apps::graph::{gen, reference};
use gravel_core::{ChaosPlan, GravelConfig, GravelRuntime, ProcessFault};

fn gups_input() -> gups::GupsInput {
    gups::GupsInput { updates: 6_000, table_len: 512, seed: 9 }
}

/// Fault-free GUPS baseline: the full per-node heap contents.
fn baseline_heaps(input: &gups::GupsInput, nodes: usize) -> Vec<Vec<u64>> {
    let rt = GravelRuntime::new(GravelConfig::small(nodes, input.table_len));
    gups::run_live(&rt, input);
    let heaps = (0..nodes).map(|i| rt.heap(i).snapshot()).collect();
    rt.shutdown().expect("fault-free run is clean");
    heaps
}

/// First seed whose derived single-kill plan matches `want`.
fn seeded_plan(
    nodes: usize,
    horizon: u64,
    want: impl Fn(&ProcessFault) -> bool,
) -> (u64, ChaosPlan) {
    (0u64..)
        .map(|seed| (seed, ChaosPlan::seeded(seed, nodes, 1, horizon)))
        .find(|(_, p)| want(&p.faults()[0]))
        .unwrap()
}

#[test]
fn gups_with_seeded_aggregator_kill_is_bit_exact() {
    let input = gups_input();
    let baseline = baseline_heaps(&input, 2);

    // Derive the kill from a seed, like the sweep harness does; keep the
    // horizon well under the ~3000 messages each aggregator drains so the
    // fault is guaranteed to fire mid-run.
    let (seed, plan) =
        seeded_plan(2, 64, |f| matches!(f, ProcessFault::PanicAggregator { .. }));
    let mut cfg = GravelConfig::small(2, input.table_len);
    cfg.chaos = Some(Arc::new(plan));
    let rt = GravelRuntime::new(cfg);
    let issued = gups::run_live(&rt, &input);
    assert_eq!(issued, input.updates as u64);

    assert!(gups::verify_live(&rt, &input), "seed {seed}: histogram wrong");
    for (i, expect) in baseline.iter().enumerate() {
        assert_eq!(&rt.heap(i).snapshot(), expect, "seed {seed}: heap {i} not bit-exact");
    }

    let snap = rt.telemetry_snapshot();
    assert_eq!(snap.counter("ha.restarts"), 1, "exactly one supervised restart");
    let recovery = snap.histogram("ha.recovery_ns").expect("recovery latency recorded");
    assert_eq!(recovery.count, 1);
    let stats = rt.shutdown().expect("restart absorbed the kill");
    assert_eq!(stats.ha.restarts, 1);
    assert_eq!(stats.total_offloaded(), stats.total_applied());
}

#[test]
fn gups_with_seeded_netthread_kill_is_bit_exact() {
    let input = gups_input();
    let baseline = baseline_heaps(&input, 2);

    let (seed, plan) = seeded_plan(2, 64, |f| matches!(f, ProcessFault::PanicNet { .. }));
    let mut cfg = GravelConfig::small(2, input.table_len);
    cfg.chaos = Some(Arc::new(plan));
    let rt = GravelRuntime::new(cfg);
    gups::run_live(&rt, &input);

    assert!(gups::verify_live(&rt, &input), "seed {seed}: histogram wrong");
    for (i, expect) in baseline.iter().enumerate() {
        assert_eq!(&rt.heap(i).snapshot(), expect, "seed {seed}: heap {i} not bit-exact");
    }
    let stats = rt.shutdown().expect("restart absorbed the kill");
    assert_eq!(stats.ha.restarts, 1);
}

#[test]
fn epoch_checkpoint_recovers_a_reset_node_exactly() {
    // Checkpointed GUPS, then simulate losing node 1's memory after the
    // last epoch cut and restore it: the table must come back exactly.
    let input = gups_input();
    let mut cfg = GravelConfig::small(2, input.table_len);
    cfg.ha.checkpoint = true;
    let rt = GravelRuntime::new(cfg);
    let mut progress = gups::GupsProgress::default();
    gups::run_live_checkpointed(&rt, &input, &mut progress);
    assert!(gups::verify_live(&rt, &input));

    let before = rt.heap(1).snapshot();
    rt.heap(1).reset(0); // node 1 "dies"
    assert_ne!(rt.heap(1).snapshot(), before, "reset visibly destroyed state");
    rt.recover_node(1).expect("epoch restore");
    assert_eq!(rt.heap(1).snapshot(), before, "recovery is exact");
    assert!(gups::verify_live(&rt, &input));

    let stats = rt.shutdown().expect("clean shutdown");
    assert_eq!(stats.ha.epochs, 2, "one cut per superstep");
    assert_eq!(stats.ha.recoveries, 1);
}

#[test]
fn checkpointed_pagerank_survives_aggregator_kill() {
    // Both robustness layers at once: per-iteration epoch cuts *and* a
    // supervised restart of a killed aggregator, still bit-exact.
    let g = gen::cage15_like(96, 5);
    let damping = pagerank::default_damping();
    let mut cfg = GravelConfig::small(3, 64);
    cfg.ha.checkpoint = true;
    cfg.chaos = Some(Arc::new(ChaosPlan::new(vec![ProcessFault::PanicAggregator {
        node: 1,
        slot: 0,
        at_step: 5,
    }])));
    let rt = GravelRuntime::new(cfg);
    let mut progress = pagerank::PageRankProgress::default();
    let live = pagerank::run_live_checkpointed(&rt, &g, 3, damping, &mut progress);
    assert_eq!(live, reference::pagerank(&g, 3, damping));
    let stats = rt.shutdown().expect("restart absorbed the kill");
    assert_eq!(stats.ha.restarts, 1);
    assert_eq!(stats.ha.epochs, 3);
}
