//! Proof that the *whole* steady-state packet path — aggregation flush,
//! frame sealing, transport hand-off, and receive-side apply — runs
//! without heap allocation once the buffer arena and the per-lane
//! scratch are warm.
//!
//! `crates/pgas/tests/zero_alloc.rs` pins the single-thread decode loop;
//! this test pins the pipeline. The interesting allocations happen on
//! the *worker* threads (aggregator lanes, network threads), so the
//! counting allocator here is inverted relative to that test: the
//! driving test thread is exempted and every other thread in the
//! process is counted while the measurement window is armed. Worker
//! threads touch the allocator only through the packet path, so a
//! nonzero count is a packet-path regression, not harness noise.
//!
//! Methodology: warm the pipeline (arena buckets, per-destination queue
//! buffers, go-back-N deques, channel capacity) with a few full
//! send/quiesce rounds, then arm the counter for an identically-shaped
//! round. Steady state must allocate nothing per message on either the
//! PUT path (host offload → aggregate → seal → send → apply) or the GET
//! path (request → reply → pending-table completion); the budget below
//! allows a small constant for incidental one-offs but is two orders of
//! magnitude below one allocation per message.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use gravel_apps::gups;
use gravel_core::{GravelConfig, GravelRuntime};
use gravel_gq::Message;

/// Counting is armed globally for the measurement window…
static ARMED: AtomicBool = AtomicBool::new(false);

std::thread_local! {
    /// …and the driving test thread opts out: host-side call overhead
    /// (batch staging vectors, reply sinks) is API surface, not the
    /// packet path under test.
    static EXEMPT: Cell<bool> = const { Cell::new(false) };
}

struct WorkerCountingAlloc {
    allocs: AtomicU64,
}

impl WorkerCountingAlloc {
    fn count(&self) {
        if ARMED.load(Ordering::Relaxed) && !EXEMPT.try_with(|t| t.get()).unwrap_or(true) {
            self.allocs.fetch_add(1, Ordering::Relaxed);
        }
    }
}

unsafe impl GlobalAlloc for WorkerCountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count();
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.count();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: WorkerCountingAlloc = WorkerCountingAlloc {
    allocs: AtomicU64::new(0),
};

/// Run `f` with worker-thread allocations counted.
fn counted_workers<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = GLOBAL.allocs.load(Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let r = f();
    ARMED.store(false, Ordering::SeqCst);
    let after = GLOBAL.allocs.load(Ordering::SeqCst);
    (after - before, r)
}

/// One round of PUT traffic: `n` increments fanned across both nodes'
/// heaps, then a full quiesce so every packet has been applied (and
/// every arena buffer returned) before the round ends.
fn put_round(rt: &GravelRuntime, input: &gups::GupsInput, n: usize) {
    let dir = gups::directory(input, rt.nodes());
    let updates = gups::node_updates(input, rt.nodes(), 0);
    let msgs: Vec<Message> = (0..n)
        .map(|i| {
            let r = dir.route(updates[i % updates.len()]);
            Message::inc(r.dest, r.offset, 1)
        })
        .collect();
    rt.node(0).host_send_batch(&msgs);
    rt.quiesce();
}

/// Sum of packets flushed by every node's aggregation layer so far.
/// Debug builds deliberately allocate once per *applied* packet (the
/// `apply_packet` reference-decode cross-check under
/// `debug_assertions`); every flushed packet is applied exactly once,
/// so this is also the budget for that debug-only allocation.
fn total_agg_packets(rt: &GravelRuntime) -> u64 {
    (0..rt.nodes()).map(|i| rt.node(i).stats().agg.packets).sum()
}

/// Allocation budget for a window that moved `packets` packets: zero
/// per message in release; in debug builds the known per-packet
/// reference check is budgeted out, nothing else.
fn window_budget(packets: u64, slack: u64) -> u64 {
    if cfg!(debug_assertions) {
        packets + slack
    } else {
        slack
    }
}

#[test]
fn steady_state_packet_path_allocates_zero_per_message() {
    EXEMPT.with(|t| t.set(true));
    let input = gups::GupsInput {
        updates: 4_000,
        table_len: 512,
        seed: 17,
    };
    // Defaults carry the configuration under test: buffer_pool on,
    // tracing off, checkpointing off, one aggregator lane, reliable
    // in-process transport.
    let cfg = GravelConfig::small(2, input.table_len);
    assert!(cfg.buffer_pool, "arena must be on for the zero-alloc gate");
    let rt = GravelRuntime::new(cfg);

    // ---- PUT path -----------------------------------------------------
    const PUT_MSGS: usize = 8_000;
    for _ in 0..3 {
        put_round(&rt, &input, PUT_MSGS); // warm arena, queues, channels
    }
    let hits_before = rt.telemetry_snapshot().counter("node0.pool.hits");
    let packets_before = total_agg_packets(&rt);
    let (put_allocs, _) = counted_workers(|| put_round(&rt, &input, PUT_MSGS));
    let snap = rt.telemetry_snapshot();
    assert!(
        snap.counter("node0.pool.hits") > hits_before,
        "measured window must recycle arena buffers (pool.hits grew)"
    );
    let put_budget = window_budget(
        total_agg_packets(&rt) - packets_before,
        (PUT_MSGS / 100) as u64,
    );
    assert!(
        put_allocs <= put_budget,
        "PUT path allocated {put_allocs} times for {PUT_MSGS} messages \
         (budget {put_budget}) — steady state must be allocation-free \
         per message"
    );

    // ---- GET path -----------------------------------------------------
    const GETS: usize = 200;
    for _ in 0..50 {
        rt.host_get(0, 1, 3).expect("warmup GET"); // warm RPC queues
    }
    let packets_before = total_agg_packets(&rt);
    let (get_allocs, _) = counted_workers(|| {
        for i in 0..GETS {
            rt.host_get(0, 1, (i % 16) as u64).expect("measured GET");
        }
    });
    let get_budget = window_budget(
        total_agg_packets(&rt) - packets_before,
        (GETS / 10) as u64,
    );
    assert!(
        get_allocs <= get_budget,
        "GET path allocated {get_allocs} times for {GETS} round trips \
         (budget {get_budget}) — steady state must be allocation-free \
         per message"
    );

    rt.shutdown().expect("clean shutdown");
}
