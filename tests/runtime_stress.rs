//! Failure-injection and stress tests for the live runtime.

use gravel_core::{GravelConfig, GravelRuntime};
use gravel_simt::LaneVec;

/// Tiny queues: the ring wraps constantly, producers hit backpressure,
/// and nothing is lost.
#[test]
fn backpressure_through_tiny_queues() {
    let mut cfg = GravelConfig::small(2, 8);
    cfg.queue = gravel_gq::QueueConfig { slots: 2, lane_width: 64, rows: 4 };
    cfg.node_queue_bytes = 64; // two messages per packet
    let rt = GravelRuntime::new(cfg);
    for _ in 0..10 {
        rt.dispatch(0, 2, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
    }
    rt.quiesce();
    assert_eq!(rt.heap(1).load(0), 10 * 2 * 64);
    rt.shutdown();
}

/// Shutdown with messages still in flight must drain, not drop.
#[test]
fn shutdown_drains_in_flight_messages() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 4));
    rt.dispatch(0, 4, |ctx| {
        let n = ctx.wg.wg_size();
        let dests = LaneVec::splat(n, 1u32);
        let addrs = LaneVec::splat(n, 2u64);
        let vals = LaneVec::splat(n, 1u64);
        ctx.shmem_inc(&dests, &addrs, &vals);
    });
    // No explicit quiesce: shutdown must do it.
    let stats = rt.shutdown();
    assert_eq!(stats.total_offloaded(), stats.total_applied());
    assert_eq!(stats.total_offloaded(), 4 * 64);
}

/// Many tiny supersteps, each with a quiesce barrier.
#[test]
fn many_supersteps_with_barriers() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 2));
    for step in 0..50u64 {
        rt.dispatch((step % 2) as usize, 1, |ctx| {
            let n = ctx.wg.wg_size();
            let me = ctx.my_node();
            let dests = LaneVec::splat(n, 1 - me);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        rt.quiesce();
        let total = rt.heap(0).load(0) + rt.heap(1).load(0);
        assert_eq!(total, (step + 1) * 64, "after step {step}");
    }
    rt.shutdown();
}

/// A kernel that sends nothing leaves the cluster clean.
#[test]
fn empty_kernels_and_empty_quiesce() {
    let rt = GravelRuntime::new(GravelConfig::small(3, 4));
    rt.dispatch_all(2, |_ctx| {});
    rt.quiesce();
    let stats = rt.shutdown();
    assert_eq!(stats.total_offloaded(), 0);
}

/// Divergent senders: only a shifting subset of lanes sends each launch.
#[test]
fn divergent_masked_senders() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 64));
    let mut expected = 0u64;
    for round in 0..8usize {
        rt.dispatch(0, 1, |ctx| {
            let n = ctx.wg.wg_size();
            let mask = gravel_simt::Mask::from_fn(n, |l| l % (round + 2) == 0);
            ctx.masked(&mask.clone(), |ctx| {
                let dests = LaneVec::splat(n, 1u32);
                let addrs = LaneVec::splat(n, round as u64);
                let vals = LaneVec::splat(n, 1u64);
                ctx.shmem_inc(&dests, &addrs, &vals);
            });
        });
        expected += (0..64).filter(|l| l % (round + 2) == 0).count() as u64;
    }
    rt.quiesce();
    let got: u64 = (0..8).map(|r| rt.heap(1).load(r)).sum();
    assert_eq!(got, expected);
    rt.shutdown();
}

/// Mixed op classes interleaved: PUTs, INCs and active messages in one
/// kernel, totals exact.
#[test]
fn mixed_operation_classes() {
    let rt = GravelRuntime::with_handlers(GravelConfig::small(2, 16), |reg| {
        reg.register(gravel_pgas::relax_min_handler());
    });
    rt.heap(1).store(9, 1_000_000);
    rt.dispatch(0, 1, |ctx| {
        let n = ctx.wg.wg_size();
        let dests = LaneVec::splat(n, 1u32);
        let gids = ctx.wg.global_ids();
        // PUT a marker, INC a counter, relax a distance — all per lane.
        ctx.shmem_put(&dests, &LaneVec::splat(n, 8u64), &LaneVec::splat(n, 7u64));
        ctx.shmem_inc(&dests, &LaneVec::splat(n, 0u64), &LaneVec::splat(n, 1u64));
        let relax_vals = LaneVec::from_fn(n, |l| 500 + gids.get(l) as u64);
        ctx.shmem_am(0, &dests, &LaneVec::splat(n, 9u64), &relax_vals);
    });
    rt.quiesce();
    assert_eq!(rt.heap(1).load(8), 7);
    assert_eq!(rt.heap(1).load(0), 64);
    assert_eq!(rt.heap(1).load(9), 500); // min over 500..564
    rt.shutdown();
}

/// Eight in-process nodes (the paper's cluster size) all-to-all.
#[test]
fn eight_node_all_to_all() {
    let nodes = 8;
    let rt = GravelRuntime::new(GravelConfig::small(nodes, nodes));
    rt.dispatch_all(1, |ctx| {
        let n = ctx.wg.wg_size();
        let me = ctx.my_node();
        let k = ctx.nodes() as u32;
        let dests = LaneVec::from_fn(n, |l| (l as u32) % k);
        let addrs = LaneVec::splat(n, me as u64);
        let vals = LaneVec::splat(n, 1u64);
        ctx.shmem_inc(&dests, &addrs, &vals);
    });
    rt.quiesce();
    // Every node received 64/8 = 8 increments from each of 8 sources at
    // address = source id.
    for dest in 0..nodes {
        for src in 0..nodes {
            assert_eq!(rt.heap(dest).load(src as u64), 8, "dest {dest} src {src}");
        }
    }
    let stats = rt.shutdown();
    assert!((stats.remote_fraction() - 0.875).abs() < 1e-9);
}

/// Two aggregator threads drain the same queue without losing or
/// duplicating messages (the paper's aggregator-thread-count knob).
#[test]
fn two_aggregator_threads_are_exact() {
    let mut cfg = GravelConfig::small(2, 8);
    cfg.aggregator_threads = 2;
    let rt = GravelRuntime::new(cfg);
    for _ in 0..6 {
        rt.dispatch(0, 2, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 3u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
    }
    rt.quiesce();
    assert_eq!(rt.heap(1).load(3), 6 * 2 * 64);
    let stats = rt.shutdown();
    assert_eq!(stats.total_offloaded(), stats.total_applied());
    // Both aggregator slots contributed packets (probabilistically; at
    // minimum the totals are conserved).
    assert_eq!(stats.nodes[0].agg.messages, 6 * 2 * 64);
}

/// A corrupted/misrouted message (out-of-range address) is dropped by the
/// network thread without panicking, and quiescence still completes.
#[test]
fn malformed_message_does_not_wedge_the_cluster() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 4));
    // Inject a PUT far beyond node 1's 4-element heap.
    rt.node(0).host_send(gravel_gq::Message::put(1, 9999, 7));
    // And a healthy one after it.
    rt.node(0).host_send(gravel_gq::Message::put(1, 2, 7));
    rt.quiesce();
    assert_eq!(rt.heap(1).load(2), 7);
    let stats = rt.shutdown();
    assert_eq!(stats.total_offloaded(), 2);
    assert_eq!(stats.total_applied(), 2); // dropped counts as disposed
}
