//! Failure-injection and stress tests for the live runtime.

use std::time::Duration;

use gravel_core::{FaultConfig, GravelConfig, GravelRuntime, RuntimeStats, TransportKind};
use gravel_simt::LaneVec;

/// Tiny queues: the ring wraps constantly, producers hit backpressure,
/// and nothing is lost.
#[test]
fn backpressure_through_tiny_queues() {
    let mut cfg = GravelConfig::small(2, 8);
    cfg.queue = gravel_gq::QueueConfig { slots: 2, lane_width: 64, rows: 4 };
    cfg.node_queue_bytes = 64; // two messages per packet
    let rt = GravelRuntime::new(cfg);
    for _ in 0..10 {
        rt.dispatch(0, 2, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
    }
    rt.quiesce();
    assert_eq!(rt.heap(1).load(0), 10 * 2 * 64);
    rt.shutdown().expect("clean shutdown");
}

/// Shutdown with messages still in flight must drain, not drop.
#[test]
fn shutdown_drains_in_flight_messages() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 4));
    rt.dispatch(0, 4, |ctx| {
        let n = ctx.wg.wg_size();
        let dests = LaneVec::splat(n, 1u32);
        let addrs = LaneVec::splat(n, 2u64);
        let vals = LaneVec::splat(n, 1u64);
        ctx.shmem_inc(&dests, &addrs, &vals);
    });
    // No explicit quiesce: shutdown must do it.
    let stats = rt.shutdown().expect("clean shutdown");
    assert_eq!(stats.total_offloaded(), stats.total_applied());
    assert_eq!(stats.total_offloaded(), 4 * 64);
}

/// Many tiny supersteps, each with a quiesce barrier.
#[test]
fn many_supersteps_with_barriers() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 2));
    for step in 0..50u64 {
        rt.dispatch((step % 2) as usize, 1, |ctx| {
            let n = ctx.wg.wg_size();
            let me = ctx.my_node();
            let dests = LaneVec::splat(n, 1 - me);
            let addrs = LaneVec::splat(n, 0u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
        rt.quiesce();
        let total = rt.heap(0).load(0) + rt.heap(1).load(0);
        assert_eq!(total, (step + 1) * 64, "after step {step}");
    }
    rt.shutdown().expect("clean shutdown");
}

/// A kernel that sends nothing leaves the cluster clean.
#[test]
fn empty_kernels_and_empty_quiesce() {
    let rt = GravelRuntime::new(GravelConfig::small(3, 4));
    rt.dispatch_all(2, |_ctx| {});
    rt.quiesce();
    let stats = rt.shutdown().expect("clean shutdown");
    assert_eq!(stats.total_offloaded(), 0);
}

/// Divergent senders: only a shifting subset of lanes sends each launch.
#[test]
fn divergent_masked_senders() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 64));
    let mut expected = 0u64;
    for round in 0..8usize {
        rt.dispatch(0, 1, |ctx| {
            let n = ctx.wg.wg_size();
            let mask = gravel_simt::Mask::from_fn(n, |l| l % (round + 2) == 0);
            ctx.masked(&mask.clone(), |ctx| {
                let dests = LaneVec::splat(n, 1u32);
                let addrs = LaneVec::splat(n, round as u64);
                let vals = LaneVec::splat(n, 1u64);
                ctx.shmem_inc(&dests, &addrs, &vals);
            });
        });
        expected += (0..64).filter(|l| l % (round + 2) == 0).count() as u64;
    }
    rt.quiesce();
    let got: u64 = (0..8).map(|r| rt.heap(1).load(r)).sum();
    assert_eq!(got, expected);
    rt.shutdown().expect("clean shutdown");
}

/// Mixed op classes interleaved: PUTs, INCs and active messages in one
/// kernel, totals exact.
#[test]
fn mixed_operation_classes() {
    let rt = GravelRuntime::with_handlers(GravelConfig::small(2, 16), |reg| {
        reg.register(gravel_pgas::relax_min_handler());
    });
    rt.heap(1).store(9, 1_000_000);
    rt.dispatch(0, 1, |ctx| {
        let n = ctx.wg.wg_size();
        let dests = LaneVec::splat(n, 1u32);
        let gids = ctx.wg.global_ids();
        // PUT a marker, INC a counter, relax a distance — all per lane.
        ctx.shmem_put(&dests, &LaneVec::splat(n, 8u64), &LaneVec::splat(n, 7u64));
        ctx.shmem_inc(&dests, &LaneVec::splat(n, 0u64), &LaneVec::splat(n, 1u64));
        let relax_vals = LaneVec::from_fn(n, |l| 500 + gids.get(l) as u64);
        ctx.shmem_am(0, &dests, &LaneVec::splat(n, 9u64), &relax_vals);
    });
    rt.quiesce();
    assert_eq!(rt.heap(1).load(8), 7);
    assert_eq!(rt.heap(1).load(0), 64);
    assert_eq!(rt.heap(1).load(9), 500); // min over 500..564
    rt.shutdown().expect("clean shutdown");
}

/// Eight in-process nodes (the paper's cluster size) all-to-all.
#[test]
fn eight_node_all_to_all() {
    let nodes = 8;
    let rt = GravelRuntime::new(GravelConfig::small(nodes, nodes));
    rt.dispatch_all(1, |ctx| {
        let n = ctx.wg.wg_size();
        let me = ctx.my_node();
        let k = ctx.nodes() as u32;
        let dests = LaneVec::from_fn(n, |l| (l as u32) % k);
        let addrs = LaneVec::splat(n, me as u64);
        let vals = LaneVec::splat(n, 1u64);
        ctx.shmem_inc(&dests, &addrs, &vals);
    });
    rt.quiesce();
    // Every node received 64/8 = 8 increments from each of 8 sources at
    // address = source id.
    for dest in 0..nodes {
        for src in 0..nodes {
            assert_eq!(rt.heap(dest).load(src as u64), 8, "dest {dest} src {src}");
        }
    }
    let stats = rt.shutdown().expect("clean shutdown");
    assert!((stats.remote_fraction() - 0.875).abs() < 1e-9);
}

/// Two aggregator threads drain the same queue without losing or
/// duplicating messages (the paper's aggregator-thread-count knob).
#[test]
fn two_aggregator_threads_are_exact() {
    let mut cfg = GravelConfig::small(2, 8);
    cfg.aggregator_threads = 2;
    let rt = GravelRuntime::new(cfg);
    for _ in 0..6 {
        rt.dispatch(0, 2, |ctx| {
            let n = ctx.wg.wg_size();
            let dests = LaneVec::splat(n, 1u32);
            let addrs = LaneVec::splat(n, 3u64);
            let vals = LaneVec::splat(n, 1u64);
            ctx.shmem_inc(&dests, &addrs, &vals);
        });
    }
    rt.quiesce();
    assert_eq!(rt.heap(1).load(3), 6 * 2 * 64);
    let stats = rt.shutdown().expect("clean shutdown");
    assert_eq!(stats.total_offloaded(), stats.total_applied());
    // Both aggregator slots contributed packets (probabilistically; at
    // minimum the totals are conserved).
    assert_eq!(stats.nodes[0].agg.messages, 6 * 2 * 64);
}

// ---------------------------------------------------------------------------
// Fault matrix: the delivery protocol (sequence numbers, cumulative acks,
// go-back-N retransmission) must make results *identical* to the reliable
// transport under injected drops, duplication, reordering, and link
// outages — and the protocol counters must prove faults actually fired.
// ---------------------------------------------------------------------------

/// Deterministic mixer shared by kernels and their sequential references.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn small_cfg(nodes: usize, heap: usize, faults: Option<FaultConfig>) -> GravelConfig {
    let mut cfg = GravelConfig::small(nodes, heap);
    cfg.node_queue_bytes = 64; // 2 messages per packet → many fault rolls
    if let Some(f) = faults {
        cfg.transport = TransportKind::Unreliable(f);
    }
    cfg
}

/// GUPS: every node scatters increments to pseudo-random remote slots for
/// several supersteps. Returns final stats; asserts heaps match the
/// sequential reference exactly.
fn run_gups(cfg: GravelConfig, supersteps: u64) -> RuntimeStats {
    let nodes = cfg.nodes;
    let heap = cfg.heap_len as u64;
    let wg = cfg.wg_size;
    let rt = GravelRuntime::new(cfg);
    for step in 0..supersteps {
        for me in 0..nodes {
            rt.dispatch(me, 1, |ctx| {
                let n = ctx.wg.wg_size();
                let me = ctx.my_node() as u64;
                let k = ctx.nodes() as u64;
                let dests =
                    LaneVec::from_fn(n, |l| (mix(step * 7919 + me * 131 + l as u64) % k) as u32);
                let addrs =
                    LaneVec::from_fn(n, |l| mix(step * 104729 + me * 31 + l as u64) % heap);
                let vals = LaneVec::splat(n, 1u64);
                ctx.shmem_inc(&dests, &addrs, &vals);
            });
        }
        rt.quiesce();
    }
    // Sequential reference.
    let mut expect = vec![vec![0u64; heap as usize]; nodes];
    for step in 0..supersteps {
        for me in 0..nodes as u64 {
            for l in 0..wg as u64 {
                let dest = (mix(step * 7919 + me * 131 + l) % nodes as u64) as usize;
                let addr = (mix(step * 104729 + me * 31 + l) % heap) as usize;
                expect[dest][addr] += 1;
            }
        }
    }
    for d in 0..nodes {
        for a in 0..heap as usize {
            assert_eq!(rt.heap(d).load(a as u64), expect[d][a], "node {d} slot {a}");
        }
    }
    rt.shutdown().expect("clean shutdown under faults")
}

/// PageRank-style superstep: each node pushes a weighted contribution
/// along a fixed synthetic edge list (dest and value derived from the
/// lane), accumulated with increments. Exact totals checked per slot.
fn run_pagerank_push(cfg: GravelConfig, rounds: u64) -> RuntimeStats {
    let nodes = cfg.nodes;
    let heap = cfg.heap_len as u64;
    let wg = cfg.wg_size;
    let rt = GravelRuntime::new(cfg);
    for round in 0..rounds {
        for me in 0..nodes {
            rt.dispatch(me, 1, |ctx| {
                let n = ctx.wg.wg_size();
                let me = ctx.my_node() as u64;
                let k = ctx.nodes() as u64;
                // Lane l owns vertex (me, l); its single out-edge goes to
                // node (me + l) % k, slot l % heap, weight l + round + 1.
                let dests = LaneVec::from_fn(n, |l| ((me + l as u64) % k) as u32);
                let addrs = LaneVec::from_fn(n, |l| l as u64 % heap);
                let vals = LaneVec::from_fn(n, |l| l as u64 + round + 1);
                ctx.shmem_inc(&dests, &addrs, &vals);
            });
        }
        rt.quiesce();
    }
    let mut expect = vec![vec![0u64; heap as usize]; nodes];
    for round in 0..rounds {
        for me in 0..nodes as u64 {
            for l in 0..wg as u64 {
                let dest = ((me + l) % nodes as u64) as usize;
                expect[dest][(l % heap) as usize] += l + round + 1;
            }
        }
    }
    for d in 0..nodes {
        for a in 0..heap as usize {
            assert_eq!(rt.heap(d).load(a as u64), expect[d][a], "node {d} slot {a}");
        }
    }
    rt.shutdown().expect("clean shutdown under faults")
}

#[test]
fn fault_matrix_gups_reliable_baseline_has_clean_counters() {
    let stats = run_gups(small_cfg(4, 32, None), 3);
    assert!(stats.faults.is_clean());
    assert_eq!(stats.total_retransmits(), 0, "reliable transport never retransmits");
    assert_eq!(stats.total_dups_suppressed(), 0);
}

#[test]
fn fault_matrix_gups_one_percent_drop() {
    let stats = run_gups(small_cfg(4, 32, Some(FaultConfig::drop_only(11, 0.01))), 3);
    assert!(stats.faults.dropped_data > 0, "1 % of ~{} packets should drop", 4 * 3);
    assert!(stats.total_retransmits() > 0, "drops must be repaired by retransmission");
}

#[test]
fn fault_matrix_gups_ten_percent_mixed() {
    // Drop + duplicate + reorder all at once, two cluster sizes.
    for nodes in [2, 4] {
        let stats = run_gups(small_cfg(nodes, 32, Some(FaultConfig::mixed(23, 0.10))), 3);
        assert!(stats.faults.dropped_data > 0, "{nodes} nodes: no drops injected");
        assert!(stats.faults.duplicated > 0, "{nodes} nodes: no duplicates injected");
        assert!(stats.total_retransmits() > 0, "{nodes} nodes");
        assert!(
            stats.total_dups_suppressed() > 0,
            "{nodes} nodes: duplicates must be suppressed, not applied"
        );
    }
}

#[test]
fn fault_matrix_gups_reorder_only() {
    let mut f = FaultConfig::quiet(31);
    f.reorder = 0.25;
    f.jitter = Duration::from_micros(500);
    let stats = run_gups(small_cfg(3, 32, Some(f)), 3);
    assert!(stats.faults.delayed > 0, "no packets were held back");
    // Reordering alone loses nothing: any retransmissions are spurious
    // timeouts, and results (asserted inside run_gups) stay exact.
}

#[test]
fn fault_matrix_gups_link_down_windows() {
    let mut f = FaultConfig::quiet(47);
    f.link_down_period = Duration::from_millis(20);
    f.link_down_len = Duration::from_millis(4);
    let stats = run_gups(small_cfg(3, 32, Some(f)), 4);
    // Outage windows swallow whole packets (or acks); either way the
    // retry path must have carried the cluster through.
    assert!(
        stats.faults.link_down_drops > 0 || stats.total_retransmits() == 0,
        "links were never down and yet retransmits happened: {:?}",
        stats.faults
    );
}

#[test]
fn fault_matrix_pagerank_reliable_and_faulty_agree() {
    let clean = run_pagerank_push(small_cfg(4, 16, None), 2);
    assert!(clean.faults.is_clean());
    assert_eq!(clean.total_retransmits(), 0);
    let faulty = run_pagerank_push(small_cfg(4, 16, Some(FaultConfig::mixed(59, 0.10))), 2);
    // Same totals delivered despite the fault mix (per-slot equality is
    // asserted against the sequential reference inside the helper).
    assert_eq!(clean.total_applied(), faulty.total_applied());
    assert!(!faulty.faults.is_clean());
}

/// A corrupted/misrouted message (out-of-range address) is dropped by the
/// network thread without panicking, and quiescence still completes.
#[test]
fn malformed_message_does_not_wedge_the_cluster() {
    let rt = GravelRuntime::new(GravelConfig::small(2, 4));
    // Inject a PUT far beyond node 1's 4-element heap.
    rt.node(0).host_send(gravel_gq::Message::put(1, 9999, 7));
    // And a healthy one after it.
    rt.node(0).host_send(gravel_gq::Message::put(1, 2, 7));
    rt.quiesce();
    assert_eq!(rt.heap(1).load(2), 7);
    let stats = rt.shutdown().expect("clean shutdown");
    assert_eq!(stats.total_offloaded(), 2);
    assert_eq!(stats.total_applied(), 2); // dropped counts as disposed
}
