//! # gravel-repro — umbrella crate
//!
//! Re-exports every layer of the Gravel (SC'17) reproduction so the
//! examples and integration tests (and downstream users who want one
//! dependency) can reach the whole stack:
//!
//! * [`runtime`] — the live Gravel runtime (`gravel-core`)
//! * [`simt`] — the software GPU engine
//! * [`gq`] — the producer/consumer queues
//! * [`pgas`] — symmetric heap, partitioning, aggregation queues
//! * [`desim`] — the discrete-event kernel
//! * [`cluster`] — the calibrated multi-node performance models
//! * [`apps`] — the paper's application suite
//!
//! See the repository README for a tour and EXPERIMENTS.md for the
//! paper-vs-measured results.

pub use gravel_apps as apps;
pub use gravel_cluster as cluster;
pub use gravel_core as runtime;
pub use gravel_desim as desim;
pub use gravel_gq as gq;
pub use gravel_pgas as pgas;
pub use gravel_simt as simt;
