//! Offline stand-in for `criterion`.
//!
//! Mirrors the criterion 0.5 API the workspace's benches use —
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — but replaces the
//! statistics engine with a plain wall-clock sampler: each benchmark
//! runs `sample_size` samples after a single calibration pass and
//! reports the median per-iteration time (plus throughput when set).
//! No outlier analysis, no HTML reports, no baseline persistence.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample iteration driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Throughput annotation for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Just the parameter as the id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// No-op (CLI args are ignored by the stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            sample_size,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// End the group (printing is incremental, so this is cosmetic).
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // takes ~2ms, so Instant overhead stays below the noise floor.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        let mut per_iter: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher { iters, elapsed: Duration::ZERO };
                f(&mut b);
                b.elapsed.as_secs_f64() / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MiB/s)", n as f64 / median / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / median / 1e6)
            }
            None => String::new(),
        };
        println!("  {id}: {:.1} ns/iter{rate}", median * 1e9);
    }
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
