//! Offline stand-in for `proptest`.
//!
//! Keeps the property-test *surface* the workspace uses — the
//! `proptest!` macro, `Strategy` with `prop_map`/`prop_flat_map`,
//! integer-range and tuple strategies, `prop::collection::vec`,
//! `any::<T>()`, `ProptestConfig::with_cases`, and the `prop_assert*`
//! macros — while replacing the engine with a plain seeded-random case
//! runner. Differences from upstream:
//!
//! - **No shrinking.** A failing case reports the assertion with the
//!   generated values baked into the panic message position, but is not
//!   minimized.
//! - **Deterministic seeding.** Cases derive from a fixed per-test seed
//!   (FNV-1a of the test name) plus the case index, so failures
//!   reproduce exactly across runs and machines — there is no
//!   `proptest-regressions` persistence because none is needed.
//! - `prop_assert*` are plain `assert*` (panic instead of returning
//!   `Err`), which under a test harness reports identically.

pub mod collection;
pub mod strategy;

pub use strategy::{any, Any, Arbitrary, Just, Strategy, TestRng, Union};

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `proptest!` block: config header plus `#[test]` functions whose
/// parameters are strategies (`name in strat`) or `Arbitrary` types
/// (`name: Type`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut __proptest_rng =
                    $crate::TestRng::from_seed(base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                $crate::__proptest_bind!(__proptest_rng; $body; $($params)*);
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; $body:block;) => { $body };
    ($rng:ident; $body:block; $name:ident in $strat:expr, $($rest:tt)*) => {{
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $body; $($rest)*)
    }};
    ($rng:ident; $body:block; $name:ident in $strat:expr) => {{
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $body;)
    }};
    ($rng:ident; $body:block; $name:ident : $ty:ty, $($rest:tt)*) => {{
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng; $body; $($rest)*)
    }};
    ($rng:ident; $body:block; $name:ident : $ty:ty) => {{
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng; $body;)
    }};
}

/// Weighted (`w => strat`) or uniform choice between strategies that
/// share a value type, like upstream's `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<(u32, ::std::boxed::Box<dyn $crate::Strategy<Value = _>>)> =
            vec![$(($weight, ::std::boxed::Box::new($strat))),+];
        $crate::Union::new(options)
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Plain assert; kept as a distinct macro so call sites read like
/// upstream proptest.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Plain assert_eq.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Plain assert_ne.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}
