//! Strategies: value generators with the combinator surface the
//! workspace uses (`prop_map`, `prop_flat_map`, tuples, ranges,
//! `any::<T>()`, `Just`).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG threaded through a property test run.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for one test case.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Next raw word (used by strategy impls).
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform sample from a range (delegates to the vendored rand).
    pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Uniform in [0, 1): the workspace only uses this for weights.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The strategy behind `prop_oneof!`: draw from one of several
/// weighted boxed alternatives.
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` alternatives; weights need not
    /// be normalized but must sum to a positive total.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof needs a positive total weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.options {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// Whole-domain strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (1usize..=5).generate(&mut rng);
            assert!((1..=5).contains(&w));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_seed(1);
        let s = (1u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let f = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u64..10, n));
        for _ in 0..100 {
            let v = f.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = TestRng::from_seed(42);
            (0..10).map(|_| (0u64..1000).generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::from_seed(42);
            (0..10).map(|_| (0u64..1000).generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
