//! Collection strategies: `prop::collection::vec`.

use crate::strategy::{Strategy, TestRng};

/// Anything usable as the vec-length argument: an exact `usize`, a
/// half-open range, or an inclusive range.
pub trait IntoLenRange {
    /// Lower and upper (inclusive) length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoLenRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoLenRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec length range");
        (self.start, self.end - 1)
    }
}

impl IntoLenRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

/// `prop::collection::vec(element, len)`.
pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S> {
    let (min, max) = len.bounds();
    VecStrategy { element, min, max }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            assert_eq!(vec(0u64..5, 4usize).generate(&mut rng).len(), 4);
            let v = vec(0u64..5, 1..8).generate(&mut rng);
            assert!((1..8).contains(&v.len()));
            let w = vec(0u64..5, 2..=3).generate(&mut rng);
            assert!((2..=3).contains(&w.len()));
        }
    }
}
