//! MPMC channels with crossbeam-channel 0.8 semantics.
//!
//! A channel is a `Mutex<VecDeque>` plus `not_empty`/`not_full`
//! condvars and live sender/receiver counts. Disconnection follows
//! crossbeam's rules: when every `Sender` is dropped, receivers drain
//! the remaining messages and then observe `Disconnected`; when every
//! `Receiver` is dropped, sends fail immediately with the message
//! returned to the caller.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and full.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Sender::send_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendTimeoutError<T> {
    /// The channel stayed full for the whole timeout.
    Timeout(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// Empty and all senders are gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

fn lock<T>(chan: &Chan<T>) -> std::sync::MutexGuard<'_, State<T>> {
    chan.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Create a channel with unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a channel holding at most `cap` messages. `cap == 0` is
/// rounded up to 1 (upstream crossbeam's zero-capacity channels are
/// rendezvous channels; nothing in this workspace uses them).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// The sending half. Cloneable; the channel disconnects when the last
/// clone drops.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Sender<T> {
    /// Send, blocking while the channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = lock(&self.chan);
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.chan.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .chan
                        .not_full
                        .wait(st)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Send without blocking.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut st = lock(&self.chan);
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.chan.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Send, blocking at most `timeout` while the channel is full.
    pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.chan);
        loop {
            if st.receivers == 0 {
                return Err(SendTimeoutError::Disconnected(msg));
            }
            match self.chan.cap {
                Some(cap) if st.queue.len() >= cap => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(SendTimeoutError::Timeout(msg));
                    }
                    let (g, _) = self
                        .chan
                        .not_full
                        .wait_timeout(st, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    st = g;
                }
                _ => break,
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.chan).queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.chan).senders += 1;
        Sender { chan: self.chan.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.chan);
        st.senders -= 1;
        let disconnected = st.senders == 0;
        drop(st);
        if disconnected {
            // Wake blocked receivers so they observe the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

/// The receiving half. Cloneable; consumers compete for messages.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Receiver<T> {
    /// Receive, blocking while the channel is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = lock(&self.chan);
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .chan
                .not_empty
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = lock(&self.chan);
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.chan.not_full.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.chan);
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, _) = self
                .chan
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        lock(&self.chan).queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.chan).receivers += 1;
        Receiver { chan: self.chan.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.chan);
        st.receivers -= 1;
        let disconnected = st.receivers == 0;
        drop(st);
        if disconnected {
            // Wake blocked senders so they observe the disconnect.
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1)); // buffered message still delivered
        assert!(rx.recv().is_err());
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn bounded_blocks_and_unblocks() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert!(matches!(
            tx.send_timeout(3, Duration::from_millis(10)),
            Err(SendTimeoutError::Timeout(3))
        ));
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || tx.send(3).unwrap())
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1); // frees a slot; sender completes
        t.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(9));
    }

    #[test]
    fn multi_producer_multi_consumer_exactly_once() {
        let (tx, rx) = bounded(4);
        let producers: Vec<_> = (0..3u64)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        drop(rx);
        let mut all: Vec<u64> =
            consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all.len(), 300);
        all.dedup();
        assert_eq!(all.len(), 300);
    }

    #[test]
    fn clone_counts_keep_channel_alive() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(5).unwrap(); // still connected via the clone
        assert_eq!(rx.recv(), Ok(5));
    }
}
