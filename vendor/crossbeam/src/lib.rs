//! Offline stand-in for `crossbeam`.
//!
//! Only the [`channel`] module is provided — MPMC channels with the
//! crossbeam 0.8 API surface the workspace uses: `unbounded`, `bounded`,
//! cloneable senders/receivers, disconnect-on-last-drop semantics, and
//! the blocking/timeout/try operation triples. Built on
//! `Mutex<VecDeque>` + two condvars rather than lock-free rings; the
//! live runtime moves whole aggregated packets (64 kB-class) through
//! these channels, so per-op lock cost is noise compared to upstream.

pub mod channel;
