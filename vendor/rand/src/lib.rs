//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `rand` 0.8: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256** under the
//! hood rather than ChaCha), the [`Rng`] extension trait with
//! `gen_range`/`gen_bool`/`gen`, and [`SeedableRng::seed_from_u64`].
//!
//! Streams differ from upstream `rand` for the same seed — everything in
//! this workspace treats seeds as opaque reproducibility handles, never
//! as cross-library fixtures, so only determinism matters.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256**, seeded via SplitMix64
    /// exactly as the xoshiro reference implementation recommends.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Draw a uniform value in `[0, bound)` without modulo bias (Lemire's
/// method would be overkill here; rejection sampling is exact and the
/// workloads draw few enough values that the retry cost is noise).
fn uniform_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Types `gen()` can produce.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> $t { rng.next_u64() as $t }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The user-facing extension trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Uniform draw of a whole value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = r.gen_range(3u8..=3);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
