//! Offline stand-in for `parking_lot`.
//!
//! Provides the poison-free locking API this workspace uses (`lock()`
//! returning a guard directly, not a `Result`), implemented over
//! `std::sync`. Poisoned locks are recovered transparently — matching
//! parking_lot, which has no poisoning — so a panicking worker thread
//! never cascades `PoisonError` panics into threads that merely share a
//! lock with it (the runtime's shutdown path relies on this).

use std::sync::TryLockError;

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire, blocking. Recovers from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared, blocking.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive, blocking.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
