//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` by
//! walking the raw `TokenStream` directly (the container has no `syn`
//! or `quote`), then emitting the impl as a source string and parsing
//! it back. Supports exactly the shapes this workspace derives on:
//!
//! - structs with named fields → JSON objects keyed by field name
//! - enums whose variants are all unit variants → JSON strings
//!
//! Anything else (tuple structs, data-carrying variants, generics)
//! produces a `compile_error!` naming the unsupported construct, so a
//! future use that outgrows the stub fails loudly at build time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// `struct Name { field, ... }`
    Struct { name: String, fields: Vec<String> },
    /// `enum Name { Variant, ... }` (unit variants only)
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip one attribute (`#` + bracket group) starting at `i`; returns the
/// index just past it, or `i` if the tokens there are not an attribute.
fn skip_attr(tokens: &[TokenTree], i: usize) -> usize {
    match (tokens.get(i), tokens.get(i + 1)) {
        (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
            if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
        {
            i + 2
        }
        _ => i,
    }
}

/// Skip a visibility marker (`pub` or `pub(...)`).
fn skip_vis(tokens: &[TokenTree], i: usize) -> usize {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "pub" => match tokens.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => i + 2,
            _ => i + 1,
        },
        _ => i,
    }
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        let j = skip_attr(&tokens, i);
        if j == i {
            break;
        }
        i = j;
    }
    i = skip_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("cannot derive for `{kind}` items"));
    }
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported by the vendored serde_derive"));
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "`{name}` must have a brace-delimited body (tuple/unit structs unsupported)"
            ))
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    if kind == "struct" {
        Ok(Shape::Struct { name, fields: parse_named_fields(&body)? })
    } else {
        Ok(Shape::Enum { name, variants: parse_unit_variants(&body)? })
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        loop {
            let j = skip_attr(body, i);
            if j == i {
                break;
            }
            i = j;
        }
        i = skip_vis(body, i);
        let field = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => return Err(format!("unexpected token `{t}` in struct body")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("field `{field}`: expected `:` (tuple fields unsupported)")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth: i32 = 0;
        while let Some(t) = body.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        loop {
            let j = skip_attr(body, i);
            if j == i {
                break;
            }
            i = j;
        }
        let variant = match body.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(t) => return Err(format!("unexpected token `{t}` in enum body")),
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{variant}` carries data; only unit variants are supported"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the comma.
                while let Some(t) = body.get(i) {
                    if matches!(t, TokenTree::Punct(q) if q.as_char() == ',') {
                        break;
                    }
                    i += 1;
                }
                i += 1;
            }
            Some(t) => return Err(format!("unexpected token `{t}` after variant `{variant}`")),
        }
        variants.push(variant);
    }
    Ok(variants)
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\n\
                             v.get(\"{f}\").unwrap_or(&::serde::Value::Null))\n\
                             .map_err(|_| ::serde::Error::custom(\n\
                                 concat!(\"invalid or missing field `\", \"{f}\", \"`\")))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v.as_str() {{\n\
                             Some(s) => match s {{\n\
                                 {arms}\n\
                                 other => Err(::serde::Error::custom(\n\
                                     format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             None => Err(::serde::Error::custom(\"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
