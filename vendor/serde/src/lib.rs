//! Offline stand-in for `serde`.
//!
//! Real serde is a zero-copy visitor framework; this stand-in is a
//! small *value-tree* model: [`Serialize`] renders a type into a
//! [`Value`], [`Deserialize`] rebuilds a type from one, and
//! `serde_json` (the vendored stand-in) converts values to and from
//! JSON text. The `#[derive(Serialize, Deserialize)]` macros (from the
//! vendored `serde_derive`) cover what this workspace derives on:
//! structs with named fields and enums with unit variants.
//!
//! The JSON this emits is field-for-field compatible with what upstream
//! serde_json produced for the same types, so previously cached
//! `results/*.json` artifacts still parse.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only used for negatives).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered fields.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(f) => Some(f),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`].
pub trait Serialize {
    /// Build the value tree.
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                if *self < 0 { Value::I64(*self as i64) } else { Value::U64(*self as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple_serde {
    ($(($($t:ident . $idx:tt),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == [$($idx),+].len() => {
                        Ok(($($t::deserialize(&items[$idx])?,)+))
                    }
                    _ => Err(Error::custom("expected fixed-length array for tuple")),
                }
            }
        }
    )+};
}

impl_tuple_serde! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeMap<String, T> {
    fn serialize(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.serialize())).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::BTreeMap<String, T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), T::deserialize(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object for map")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::deserialize(&42u64.serialize()), Ok(42));
        assert_eq!(i64::deserialize(&(-3i64).serialize()), Ok(-3));
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(String::deserialize(&"hi".to_string().serialize()), Ok("hi".into()));
        assert_eq!(f64::deserialize(&1.5f64.serialize()), Ok(1.5));
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::deserialize(&v.serialize()), Ok(v));
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&o.serialize()), Ok(None));
        assert_eq!(Option::<u32>::deserialize(&Some(7u32).serialize()), Ok(Some(7)));
    }

    #[test]
    fn object_get() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), None);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::deserialize(&Value::U64(300)).is_err());
        assert!(u64::deserialize(&Value::I64(-1)).is_err());
    }
}
