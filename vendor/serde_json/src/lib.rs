//! Offline stand-in for `serde_json`.
//!
//! Converts between JSON text and the vendored `serde::Value` tree.
//! Provides the three entry points the workspace uses
//! ([`to_string_pretty`], [`to_vec`], [`from_slice`]) plus [`to_string`]
//! and [`from_str`] for symmetry. Output formatting matches upstream
//! serde_json's pretty printer (two-space indent) closely enough that
//! result JSON artifacts diff cleanly across the switchover.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize `value` to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialize `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // Match serde_json: floats always carry a fractional or
                // exponent part so they re-parse as floats.
                let s = format!("{n}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte safe: find the char
                    // boundary via str slicing).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid utf-8: {e}")))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if text.is_empty() || text == "-" {
            return Err(Error(format!("invalid number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("invalid float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("invalid integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("invalid integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.25e2").unwrap(), 125.0);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_vec() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
        assert_eq!(from_slice::<Vec<u64>>(&to_vec(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn pretty_object_shape() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Array(vec![Value::Bool(false)])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    false\n  ]\n}");
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_always_reparses_as_float() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 2.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<u64>("nul").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
