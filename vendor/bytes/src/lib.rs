//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses — [`BytesMut`] as an
//! append-only build buffer with [`BufMut`] little-endian writers,
//! `split().freeze()` to detach a cheaply-clonable immutable [`Bytes`] —
//! over plain `Vec<u8>`/`Arc<[u8]>`. No shared-slab refcounting;
//! `split` copies nothing (it takes the whole vector) and `freeze`
//! does one allocation handoff.
//!
//! Beyond the plain `Arc<[u8]>` representation, [`Bytes::from_owner`]
//! mirrors upstream's owner-backed construction: any [`ByteOwner`] can
//! lend its storage as an immutable `Bytes` without copying, and gets
//! dropped (running its `Drop`) when the last clone goes away. The
//! buffer-pool arena uses this to surface pooled `Vec<u8>`s as frame
//! payloads and reclaim them on drop.

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// Storage that can back a [`Bytes`] without copying. The returned
/// slice must be stable for the owner's lifetime (the owner sits
/// behind an `Arc` and is never mutated while lent out).
pub trait ByteOwner: Send + Sync + 'static {
    /// The bytes this owner lends out.
    fn as_slice(&self) -> &[u8];
}

impl ByteOwner for Vec<u8> {
    fn as_slice(&self) -> &[u8] {
        self
    }
}

#[derive(Clone)]
enum Repr {
    Shared(Arc<[u8]>),
    Owned(Arc<dyn ByteOwner>),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Shared(a) => a,
            Repr::Owned(o) => o.as_slice(),
        }
    }
}

/// An immutable, cheaply clonable byte buffer — a `(start, end)` view
/// into a shared allocation, so [`Bytes::slice`] is zero-copy like the
/// upstream crate.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { repr: Repr::Shared(Arc::from(&[][..])), start: 0, end: 0 }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(data);
        let end = data.len();
        Bytes { repr: Repr::Shared(data), start: 0, end }
    }

    /// Lend an owner's storage as an immutable buffer without copying.
    /// The owner is dropped when the last clone of the returned `Bytes`
    /// (and every `slice` of it) is gone.
    pub fn from_owner(owner: impl ByteOwner) -> Self {
        Self::from_owner_arc(Arc::new(owner))
    }

    /// Like [`from_owner`](Self::from_owner) but adopting an existing
    /// `Arc`, so constructing the `Bytes` allocates nothing. The
    /// buffer-pool arena recycles the `Arc` allocation itself through
    /// this — the zero-alloc packet path depends on it.
    pub fn from_owner_arc(owner: Arc<dyn ByteOwner>) -> Self {
        let end = owner.as_slice().len();
        Bytes { repr: Repr::Owned(owner), start: 0, end }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer sharing the same allocation (no copy).
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of range");
        Bytes {
            repr: self.repr.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bytes").field("len", &self.len()).finish()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state);
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.repr.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        let end = data.len();
        Bytes { repr: Repr::Shared(data), start: 0, end }
    }
}

/// A growable byte buffer being assembled.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Adopt an existing vector (cleared or not) as the build buffer,
    /// keeping its allocation. The pooled-buffer path uses this to
    /// recycle packet buffers instead of allocating per flush.
    pub fn from_vec(v: Vec<u8>) -> Self {
        BytesMut(v)
    }

    /// Surrender the backing vector, allocation and all.
    pub fn into_vec(self) -> Vec<u8> {
        self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.0.capacity()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Remove and return the entire contents, leaving this buffer empty
    /// (a fresh zero-capacity vector). Matches how the aggregator uses
    /// upstream `bytes`: `split` detaches the filled prefix — and we
    /// only ever split full buffers.
    pub fn split(&mut self) -> BytesMut {
        BytesMut(std::mem::take(&mut self.0))
    }

    /// Convert to an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }

    /// Clear contents, keeping capacity.
    pub fn clear(&mut self) {
        self.0.clear();
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.0.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Append a slice of `u64`s, little-endian. Equivalent to calling
    /// [`BufMut::put_u64_le`] per word, but encodes through a stack
    /// block so the vector's capacity check is paid per 512-byte stride
    /// instead of per word and the inner copy vectorizes.
    pub fn put_u64_slice_le(&mut self, words: &[u64]) {
        self.0.reserve(words.len() * 8);
        let mut block = [0u8; 512];
        for chunk in words.chunks(64) {
            for (i, &w) in chunk.iter().enumerate() {
                block[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
            }
            self.0.extend_from_slice(&block[..chunk.len() * 8]);
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

/// Little-endian append operations.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u16`, little-endian.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_split_freeze_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64_le(0x0102_0304_0506_0708);
        b.put_u64_le(42);
        assert_eq!(b.len(), 16);
        let detached = b.split();
        assert!(b.is_empty());
        let frozen = detached.freeze();
        assert_eq!(frozen.len(), 16);
        let words: Vec<u64> =
            frozen.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(words, vec![0x0102_0304_0506_0708, 42]);
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&*a, &[1, 2, 3]);
    }

    #[test]
    fn put_u64_slice_le_matches_per_word() {
        // Cross the 64-word block boundary to exercise both chunks.
        for n in [0usize, 1, 63, 64, 65, 200] {
            let words: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
            let mut bulk = BytesMut::new();
            bulk.put_u64_slice_le(&words);
            let mut one = BytesMut::new();
            for &w in &words {
                one.put_u64_le(w);
            }
            assert_eq!(&*bulk, &*one, "n={n}");
        }
    }

    #[test]
    fn split_keeps_capacity_for_reuse() {
        let mut b = BytesMut::with_capacity(64);
        b.put_slice(&[0; 32]);
        let _p = b.split();
        assert!(b.is_empty());
        b.put_u8(1); // usable after split
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn from_owner_lends_without_copying_and_drops_owner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);

        struct Probe(Vec<u8>);
        impl ByteOwner for Probe {
            fn as_slice(&self) -> &[u8] {
                &self.0
            }
        }
        impl Drop for Probe {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        let b = Bytes::from_owner(Probe(vec![7, 8, 9, 10]));
        let view = b.slice(1..3);
        assert_eq!(&*b, &[7, 8, 9, 10]);
        assert_eq!(&*view, &[8, 9]);
        drop(b);
        assert_eq!(DROPS.load(Ordering::SeqCst), 0, "slice keeps the owner alive");
        drop(view);
        assert_eq!(DROPS.load(Ordering::SeqCst), 1, "owner dropped with last view");
    }

    #[test]
    fn from_vec_into_vec_keeps_allocation() {
        let v = Vec::with_capacity(128);
        let ptr = v.as_ptr();
        let mut b = BytesMut::from_vec(v);
        b.put_u64_le(5);
        let back = b.into_vec();
        assert_eq!(back.as_ptr(), ptr);
        assert_eq!(back.len(), 8);
    }
}
