//! Distributed graph analytics: PageRank, SSSP, and coloring (paper §6)
//! on synthetic stands-in for the paper's graphs, run live on a
//! three-node cluster and verified against sequential references — then
//! projected to eight nodes with the calibrated cluster model.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use gravel_apps::graph::{gen, reference};
use gravel_apps::{color, pagerank, sssp};
use gravel_cluster::{simulate, Calibration, Style};
use gravel_core::{GravelConfig, GravelRuntime};

fn main() {
    let nodes = 3;
    let g = gen::hugebubbles_like(10_000, 7);
    println!(
        "graph: {} vertices, {} edges (hugebubbles-like mesh)",
        g.num_vertices(),
        g.num_edges()
    );

    // --- PageRank: exact fixed-point equality with the reference -------
    let damping = pagerank::default_damping();
    let rt = GravelRuntime::new(GravelConfig::small(nodes, g.num_vertices()));
    let live = pagerank::run_live(&rt, &g, 5, damping);
    rt.shutdown().expect("clean shutdown");
    let seq = reference::pagerank(&g, 5, damping);
    assert_eq!(live, seq, "distributed PageRank must match bit-for-bit");
    let top = (0..g.num_vertices()).max_by_key(|&v| live[v]).unwrap();
    println!("PageRank: 5 iterations verified; top vertex = {top}");

    // --- SSSP: active-message relax-min, checked against Dijkstra ------
    let mut relax_id = 0;
    let rt = GravelRuntime::with_handlers(GravelConfig::small(nodes, g.num_vertices()), |reg| {
        relax_id = sssp::register(reg);
    });
    let dist = sssp::run_live(&rt, &g, 0, relax_id);
    rt.shutdown().expect("clean shutdown");
    assert_eq!(dist, reference::sssp(&g, 0));
    let reachable = dist.iter().filter(|&&d| d != sssp::INF).count();
    println!("SSSP: verified against Dijkstra; {reachable} vertices reachable from 0");

    // --- Coloring: speculative rounds with PUT ghost updates -----------
    let small = gen::hugebubbles_like(400, 9);
    let rt = GravelRuntime::new(GravelConfig::small(nodes, small.num_vertices()));
    let colors = color::run_live(&rt, &small);
    rt.shutdown().expect("clean shutdown");
    assert!(reference::coloring_valid(&small.symmetrized(), &colors));
    println!(
        "coloring: proper with {} colors",
        colors.iter().max().unwrap() + 1
    );

    // --- Project PR-1 to eight nodes with the cluster model ------------
    // The model's fixed per-superstep costs (kernel launch, flush
    // timeout) need a decently-sized graph to amortize, as they do on
    // real hardware.
    let big = gen::hugebubbles_like(250_000, 7);
    let cal = Calibration::paper();
    let t1 = pagerank::trace("PR-1", &big, 1, 10);
    let t8 = pagerank::trace("PR-1", &big, 8, 10);
    let r1 = simulate(&t1, &cal, &Style::Gravel.params(&cal));
    let r8 = simulate(&t8, &cal, &Style::Gravel.params(&cal));
    println!(
        "model: PR on this graph at 8 nodes → {:.2}x speedup, avg packet {:.0} B",
        r1.total_ns as f64 / r8.total_ns as f64,
        r8.avg_packet_bytes()
    );
}
