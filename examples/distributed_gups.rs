//! Distributed GUPS (paper §3, Fig. 4b) on the live runtime.
//!
//! A table distributed cyclically over four in-process nodes is
//! incremented at random offsets; the kernel is one `shmem_inc` per
//! work-item — destination routing, aggregation, and application are the
//! runtime's job. The result is verified against a sequential histogram
//! and the Table 5-style network statistics are printed.
//!
//! ```sh
//! cargo run --release --example distributed_gups
//! ```

use gravel_apps::gups::{self, GupsInput};
use gravel_core::{GravelConfig, GravelRuntime};

fn main() {
    let nodes = 4;
    let input = GupsInput { updates: 200_000, table_len: 16_384, seed: 2026 };
    let rt = GravelRuntime::new(GravelConfig::small(nodes, input.table_len));

    let start = std::time::Instant::now();
    let issued = gups::run_live(&rt, &input);
    let elapsed = start.elapsed();

    assert!(gups::verify_live(&rt, &input), "histogram mismatch");
    println!("GUPS: {issued} updates verified on {nodes} nodes in {elapsed:?}");
    println!("      ({:.2} M updates/s live on this host)", issued as f64 / elapsed.as_secs_f64() / 1e6);

    let stats = rt.shutdown().expect("clean shutdown");
    println!(
        "      remote access frequency {:.1}% (expected {:.1}%), avg packet {:.0} B",
        stats.remote_fraction() * 100.0,
        (nodes - 1) as f64 / nodes as f64 * 100.0,
        stats.avg_packet_bytes(),
    );
    for n in &stats.nodes {
        println!(
            "      node {}: offloaded {:>7}  applied {:>7}  packets {:>5}  agg poll idle {:.0}%",
            n.node,
            n.offloaded,
            n.applied,
            n.agg.packets,
            n.poll_fraction() * 100.0
        );
    }
}
