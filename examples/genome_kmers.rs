//! Meraculous on Gravel (paper §6): phase 1 builds a distributed k-mer
//! hash table with active-message inserts; phase 2 — the paper's future
//! work — walks the de Bruijn chains with request/response active
//! messages (remote lookup → PUT reply into the requester's mailbox).
//!
//! ```sh
//! cargo run --release --example genome_kmers
//! ```

use gravel_apps::mer::{self, MerInput};
use gravel_apps::mer2;
use gravel_core::{GravelConfig, GravelRuntime};

fn main() {
    let nodes = 4;
    let input = MerInput { genome_len: 50_000, reads: 4_000, read_len: 80, k: 21, seed: 99 };
    let expected = mer::reference_kmers(&input, nodes);
    println!(
        "reads: {} × {} bp, k = {} → {} distinct k-mers expected",
        input.reads,
        input.read_len,
        input.k,
        expected.len()
    );

    // Size the distributed table at 4× load factor headroom.
    let table_len = (expected.len() * 4).next_multiple_of(nodes);
    let mut insert_id = 0;
    let rt = GravelRuntime::with_handlers(GravelConfig::small(nodes, table_len / nodes), |reg| {
        insert_id = mer::register(reg);
    });

    let start = std::time::Instant::now();
    let issued = mer::run_live(&rt, &input, table_len, insert_id);
    let elapsed = start.elapsed();

    let got = mer::collect_table(&rt);
    assert_eq!(got, expected, "hash table contents mismatch");
    println!(
        "inserted {issued} k-mers ({} distinct after dedup) in {elapsed:?}",
        got.len()
    );

    let stats = rt.shutdown().expect("clean shutdown");
    println!(
        "remote access frequency {:.1}% (paper: 87.5% at 8 nodes), avg packet {:.0} B",
        stats.remote_fraction() * 100.0,
        stats.avg_packet_bytes()
    );

    // --- Phase 2: traversal (the paper's future work) -------------------
    let table_len = (expected.len() * 4).next_multiple_of(nodes);
    let t_local = table_len / nodes;
    let mailbox = 64;
    let rt = GravelRuntime::with_handlers(
        GravelConfig::small(nodes, 2 * t_local + mailbox),
        |reg| {
            mer2::register(reg, t_local as u64);
        },
    );
    mer2::build_table(&rt, &input, table_len, 0);
    let seeds: Vec<u64> = mer::synthetic_reads(&input, nodes, 0)
        .into_iter()
        .take(6)
        .map(|r| mer::pack_kmer(&r[..input.k]))
        .collect();
    let walks = mer2::traverse(&rt, &seeds, input.k, table_len, 500, 1);
    rt.shutdown().expect("clean shutdown");
    let reference = mer2::reference_contigs(&input, nodes, &seeds, 500);
    assert_eq!(
        walks.iter().map(|w| w.contig.clone()).collect::<Vec<_>>(),
        reference
    );
    println!("phase 2: walked {} contigs (lengths {:?}) — verified", walks.len(),
        walks.iter().map(|w| w.contig.len()).collect::<Vec<_>>());
}
