//! The §3 programming-model shootout on one workload: run the same GUPS
//! problem through all four *real* implementations (coprocessor,
//! message-per-lane, coalesced APIs, Gravel), verify they agree, and
//! compare their measured SIMT behaviour — a miniature of Table 1/2 and
//! Figure 15.
//!
//! ```sh
//! cargo run --release --example style_shootout
//! ```

use gravel_apps::gups_styles;

fn main() {
    let nodes = 3;
    let table_len = 512;
    let updates: Vec<Vec<usize>> = (0..nodes)
        .map(|n| (0..4000).map(|i| (i * 37 + n * 911) % table_len).collect())
        .collect();

    let mut reference: Option<Vec<u64>> = None;
    println!("{:<16} {:>10} {:>12} {:>14} {:>12}", "model", "time", "issue slots", "SIMT util", "atomics");
    // Wavefront width differs per implementation (the Gravel runtime's
    // test config runs 32-wide wavefronts; the rest use 64).
    for (name, wf, run) in [
        (
            "coprocessor",
            64,
            gups_styles::coprocessor::run_counted
                as fn(usize, &[Vec<usize>], usize) -> (Vec<u64>, gravel_simt::Counters),
        ),
        ("msg-per-lane", 64, gups_styles::msg_per_lane::run_counted),
        ("coalesced", 64, gups_styles::coalesced::run_counted),
        ("Gravel", 32, gups_styles::gravel_style::run_counted),
    ] {
        let start = std::time::Instant::now();
        let (hist, counters) = run(nodes, &updates, table_len);
        let elapsed = start.elapsed();
        match &reference {
            None => reference = Some(hist),
            Some(r) => assert_eq!(&hist, r, "{name} disagrees"),
        }
        println!(
            "{:<16} {:>10.2?} {:>12} {:>13.1}% {:>12}",
            name,
            elapsed,
            counters.wf_issue_slots,
            counters.simt_utilization(wf) * 100.0,
            counters.atomics
        );
    }
    println!("\nall four models computed identical histograms");

    for (name, loc) in gups_styles::table2() {
        println!("{name:<36} {:>4} host + {:>3} GPU lines", loc.host, loc.gpu);
    }
}
