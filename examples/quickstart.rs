//! Quickstart: a two-node Gravel cluster in one process.
//!
//! Every work-item on node 0's GPU sends a fine-grain atomic-increment
//! message to node 1. The messages flow through the work-group-slot
//! producer/consumer queue to node 0's aggregator thread, get packed into
//! a per-destination queue, and are applied by node 1's network thread.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gravel_core::{GravelConfig, GravelRuntime};
use gravel_simt::LaneVec;

fn main() {
    // Two nodes, 16-element symmetric heaps, test-friendly queue sizes.
    let rt = GravelRuntime::new(GravelConfig::small(2, 16));

    // Launch 4 work-groups (of 64 work-items) on node 0. The kernel body
    // is written per-lane: LaneVec registers + one PGAS call.
    rt.dispatch(0, 4, |ctx| {
        let n = ctx.wg.wg_size();
        let dests = LaneVec::splat(n, 1u32); // everyone targets node 1
        let addrs = LaneVec::from_fn(n, |l| (l % 16) as u64);
        let vals = LaneVec::splat(n, 1u64);
        ctx.shmem_inc(&dests, &addrs, &vals);
    });

    // Wait until every message has been applied at its destination.
    rt.quiesce();

    let total: u64 = (0..16).map(|i| rt.heap(1).load(i)).sum();
    println!("node 1 received {total} increments (expected {})", 4 * 64);
    assert_eq!(total, 4 * 64);

    let stats = rt.shutdown().expect("clean shutdown");
    println!(
        "offloaded {} messages, {} network packets, avg packet {:.0} B, remote fraction {:.1}%",
        stats.total_offloaded(),
        stats.nodes.iter().map(|n| n.agg.packets).sum::<u64>(),
        stats.avg_packet_bytes(),
        stats.remote_fraction() * 100.0
    );
}
